#!/usr/bin/env python3
"""Markdown link checker for the repo's docs — stdlib only, no network.

Checks every inline link and image (``[text](target)``) in the given
markdown files:

- relative paths must exist on disk (resolved against the linking
  file's directory, then confined to the repository root);
- ``#fragment`` anchors — bare or after a ``.md`` path — must match a
  heading in the target file, using GitHub's slugging rules
  (lowercase, punctuation dropped, spaces to hyphens, duplicate slugs
  suffixed ``-1``, ``-2``, ...);
- ``http(s)``/``mailto`` targets are counted but not fetched (CI has
  no business depending on external uptime);
- links that resolve *outside* the repository (e.g. the README badge's
  ``../../actions/...`` GitHub-UI path) are skipped — they name web
  routes, not files.

Fenced code blocks are stripped before scanning so YAML/shell samples
cannot produce false positives. Exit status is the number of broken
links (0 = clean), one ``file:line: message`` per finding on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) / ![alt](target) — target up to the first unescaped ')'
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
# Markdown emphasis/code markers stripped before slugging
_MARKUP = re.compile(r"[`*_]")
# GitHub drops everything but word chars, spaces and hyphens
_SLUG_DROP = re.compile(r"[^\w\- ]")


def rel(path: Path) -> str:
    """Repo-relative display form; absolute if outside the repo."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def slugify(heading: str) -> str:
    """One heading -> its GitHub anchor slug (sans duplicate suffix)."""
    text = _MARKUP.sub("", heading.strip()).lower()
    text = _SLUG_DROP.sub("", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes, duplicates suffixed."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path):
    """Yield ``(lineno, target)`` for every link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(md: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    """All broken-link messages for one markdown file."""
    errors: list[str] = []
    for lineno, target in iter_links(md):
        where = f"{rel(md)}:{lineno}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md.parent / path_part).resolve()
            inside_repo = resolved.is_relative_to(REPO_ROOT)
            if md.is_relative_to(REPO_ROOT) and not inside_repo:
                continue  # GitHub web route, not a repo file
            if not resolved.exists():
                errors.append(f"{where}: missing target {target!r}")
                continue
            anchor_file = resolved
        else:
            anchor_file = md
        if not fragment:
            continue
        if anchor_file.suffix.lower() not in (".md", ".markdown"):
            continue  # GitHub line anchors on source files, etc.
        if anchor_file not in slug_cache:
            slug_cache[anchor_file] = heading_slugs(anchor_file)
        if fragment.lower() not in slug_cache[anchor_file]:
            errors.append(
                f"{where}: no heading for anchor "
                f"#{fragment} in {rel(anchor_file)}"
            )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: linkcheck.py FILE.md [FILE.md ...]", file=sys.stderr
        )
        return 2
    errors: list[str] = []
    slug_cache: dict[Path, set[str]] = {}
    checked = 0
    for name in argv:
        md = Path(name).resolve()
        if not md.exists():
            errors.append(f"{name}: file not found")
            continue
        checked += 1
        errors.extend(check_file(md, slug_cache))
    for message in errors:
        print(message, file=sys.stderr)
    print(f"linkcheck: {checked} files, {len(errors)} broken links")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
