"""Baseline CPU schedulers the paper compares (or relates) SFS against.

- :class:`StartTimeFairScheduler` — SFQ, the principal baseline
  (Figs. 1, 4, 5), with optional §2.1 weight readjustment;
- :class:`LinuxTimeSharingScheduler` — the Linux 2.2 goodness/epoch
  scheduler (Figs. 6(b), 6(c), Table 1, Fig. 7);
- :class:`StrideScheduler`, :class:`WeightedFairQueueingScheduler`,
  :class:`BorrowedVirtualTimeScheduler`, :class:`LotteryScheduler` —
  the other GPS instantiations §1.2 names as sharing SFQ's
  multiprocessor pathologies;
- :class:`RoundRobinScheduler` — a weight-oblivious control.

SFS itself lives in :mod:`repro.core`.
"""

from repro.schedulers.bvt import BorrowedVirtualTimeScheduler
from repro.schedulers.gms_reference import GMSReferenceScheduler
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.registry import SCHEDULERS, make_scheduler, scheduler_names
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.schedulers.simple import SimpleQueueScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.wfq import WeightedFairQueueingScheduler

__all__ = [
    "BorrowedVirtualTimeScheduler",
    "GMSReferenceScheduler",
    "LinuxTimeSharingScheduler",
    "LotteryScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "SimpleQueueScheduler",
    "StartTimeFairScheduler",
    "StrideScheduler",
    "WeightedFairQueueingScheduler",
    "make_scheduler",
    "scheduler_names",
]
