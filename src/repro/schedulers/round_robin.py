"""Weight-oblivious round-robin — the simplest work-conserving baseline.

Serves as a control in tests (equal shares regardless of weights) and
as the degenerate case of GMS with all-equal instantaneous weights.
"""

from __future__ import annotations

from collections import deque

from repro.schedulers.simple import SimpleQueueScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(SimpleQueueScheduler):
    """FIFO circular scheduling with the machine's default quantum."""

    name = "round-robin"

    decision_cost_params = DecisionCostParams(base=0.3e-6)

    def __init__(self) -> None:
        super().__init__(readjust=False)
        self._fifo: deque[Task] = deque()

    def _enter(self, task: Task, now: float) -> None:
        self._fifo.append(task)

    def _leave(self, task: Task, now: float) -> None:
        try:
            self._fifo.remove(task)
        except ValueError:
            pass

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        super().on_preempt(task, now, ran)
        # Rotate to the back of the queue.
        try:
            self._fifo.remove(task)
        except ValueError:
            pass
        self._fifo.append(task)

    def pick_next(self, cpu: int, now: float) -> Task | None:
        for task in self._fifo:
            if task.state is TaskState.RUNNABLE:
                return task
        return None
