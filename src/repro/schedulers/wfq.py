"""Weighted fair queueing (WFQ) adapted to CPU scheduling.

WFQ [Parekh '92, ref. 21 of the paper] schedules by **finish tag**: the
thread picked is the one whose current quantum would finish earliest in
the fluid system. The CPU adaptation used here mirrors the packet
discipline with a quantum in place of a packet:

- an arriving/waking thread gets ``S = max(F, v)``;
- its *expected* finish tag is ``F_exp = S + q_nominal / phi``;
- the scheduler runs the runnable thread with the minimum ``F_exp``;
- after the thread actually runs ``ran`` seconds, its real finish tag
  ``F = S + ran / phi`` is recorded and becomes the next start tag.

The paper groups WFQ with the GPS instantiations that starve threads
under infeasible weights (§1.2); ``readjust=True`` applies the §2.1
fix. Reuses the tag machinery of :class:`repro.core.tags.TaggedScheduler`;
only the selection key differs from SFQ.
"""

from __future__ import annotations

from repro.core.fixed_point import TagArithmetic
from repro.core.tags import TaggedScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["WeightedFairQueueingScheduler"]


class WeightedFairQueueingScheduler(TaggedScheduler):
    """Finish-tag (smallest-expected-finish-first) scheduling."""

    name = "WFQ"

    decision_cost_params = DecisionCostParams(base=0.9e-6, per_thread=0.04e-6)

    def __init__(
        self,
        readjust: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
        nominal_quantum: float | None = None,
    ) -> None:
        super().__init__(
            readjust=readjust, tag_math=tag_math, wake_preempt=wake_preempt
        )
        if readjust:
            self.name = "WFQ+readjust"
        #: quantum length assumed when projecting finish tags; defaults
        #: to the machine quantum at attach time.
        self._nominal_quantum = nominal_quantum

    @property
    def nominal_quantum(self) -> float:
        if self._nominal_quantum is not None:
            return self._nominal_quantum
        if self.machine is not None:
            return self.machine.quantum
        return 0.2

    def _expected_finish(self, task: Task):
        return self.tags.finish_tag(task.sched["S"], self.nominal_quantum, task.phi)

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self._refresh_vtime()
        best: Task | None = None
        best_key = None
        for task in self.start_queue:
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (self._expected_finish(task), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best
