"""Shared machinery for the non-tag-based baseline schedulers.

Stride, lottery and round-robin only need a runnable set plus optional
§2.1 weight readjustment (`task.phi` maintenance); this base class
provides exactly that so each policy file contains only its policy.
"""

from __future__ import annotations

from repro.core.weights import readjust_tasks
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState

__all__ = ["SimpleQueueScheduler"]


class SimpleQueueScheduler(Scheduler):
    """Runnable-set bookkeeping + optional weight readjustment."""

    def __init__(self, readjust: bool = False) -> None:
        super().__init__()
        self.readjust = readjust
        self._runnable: dict[int, Task] = {}

    # -- hooks ---------------------------------------------------------

    def on_arrival(self, task: Task, now: float) -> None:
        if not self.readjust:
            task.phi = task.weight
        self._runnable[task.tid] = task
        self._enter(task, now)
        self._apply_readjustment()

    def on_wakeup(self, task: Task, now: float) -> None:
        if not self.readjust:
            task.phi = task.weight
        self._runnable[task.tid] = task
        self._resume(task, now)
        self._apply_readjustment()

    def on_block(self, task: Task, now: float, ran: float) -> None:
        self._account(task, now, ran)
        self._runnable.pop(task.tid, None)
        self._leave(task, now)
        self._apply_readjustment()

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        self._account(task, now, ran)

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        if ran > 0:
            self._account(task, now, ran)
        self._runnable.pop(task.tid, None)
        self._leave(task, now)
        self._apply_readjustment()

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        if not self.readjust:
            task.phi = task.weight
        self._apply_readjustment()

    # -- extension points ------------------------------------------------

    def _enter(self, task: Task, now: float) -> None:
        """A new task joined the runnable set."""

    def _resume(self, task: Task, now: float) -> None:
        """A blocked task rejoined the runnable set."""
        self._enter(task, now)

    def _leave(self, task: Task, now: float) -> None:
        """A task left the runnable set (block or exit)."""

    def _account(self, task: Task, now: float, ran: float) -> None:
        """The task just ran ``ran`` seconds (any reason)."""

    # -- shared helpers ---------------------------------------------------

    def _apply_readjustment(self) -> None:
        if not self.readjust or self.machine is None:
            return
        readjust_tasks(list(self._runnable.values()), self.machine.num_cpus)

    def schedulable(self) -> list[Task]:
        """Runnable tasks not currently on a CPU, in tid order."""
        return [
            self._runnable[tid]
            for tid in sorted(self._runnable)
            if self._runnable[tid].state is TaskState.RUNNABLE
        ]

    def runnable_tasks(self) -> list[Task]:
        return [self._runnable[tid] for tid in sorted(self._runnable)]
