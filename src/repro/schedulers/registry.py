"""Name -> scheduler factory registry.

Used by the scenario layer, the experiment CLI and the ablation
benchmarks to sweep the same workload across every policy. Factories
are registered with the :func:`register` decorator; a single factory
function can register several pre-configured *variants* by stacking
decorators with different presets::

    @register("wfq")
    @register("wfq-readjust", readjust=True)
    def _wfq(**options) -> Scheduler:
        return WeightedFairQueueingScheduler(**options)

:func:`make_scheduler` accepts per-call overrides, so scenarios can
tweak policy parameters (e.g. the heuristic's scan depth) without
registering a new name::

    make_scheduler("sfs-heuristic", scan_depth=5)

Downstream projects add policies the same way: decorate any callable
returning an attached-to-nothing :class:`~repro.sim.scheduler.Scheduler`
and every experiment, sweep and CLI subcommand can name it.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.sim.scheduler import Scheduler

__all__ = [
    "SCHEDULERS",
    "register",
    "make_scheduler",
    "scheduler_names",
    "scheduler_params_for",
    "check_scheduler_params",
]

#: name -> factory accepting keyword overrides (populated by @register)
SCHEDULERS: dict[str, Callable[..., Scheduler]] = {}

#: name -> the raw decorated factory (before preset wrapping); lets
#: introspection reach the factory's ``param_source`` attribute
FACTORIES: dict[str, Callable[..., Scheduler]] = {}


def register(
    name: str, **preset: object
) -> Callable[[Callable[..., Scheduler]], Callable[..., Scheduler]]:
    """Register ``factory`` under ``name`` with preset keyword options.

    Returns the factory unchanged so decorators stack — each stacked
    ``@register`` adds one named variant of the same factory.
    """

    def decorator(factory: Callable[..., Scheduler]) -> Callable[..., Scheduler]:
        if name in SCHEDULERS:
            raise ValueError(f"scheduler {name!r} is already registered")

        def build(**overrides: object) -> Scheduler:
            options = dict(preset)
            options.update(overrides)
            return factory(**options)

        SCHEDULERS[name] = build
        FACTORIES[name] = factory
        return factory

    return decorator


def make_scheduler(name: str, **overrides: object) -> Scheduler:
    """Instantiate a fresh scheduler by registry name.

    ``overrides`` are keyword arguments forwarded to the policy's
    constructor on top of the variant's presets.
    """
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory(**overrides)


def scheduler_names() -> list[str]:
    """All registered scheduler names, sorted."""
    return sorted(SCHEDULERS)


def scheduler_params_for(name: str) -> frozenset[str] | None:
    """Keyword parameters ``name``'s scheduler constructor accepts.

    Built-in factories advertise their policy class via a
    ``param_source`` attribute; its constructor signature is the source
    of truth. Returns ``None`` — meaning "unknown, skip validation" —
    for unregistered names, factories without a ``param_source``
    (downstream registrations are unaffected by the check), and
    constructors taking ``**kwargs``.
    """
    source = getattr(FACTORIES.get(name), "param_source", None)
    if source is None:
        return None
    try:
        signature = inspect.signature(source)
    except (TypeError, ValueError):
        return None
    params: list[str] = []
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            params.append(parameter.name)
    return frozenset(params)


def check_scheduler_params(name: str, params: object) -> None:
    """Fail fast on ``scheduler_params`` keys the policy cannot take.

    Raises ``ValueError`` listing the offending keys and the valid
    ones, so a typo like ``scan_dpeth`` dies at :class:`Scenario`
    construction instead of deep inside a sweep worker. Silently
    accepts anything when :func:`scheduler_params_for` returns
    ``None`` — the scenario layer still reports unknown *scheduler
    names* at run time, exactly as before.
    """
    valid = scheduler_params_for(name)
    if valid is None:
        return
    unknown = sorted(set(params) - valid)
    if unknown:
        shown = ", ".join(repr(key) for key in unknown)
        accepted = ", ".join(sorted(valid)) or "(none)"
        raise ValueError(
            f"scheduler {name!r} does not accept scheduler_params "
            f"{shown}; accepted: {accepted}"
        )


def _populate() -> None:
    """Register the built-in policies.

    Runs at module import time; the function only scopes the scheduler
    imports and factory definitions so the module's public face stays
    the registry API itself.
    """
    from repro.core.hierarchical import HierarchicalSurplusFairScheduler
    from repro.core.sfs import SurplusFairScheduler
    from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
    from repro.schedulers.bvt import BorrowedVirtualTimeScheduler
    from repro.schedulers.gms_reference import GMSReferenceScheduler
    from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
    from repro.schedulers.lottery import LotteryScheduler
    from repro.schedulers.round_robin import RoundRobinScheduler
    from repro.schedulers.sfq import StartTimeFairScheduler
    from repro.schedulers.stride import StrideScheduler
    from repro.schedulers.wfq import WeightedFairQueueingScheduler

    @register("sfs")
    @register("sfs-noreadjust", readjust=False)
    @register("sfs-affinity", affinity_bonus=0.05)
    def _sfs(**options) -> Scheduler:
        """Surplus fair scheduling (Eq. 4), with variants via presets."""
        return SurplusFairScheduler(**options)

    _sfs.param_source = SurplusFairScheduler

    @register("sfs-heuristic")
    def _sfs_heuristic(**options) -> Scheduler:
        """SFS with the §3.2 production heuristic decision path."""
        return HeuristicSurplusFairScheduler(**options)

    _sfs_heuristic.param_source = HeuristicSurplusFairScheduler

    @register("hierarchical-sfs")
    def _hierarchical(**options) -> Scheduler:
        """Two-level SFS: surplus fairness across groups, then members."""
        return HierarchicalSurplusFairScheduler(**options)

    _hierarchical.param_source = HierarchicalSurplusFairScheduler

    @register("sfq")
    @register("sfq-readjust", readjust=True)
    def _sfq(**options) -> Scheduler:
        """Start-time fair queueing carried over from uniprocessors (§2)."""
        return StartTimeFairScheduler(**options)

    _sfq.param_source = StartTimeFairScheduler

    @register("gms-reference")
    def _gms(**options) -> Scheduler:
        """Discrete tracker of the generalized multiprocessor sharing ideal."""
        return GMSReferenceScheduler(**options)

    _gms.param_source = GMSReferenceScheduler

    @register("linux-ts")
    def _linux_ts(**options) -> Scheduler:
        """Linux 2.x-style time sharing (the paper's unfair baseline)."""
        return LinuxTimeSharingScheduler(**options)

    _linux_ts.param_source = LinuxTimeSharingScheduler

    @register("stride")
    @register("stride-readjust", readjust=True)
    def _stride(**options) -> Scheduler:
        """Stride scheduling; deterministic pass/stride proportional share."""
        return StrideScheduler(**options)

    _stride.param_source = StrideScheduler

    @register("wfq")
    @register("wfq-readjust", readjust=True)
    def _wfq(**options) -> Scheduler:
        """Weighted fair queueing with finish-tag ordering."""
        return WeightedFairQueueingScheduler(**options)

    _wfq.param_source = WeightedFairQueueingScheduler

    @register("bvt")
    @register("bvt-readjust", readjust=True)
    def _bvt(**options) -> Scheduler:
        """Borrowed virtual time with weighted warping."""
        return BorrowedVirtualTimeScheduler(**options)

    _bvt.param_source = BorrowedVirtualTimeScheduler

    @register("lottery")
    @register("lottery-readjust", readjust=True)
    def _lottery(**options) -> Scheduler:
        """Lottery scheduling; randomized proportional share (seeded)."""
        return LotteryScheduler(**options)

    _lottery.param_source = LotteryScheduler

    @register("round-robin")
    def _round_robin(**options) -> Scheduler:
        """Equal-slice round robin, ignoring weights."""
        return RoundRobinScheduler(**options)

    _round_robin.param_source = RoundRobinScheduler


_populate()
