"""Name -> scheduler factory registry.

Used by the experiment CLI and the ablation benchmarks to sweep the
same workload across every policy. Factories take no arguments;
policies with options register several pre-configured variants.
"""

from __future__ import annotations

from typing import Callable

from repro.core.hierarchical import HierarchicalSurplusFairScheduler
from repro.core.sfs import SurplusFairScheduler
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.schedulers.bvt import BorrowedVirtualTimeScheduler
from repro.schedulers.gms_reference import GMSReferenceScheduler
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.wfq import WeightedFairQueueingScheduler
from repro.sim.scheduler import Scheduler

__all__ = ["SCHEDULERS", "make_scheduler", "scheduler_names"]

SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "sfs": lambda: SurplusFairScheduler(),
    "sfs-noreadjust": lambda: SurplusFairScheduler(readjust=False),
    "sfs-affinity": lambda: SurplusFairScheduler(affinity_bonus=0.05),
    "sfs-heuristic": lambda: HeuristicSurplusFairScheduler(),
    "hierarchical-sfs": lambda: HierarchicalSurplusFairScheduler(),
    "sfq": lambda: StartTimeFairScheduler(),
    "sfq-readjust": lambda: StartTimeFairScheduler(readjust=True),
    "gms-reference": lambda: GMSReferenceScheduler(),
    "linux-ts": lambda: LinuxTimeSharingScheduler(),
    "stride": lambda: StrideScheduler(),
    "stride-readjust": lambda: StrideScheduler(readjust=True),
    "wfq": lambda: WeightedFairQueueingScheduler(),
    "wfq-readjust": lambda: WeightedFairQueueingScheduler(readjust=True),
    "bvt": lambda: BorrowedVirtualTimeScheduler(),
    "bvt-readjust": lambda: BorrowedVirtualTimeScheduler(readjust=True),
    "lottery": lambda: LotteryScheduler(),
    "lottery-readjust": lambda: LotteryScheduler(readjust=True),
    "round-robin": lambda: RoundRobinScheduler(),
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a fresh scheduler by registry name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory()


def scheduler_names() -> list[str]:
    """All registered scheduler names, sorted."""
    return sorted(SCHEDULERS)
