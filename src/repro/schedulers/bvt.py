"""Borrowed virtual time (BVT) [Duda & Cheriton, SOSP'99].

BVT is SFQ plus a latency knob: each thread has an *actual* virtual
time ``A`` (advanced by ``ran / phi`` like a start tag) and runs with
*effective* virtual time ``E = A - warp`` when warping is enabled.
Latency-sensitive threads are given a positive warp so that on wakeup
they temporarily jump ahead of the pack and run promptly, "borrowing"
against their future allocation.

With every warp at 0 the policy is exactly SFQ — the paper notes "BVT
reduces to SFQ when the latency parameter is set to zero", which is a
property test in this repository. Like the other GPS instantiations it
inherits SFQ's multiprocessor pathologies and accepts ``readjust=True``.

Use :meth:`set_warp` to assign a per-thread warp (seconds of virtual
time).
"""

from __future__ import annotations

from repro.core.fixed_point import TagArithmetic
from repro.core.tags import TaggedScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["BorrowedVirtualTimeScheduler"]


class BorrowedVirtualTimeScheduler(TaggedScheduler):
    """SFQ with per-thread warp for latency-sensitive threads."""

    name = "BVT"

    decision_cost_params = DecisionCostParams(base=0.85e-6, per_thread=0.03e-6)

    def __init__(
        self,
        readjust: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
    ) -> None:
        super().__init__(
            readjust=readjust, tag_math=tag_math, wake_preempt=wake_preempt
        )
        if readjust:
            self.name = "BVT+readjust"
        self._warps: dict[int, float] = {}

    def set_warp(self, task: Task, warp: float) -> None:
        """Assign a warp (virtual seconds of head start on wakeup)."""
        if warp < 0:
            raise ValueError(f"warp must be >= 0, got {warp}")
        self._warps[task.tid] = warp

    def warp_of(self, task: Task) -> float:
        return self._warps.get(task.tid, 0.0)

    def _effective(self, task: Task):
        return task.sched["S"] - self.warp_of(task)

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self._refresh_vtime()
        best: Task | None = None
        best_key = None
        for task in self.start_queue:
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (self._effective(task), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best
