"""Lottery scheduling [Waldspurger & Weihl, OSDI'94].

Randomized proportional sharing: each scheduling instance holds a
lottery over the runnable threads with tickets proportional to their
instantaneous weights. Fairness holds only in expectation — the
variance shows up clearly against SFS in the ablation benches.

Included because the paper cites it as the classic proportional-share
mechanism [30]; like the other GPS-derived policies it accepts
``readjust=True`` to cap infeasible ticket allocations.
"""

from __future__ import annotations

import random

from repro.schedulers.simple import SimpleQueueScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task

__all__ = ["LotteryScheduler"]


class LotteryScheduler(SimpleQueueScheduler):
    """Randomized ticket-proportional scheduling."""

    name = "lottery"

    decision_cost_params = DecisionCostParams(base=0.6e-6, per_thread=0.04e-6)

    def __init__(self, seed: int = 0, readjust: bool = False) -> None:
        super().__init__(readjust=readjust)
        self.rng = random.Random(seed)
        if readjust:
            self.name = "lottery+readjust"

    def pick_next(self, cpu: int, now: float) -> Task | None:
        candidates = self.schedulable()
        if not candidates:
            return None
        total = sum(t.phi for t in candidates)
        draw = self.rng.uniform(0.0, total)
        acc = 0.0
        for task in candidates:
            acc += task.phi
            if draw <= acc:
                return task
        return candidates[-1]  # float round-off fallback
