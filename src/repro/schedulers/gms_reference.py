"""GMS-reference scheduler: the idealized Eq. 3 surplus policy.

SFS approximates the surplus of Eq. 3,

.. math:: \\alpha_i = A_i(t_1, t_2) - A_i^{GMS}(t_1, t_2),

with the computable Eq. 4 form ``phi_i (S_i - v)`` because "a
scheduling algorithm that actually uses Equation 3 ... is impractical
since it requires the scheduler to compute A_i^GMS (which in turn
requires a simulation of GMS)" (§2.3). In *this* repository we have the
GMS fluid simulation, so the impractical ideal is implementable — and
valuable:

- it is the yardstick the paper derives SFS from, so comparing SFS
  against it quantifies the cost of the Eq. 4 approximation directly;
- unlike Eq. 4, the true surplus can go **negative** (a deficit):
  threads that received less than their fluid entitlement queue ahead
  of newly arrived threads (whose surplus starts at zero). The Eq. 4
  approximation clamps every surplus at >= 0, which in the short-jobs
  workload of Fig. 5 lets each fresh arrival start at the global floor.
  The reference policy shows what the unclamped ideal yields.

Overhead: O(t) fluid-rate updates at every runnable-set change — the
very cost the paper's approximation avoids. Fine in simulation.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.gms import FluidGMS
from repro.sim.costs import DecisionCostParams
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState

__all__ = ["GMSReferenceScheduler"]


class GMSReferenceScheduler(Scheduler):
    """Schedule the thread with the least *true* (Eq. 3) surplus.

    Maintains a live :class:`FluidGMS` integrator over the runnable
    set; the surplus of a thread is its actual accumulated service
    minus its fluid-GMS service, both measured since its arrival.
    """

    name = "GMS-reference"

    # Fluid-rate updates touch every runnable thread.
    decision_cost_params = DecisionCostParams(base=2.0e-6, per_thread=0.25e-6)

    def __init__(self, wake_preempt: bool = True) -> None:
        super().__init__()
        self.wake_preempt = wake_preempt
        self._runnable: dict[int, Task] = {}
        self._gms: FluidGMS | None = None

    def _fluid(self) -> FluidGMS:
        if self._gms is None:
            assert self.machine is not None
            self._gms = FluidGMS(self.machine.num_cpus)
        return self._gms

    # -- hooks ---------------------------------------------------------

    def on_arrival(self, task: Task, now: float) -> None:
        task.phi = task.weight
        self._fluid().arrive(task.tid, task.weight, now)
        self._runnable[task.tid] = task

    def on_wakeup(self, task: Task, now: float) -> None:
        self._fluid().arrive(task.tid, task.weight, now)
        self._runnable[task.tid] = task

    def on_block(self, task: Task, now: float, ran: float) -> None:
        self._fluid().depart(task.tid, now)
        self._runnable.pop(task.tid, None)

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        self._fluid().depart(task.tid, now)
        self._runnable.pop(task.tid, None)

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        self._fluid().advance_to(now)

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        task.phi = task.weight
        self._fluid().set_weight(task.tid, task.weight, now)

    # -- decisions --------------------------------------------------------

    def surplus_of(self, task: Task, now: float) -> float:
        """True Eq. 3 surplus: actual service minus fluid-GMS service.

        Includes service received in the current quantum so far when
        the task is running (used by the preemption rule).
        """
        fluid = self._fluid()
        fluid.advance_to(now)
        actual = task.service
        if task.state is TaskState.RUNNING and self.machine is not None:
            proc = self.machine.processors[task.last_cpu]
            if proc.task is task:
                actual += max(0.0, now - proc.charged_until)
        return actual - fluid.service_of(task.tid)

    def pick_next(self, cpu: int, now: float) -> Task | None:
        best: Task | None = None
        best_key: tuple | None = None
        for tid in sorted(self._runnable):
            task = self._runnable[tid]
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (self.surplus_of(task, now), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best

    def choose_victim(
        self, task: Task, running: Mapping[int, Task], now: float
    ) -> int | None:
        if not self.wake_preempt or not running:
            return None
        new_surplus = self.surplus_of(task, now)
        worst_cpu: int | None = None
        worst = None
        for cpu, victim in running.items():
            s = self.surplus_of(victim, now)
            if worst is None or s > worst:
                worst = s
                worst_cpu = cpu
        if worst is not None and new_surplus < worst:
            return worst_cpu
        return None

    def runnable_tasks(self) -> list[Task]:
        return [self._runnable[tid] for tid in sorted(self._runnable)]
