"""Stride scheduling [Waldspurger & Weihl, TM-528 1995].

A deterministic GPS instantiation the paper lists among the algorithms
that "also suffer from this drawback when employed for multiprocessors"
(§1.2). Each thread has ``stride = STRIDE1 / phi`` and a ``pass``
value; the scheduler always runs the thread with the minimum pass and
charges it one stride per quantum.

Two classical properties distinguish it from SFQ in our experiments:

- pass is charged **per quantum granted**, not per time actually run,
  so threads that block early are over-charged (stride's known
  I/O-unfriendliness);
- arriving threads join at the global pass (minimum pass over runnable
  threads), which reproduces the same short-jobs pathology as SFQ.

Pass ``readjust=True`` to couple it with §2.1 weight readjustment (the
ablation of Fig. 4 generalized to other GPS schedulers).
"""

from __future__ import annotations

from repro.schedulers.simple import SimpleQueueScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["StrideScheduler", "STRIDE1"]

#: the large constant whose division produces integer-ish strides
STRIDE1 = 1 << 20


class StrideScheduler(SimpleQueueScheduler):
    """Deterministic proportional-share scheduling via strides."""

    name = "stride"

    decision_cost_params = DecisionCostParams(base=0.7e-6, per_thread=0.05e-6)

    def __init__(self, readjust: bool = False) -> None:
        super().__init__(readjust=readjust)
        if readjust:
            self.name = "stride+readjust"

    def _global_pass(self) -> float:
        passes = [
            t.sched["pass"] for t in self._runnable.values() if "pass" in t.sched
        ]
        return min(passes) if passes else 0.0

    def _enter(self, task: Task, now: float) -> None:
        task.sched["pass"] = self._global_pass()

    def _resume(self, task: Task, now: float) -> None:
        # Returning threads may not bank credit while asleep.
        task.sched["pass"] = max(task.sched.get("pass", 0.0), self._global_pass())

    def _account(self, task: Task, now: float, ran: float) -> None:
        # Classical stride charges a full stride per quantum *granted*,
        # regardless of how much of it was used.
        task.sched["pass"] = task.sched.get("pass", 0.0) + STRIDE1 / task.phi

    def pick_next(self, cpu: int, now: float) -> Task | None:
        best: Task | None = None
        best_key = None
        for task in self._runnable.values():
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (task.sched.get("pass", 0.0), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best
