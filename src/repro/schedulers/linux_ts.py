"""The Linux 2.2 time-sharing scheduler (the paper's other baseline).

A faithful re-implementation of the 2.2.14 ``schedule()`` /
``goodness()`` logic at the granularity the paper's experiments
exercise:

- every process has a ``priority`` (ticks added per epoch; the default
  20 ticks x 10 ms = 200 ms is the paper's "maximum quantum duration")
  and a ``counter`` (remaining ticks this epoch);
- the scheduler picks the runnable process with the highest *goodness*
  = ``counter + priority``, plus an affinity bonus when the process
  last ran on the deciding CPU (``PROC_CHANGE_PENALTY``);
- a process whose counter is exhausted is skipped; when every runnable
  process has an empty counter a new epoch begins and **all** processes
  get ``counter = counter/2 + priority`` — sleepers keep half their
  remaining quantum, which is what gives I/O-bound processes their
  latency edge (Fig. 6(c));
- a waking process preempts the running process with the worst
  goodness if it beats it (``reschedule_idle()``).

Weights are ignored entirely — the scheduler has no notion of
proportional shares, which is why Fig. 6(b) shows the MPEG decoder's
frame rate collapsing as compilation load grows.
"""

from __future__ import annotations

from typing import Mapping

from repro.sim.costs import DecisionCostParams
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState

__all__ = ["LinuxTimeSharingScheduler"]

#: scheduler tick length (Linux HZ=100)
TICK = 0.01
#: affinity bonus for staying on the same CPU (arch value for i386 SMP)
PROC_CHANGE_PENALTY = 15


class LinuxTimeSharingScheduler(Scheduler):
    """Linux 2.2 goodness/epoch scheduler."""

    name = "linux-ts"

    # goodness() is a linear scan over the run queue; calibrated to
    # Table 1 (~1 us at 2 processes) and Fig. 7 (~5 us at 50).
    decision_cost_params = DecisionCostParams(base=0.45e-6, per_thread=0.09e-6)

    def __init__(self, tick: float = TICK, wake_preempt: bool = True) -> None:
        super().__init__()
        if tick <= 0:
            raise ValueError(f"tick must be > 0, got {tick}")
        self.tick = tick
        self.wake_preempt = wake_preempt
        self._runnable: dict[int, Task] = {}
        #: all live processes (sleepers included — epochs recharge them)
        self._all: dict[int, Task] = {}
        #: number of epoch recalculations performed (instrumentation)
        self.recalculations = 0

    # ------------------------------------------------------------------
    # goodness
    # ------------------------------------------------------------------

    def goodness(self, task: Task, cpu: int | None = None) -> float:
        """2.2's goodness(): 0 when the counter is spent, else
        counter + priority (+ affinity bonus)."""
        counter = task.sched.get("counter", 0.0)
        if counter <= 0:
            return 0.0
        g = counter + task.ts_priority
        if cpu is not None and task.last_cpu == cpu:
            g += PROC_CHANGE_PENALTY
        return g

    def _recalculate(self) -> None:
        """Start a new epoch: counter = counter/2 + priority for all."""
        self.recalculations += 1
        for task in self._all.values():
            counter = task.sched.get("counter", 0.0)
            task.sched["counter"] = counter / 2.0 + task.ts_priority

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def on_arrival(self, task: Task, now: float) -> None:
        task.sched["counter"] = float(task.ts_priority)
        self._all[task.tid] = task
        self._runnable[task.tid] = task

    def on_wakeup(self, task: Task, now: float) -> None:
        self._runnable[task.tid] = task

    def on_block(self, task: Task, now: float, ran: float) -> None:
        self._charge_ticks(task, ran)
        self._runnable.pop(task.tid, None)

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        self._charge_ticks(task, ran)

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        if ran > 0:
            self._charge_ticks(task, ran)
        self._runnable.pop(task.tid, None)
        self._all.pop(task.tid, None)

    def _charge_ticks(self, task: Task, ran: float) -> None:
        counter = task.sched.get("counter", 0.0)
        task.sched["counter"] = max(0.0, counter - ran / self.tick)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next(self, cpu: int, now: float) -> Task | None:
        if not self._runnable:
            return None
        best = self._scan(cpu)
        if best is None:
            # All runnable counters exhausted: new epoch, then rescan.
            self._recalculate()
            best = self._scan(cpu)
        return best

    def _scan(self, cpu: int) -> Task | None:
        best: Task | None = None
        best_g = 0.0
        for tid in sorted(self._runnable):
            task = self._runnable[tid]
            if task.state is not TaskState.RUNNABLE:
                continue
            g = self.goodness(task, cpu)
            if g > best_g:
                best_g = g
                best = task
        return best

    def quantum_for(self, task: Task, cpu: int, now: float) -> float | None:
        """Run until the counter is spent (the kernel decrements per
        tick; we grant the equivalent contiguous slice)."""
        counter = task.sched.get("counter", 0.0)
        return max(self.tick, counter * self.tick)

    def choose_victim(
        self, task: Task, running: Mapping[int, Task], now: float
    ) -> int | None:
        """reschedule_idle(): preempt the CPU running the least-good
        process if the woken process beats it."""
        if not self.wake_preempt or not running:
            return None
        worst_cpu: int | None = None
        worst_g: float | None = None
        for cpu, victim in running.items():
            g = self.goodness(victim, cpu)
            if worst_g is None or g < worst_g:
                worst_g = g
                worst_cpu = cpu
        if worst_cpu is None:
            return None
        # The woken process competes for worst_cpu, where it enjoys no
        # affinity bonus unless it last ran there.
        if self.goodness(task, worst_cpu) > (worst_g or 0.0):
            return worst_cpu
        return None

    def runnable_tasks(self) -> list[Task]:
        return [self._runnable[tid] for tid in sorted(self._runnable)]
