"""Start-time fair queueing (SFQ) — the paper's principal baseline.

SFQ [Goyal, Guo & Vin, OSDI'96] maintains the same start/finish tags as
SFS but schedules the thread with the **minimum start tag**. On a
uniprocessor this provides strong fairness bounds; on a multiprocessor
it exhibits the two pathologies the paper demonstrates:

- **infeasible weights** (Example 1 / Figs. 1 & 4(a)): a thread whose
  weight demands more than one processor's bandwidth advances its tag
  slowly, holds the minimum forever, and starves equal-weight peers
  when a third thread arrives;
- **short-jobs unfairness** (Example 2 / Fig. 5(a)): frequent arrivals
  are initialized at the minimum tag and run in "spurts", so
  short-lived threads grab far more than their share.

Pass ``readjust=True`` to couple SFQ with the §2.1 weight readjustment
algorithm — the Fig. 4(b) configuration, which removes starvation but
(per §4.3) not the short-jobs unfairness.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.fixed_point import TagArithmetic
from repro.core.tags import TaggedScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task

__all__ = ["StartTimeFairScheduler"]


class StartTimeFairScheduler(TaggedScheduler):
    """Multiprocessor SFQ as described in §1.2 of the paper.

    Each scheduling instance picks the runnable (non-running) thread
    with the minimum start tag; arriving threads get ``S = v`` (the
    minimum start tag over runnable threads), waking threads
    ``S = max(F, v)``.
    """

    name = "SFQ"

    # Head-of-queue decision with sorted insertion on updates: cheap and
    # nearly independent of run-queue length.
    decision_cost_params = DecisionCostParams(base=0.8e-6, per_thread=0.03e-6)

    def __init__(
        self,
        readjust: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
    ) -> None:
        super().__init__(
            readjust=readjust, tag_math=tag_math, wake_preempt=wake_preempt
        )
        if readjust:
            self.name = "SFQ+readjust"

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self._refresh_vtime()
        return self._first_schedulable(self.start_queue)

    def choose_victim(
        self, task: Task, running: Mapping[int, Task], now: float
    ) -> int | None:
        """Preempt the running thread with the largest projected start
        tag if the woken thread's tag is strictly smaller (SFQ rank)."""
        if not self.wake_preempt or not running:
            return None
        new_tag = task.sched["S"]
        worst_cpu: int | None = None
        worst_tag = None
        for cpu, victim in running.items():
            projected = self.tags.finish_tag(
                victim.sched["S"], self._running_elapsed(cpu, now), victim.phi
            )
            if worst_tag is None or projected > worst_tag:
                worst_tag = projected
                worst_cpu = cpu
        if worst_tag is not None and new_tag < worst_tag:
            return worst_cpu
        return None
