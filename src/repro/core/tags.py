"""Start/finish-tag and virtual-time machinery shared by SFQ and SFS.

Both start-time fair queueing (the paper's principal baseline) and
surplus fair scheduling maintain per-thread *start tags* ``S_i`` and
*finish tags* ``F_i`` updated per Eqs. 5-6 of the paper:

- when a thread runs for ``q`` seconds, ``F_i = S_i + q / phi_i``;
- a continuously runnable thread's next start tag is ``F_i``;
- a thread that just woke up gets ``S_i = max(F_i, v)`` so that
  sleeping never accumulates credit;
- a newly arrived thread gets ``S_i = v``;
- the *virtual time* ``v`` is the minimum start tag over runnable
  threads, holds at the last finish tag when the system goes idle, and
  starts at zero.

:class:`TaggedScheduler` implements all of this on top of the machine's
hook points, maintains the start-tag-sorted queue (one of the paper's
three queues, §3.1), optionally maintains the §2.1 weight readjustment
at every runnable-set change, and optionally uses kernel-style
fixed-point tag arithmetic with wrap-around rebasing (§3.2). Concrete
policies (SFQ's min-start-tag rule, SFS's min-surplus rule) subclass it.

Readjustment is driven *incrementally*: instead of re-running the full
descending-weight scan over the whole runnable set per event (O(n) —
the dominant cost at high N once the runqueues went logarithmic), the
scheduler feeds runnable-set deltas to a
:class:`~repro.core.weights.ReadjustmentFrontier`, which repairs the
cap point in O(log n + p) per event and produces bit-identical ``phi``
values to the batch oracle (:meth:`TaggedScheduler.verify_readjustment`
asserts this; so do the hypothesis model tests).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.fixed_point import FloatTags, TagArithmetic
from repro.core.weights import ReadjustmentFrontier, readjust
from repro.sim.runqueue import SortedTaskList
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState

__all__ = ["TaggedScheduler"]


class TaggedScheduler(Scheduler):
    """Base class for virtual-time (tag-based) schedulers.

    Parameters
    ----------
    readjust:
        Maintain the §2.1 weight readjustment at every arrival,
        departure, block, wakeup and weight change (incrementally, via
        the feasibility frontier), keeping ``task.phi`` current. SFS
        always enables this; for the GPS baselines it is the experiment
        knob of Fig. 4.
    tag_math:
        Tag arithmetic strategy (float reference or kernel fixed point).
    wake_preempt:
        Whether a newly runnable thread may preempt a running one with a
        worse tag/surplus (Linux ``reschedule_idle()`` semantics).
    """

    name = "tagged"

    def __init__(
        self,
        readjust: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
    ) -> None:
        super().__init__()
        self.readjust = readjust
        #: incremental §2.1 frontier (created at attach; needs num_cpus)
        self.frontier: ReadjustmentFrontier | None = None
        self.tags: TagArithmetic = tag_math if tag_math is not None else FloatTags()
        self.wake_preempt = wake_preempt
        #: runnable tasks (RUNNABLE + RUNNING), sorted by start tag
        self.start_queue = SortedTaskList(key=lambda t: t.sched["S"])
        self._runnable: dict[int, Task] = {}
        #: every live task this scheduler has tags for (incl. blocked) —
        #: needed so a wrap-around rebase can shift *all* tags coherently
        self._tagged: dict[int, Task] = {}
        self._vtime = self.tags.zero
        self._last_finish = self.tags.zero
        #: count of rebase operations performed (wrap-around handling)
        self.rebase_count = 0

    def attach(self, machine) -> None:
        super().attach(machine)
        if self.readjust:
            self.frontier = ReadjustmentFrontier(machine.num_cpus)

    # ------------------------------------------------------------------
    # virtual time
    # ------------------------------------------------------------------

    @property
    def virtual_time(self):
        """Current virtual time ``v`` (min start tag; see module doc)."""
        return self._vtime

    def _refresh_vtime(self) -> bool:
        """Recompute ``v``; returns True if it changed."""
        head = self.start_queue.head()
        new_v = head.sched["S"] if head is not None else self._last_finish
        # sfs-lint: disable=SFS005 (bit-identity change detection: did v move)
        if new_v != self._vtime:
            self._vtime = new_v
            return True
        return False

    # ------------------------------------------------------------------
    # hook implementations
    # ------------------------------------------------------------------

    def on_arrival(self, task: Task, now: float) -> None:
        self._refresh_vtime()
        task.sched["S"] = self._vtime
        task.sched["F"] = self._vtime
        self._runnable[task.tid] = task
        self._tagged[task.tid] = task
        self.start_queue.add(task)
        if self.frontier is not None:
            self.frontier.add(task)
        else:
            task.phi = task.weight
        self._runnable_set_changed(task, now)

    def on_wakeup(self, task: Task, now: float) -> None:
        self._refresh_vtime()
        s = task.sched.get("F", self._vtime)
        task.sched["S"] = max(s, self._vtime)
        self._runnable[task.tid] = task
        self.start_queue.add(task)
        if self.frontier is not None:
            self.frontier.add(task)
        else:
            task.phi = task.weight
        self._runnable_set_changed(task, now)

    def on_block(self, task: Task, now: float, ran: float) -> None:
        self._finish_quantum(task, ran)
        self._remove_runnable(task)
        if self.frontier is not None:
            self.frontier.remove(task)
        self._runnable_set_changed(task, now)

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        if ran > 0:
            self._finish_quantum(task, ran)
        self._remove_runnable(task)
        self._tagged.pop(task.tid, None)
        if self.frontier is not None:
            self.frontier.remove(task)
        self._runnable_set_changed(task, now)

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        self._finish_quantum(task, ran)
        # Continuously runnable: next start tag is the finish tag (Eq. 6).
        task.sched["S"] = task.sched["F"]
        self.start_queue.reposition(task)
        self._maybe_rebase()
        self._tags_updated(task, now)

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        if self.frontier is None:
            task.phi = task.weight
        if task.is_runnable:
            if self.frontier is not None:
                # Blocked tasks are not frontier members; their phi is
                # re-derived on wakeup from the then-current weight.
                self.frontier.reweight(task, old_weight)
            self._runnable_set_changed(task, now)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def _finish_quantum(self, task: Task, ran: float) -> None:
        """Apply Eq. 5 after a quantum of length ``ran`` (may be 0)."""
        f = self.tags.finish_tag(task.sched["S"], ran, task.phi)
        task.sched["F"] = f
        self._last_finish = f

    def _remove_runnable(self, task: Task) -> None:
        self._runnable.pop(task.tid, None)
        self.start_queue.discard(task)
        self._maybe_rebase()

    def verify_readjustment(self) -> None:
        """Assert frontier phis equal the batch §2.1 oracle (test hook).

        Runs :func:`repro.core.weights.readjust` over a snapshot of the
        runnable weights — without touching any task — and demands
        bit-identical agreement with the incrementally maintained phis.
        """
        if self.frontier is None or self.machine is None:
            return
        tasks = list(self._runnable.values())
        expected = readjust([t.weight for t in tasks], self.machine.num_cpus)
        for task, phi in zip(tasks, expected):
            # sfs-lint: disable=SFS005 (oracle agreement is bit-exact by construction)
            if task.phi != phi:
                raise AssertionError(
                    "frontier phi diverged from batch oracle for "
                    f"{task.name}: {task.phi!r} != {phi!r}"
                )

    def _maybe_rebase(self) -> None:
        """Wrap-around handling (§3.2): shift all tags down by min S."""
        self._refresh_vtime()
        if not self.tags.needs_rebase(self._vtime):
            return
        head = self.start_queue.head()
        offset = head.sched["S"] if head is not None else self._last_finish
        for task in self._tagged.values():
            task.sched["S"] = self.tags.shift(task.sched["S"], offset)
            task.sched["F"] = self.tags.shift(task.sched["F"], offset)
        self._last_finish = self.tags.shift(self._last_finish, offset)
        self.start_queue.resort_insertion()
        self._vtime = self.tags.shift(self._vtime, offset)
        self.rebase_count += 1
        self._after_rebase(offset)

    # ------------------------------------------------------------------
    # subclass extension points
    # ------------------------------------------------------------------

    def _runnable_set_changed(self, task: Task, now: float) -> None:
        """Called after any arrival/wakeup/block/exit/weight change."""

    def _tags_updated(self, task: Task, now: float) -> None:
        """Called after a preemption updated a task's tags."""

    def _after_rebase(self, offset) -> None:
        """Called after a wrap-around rebase shifted all tags."""

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def runnable_tasks(self) -> list[Task]:
        return [self._runnable[tid] for tid in sorted(self._runnable)]

    def _first_schedulable(self, queue: SortedTaskList) -> Task | None:
        """First task in ``queue`` not currently on a CPU."""
        for task in queue:
            if task.state is TaskState.RUNNABLE:
                return task
        return None

    def _running_elapsed(self, cpu: int, now: float) -> float:
        """Seconds the task on ``cpu`` has been running (for victim choice)."""
        assert self.machine is not None
        proc = self.machine.processors[cpu]
        return max(0.0, now - proc.dispatch_time)

    def surplus_of(self, task: Task, vtime=None):
        """Eq. 4 surplus of a task against the given (or current) v."""
        v = self._vtime if vtime is None else vtime
        return self.tags.surplus(task.phi, task.sched["S"], v)

    def choose_victim(
        self, task: Task, running: Mapping[int, Task], now: float
    ) -> int | None:
        """Default wakeup-preemption rule for tag-based schedulers.

        Preempt the CPU whose thread has consumed the most *current*
        surplus — its Eq. 4 surplus plus the service received in the
        quantum so far — provided the woken thread's surplus is strictly
        smaller. Subclasses may override with policy-specific rules.
        """
        if not self.wake_preempt or not running:
            return None
        self._refresh_vtime()
        new_surplus = self.surplus_of(task)
        worst_cpu: int | None = None
        worst_surplus = None
        for cpu, victim in running.items():
            # Surplus including the service consumed so far this quantum
            # (project the start tag forward by the elapsed run time).
            projected = self.tags.finish_tag(
                victim.sched["S"], self._running_elapsed(cpu, now), victim.phi
            )
            current = self.tags.surplus(victim.phi, projected, self._vtime)
            if worst_surplus is None or current > worst_surplus:
                worst_surplus = current
                worst_cpu = cpu
        if worst_surplus is not None and new_surplus < worst_surplus:
            return worst_cpu
        return None
