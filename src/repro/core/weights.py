"""The weight readjustment algorithm (§2.1, Fig. 2 of the paper).

On a ``p``-processor machine a weight assignment is *feasible* iff every
thread's requested share can actually be consumed:

.. math::  w_i / \\sum_j w_j \\le 1/p                      \\qquad (Eq. 1)

(a single thread cannot use more than one processor's worth of
bandwidth). Infeasible assignments make GPS-based schedulers unfair or
starve threads (Example 1 / Fig. 1 of the paper). The readjustment
algorithm maps an infeasible assignment to the *closest* feasible one:

- walk the threads in descending weight order;
- if thread ``i`` violates Eq. 1 for the remaining threads/processors,
  recursively solve for the rest with one fewer processor, then set
  ``w_i`` so its share of the remainder is exactly one processor;
- threads that satisfy the constraint are never modified.

Key properties (proved in the paper, verified by our property tests):

- the result is feasible;
- every *adjusted* thread ends with overall share exactly ``1/p``;
- at most ``p - 1`` threads are adjusted;
- feasible inputs are returned unchanged; the map is idempotent;
- unadjusted threads keep their original weights (hence their mutual
  ratios).

Degenerate case (not discussed in the paper): when there are *fewer*
runnable threads than processors (``t < p``), Eq. 1 is unsatisfiable —
shares sum to one, so some share must exceed ``1/p``. Every thread can
simply hold a full processor, which is what fluid GMS water-filling
yields; the natural extension of the algorithm is therefore **equal
instantaneous weights** (all threads capped at the full-processor
share). Equal phis also keep start tags advancing at equal rates, so no
relative credit builds up to starve anyone when more threads arrive.
For ``t == p`` the paper's recursion already does the right thing
(e.g. weights ``[10, 1]`` on two processors readjust to ``[1, 1]``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import Task

__all__ = [
    "is_feasible",
    "violators",
    "readjust_sorted",
    "readjust_sorted_iterative",
    "readjust",
    "readjust_tasks",
    "waterfill_shares",
]

#: relative slack used when testing Eq. 1 so that shares lying exactly on
#: the boundary (as produced by readjustment itself) test as feasible.
_REL_TOL = 1e-9


def _violates(weight: float, total: float, p: int) -> bool:
    """Does ``weight`` request more than 1/p of ``total``? (Eq. 1)."""
    return weight * p > total * (1.0 + _REL_TOL)


def is_feasible(weights: Sequence[float], p: int) -> bool:
    """Check Eq. 1 for every weight. Empty assignments are feasible."""
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    total = float(sum(weights))
    if total <= 0 and weights:
        raise ValueError("weights must be positive")
    return not any(_violates(w, total, p) for w in weights)


def violators(weights: Sequence[float], p: int) -> list[int]:
    """Indices of weights that violate the feasibility constraint.

    At most ``p - 1`` indices can be returned (the paper's §2.1
    observation: the requested fractions sum to one, so fewer than ``p``
    of them can exceed ``1/p``).
    """
    total = float(sum(weights))
    return [i for i, w in enumerate(weights) if _violates(w, total, p)]


def readjust_sorted(weights: Sequence[float], p: int) -> list[float]:
    """The paper's recursive algorithm (Fig. 2) on weights sorted in
    descending order. Returns a new list; the input must be sorted.

    Raises ``ValueError`` on unsorted input, non-positive weights, or
    ``p < 1``.
    """
    w = [float(x) for x in weights]
    _validate(w, p)
    if not w:
        return w
    if len(w) < p:
        return _equalize(w)
    _readjust_recursive(w, 0, p)
    return w


def _equalize(w: list[float]) -> list[float]:
    """Degenerate ``t < p`` case (see module docstring): every thread
    holds a full processor; equal instantaneous weights express that.
    Already-equal inputs are returned unchanged so the map is exactly
    idempotent (a recomputed mean can differ by an ulp)."""
    if all(x == w[0] for x in w):
        return list(w)
    mean = sum(w) / len(w)
    return [mean] * len(w)


def _validate(w: list[float], p: int) -> None:
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    for x in w:
        if x <= 0:
            raise ValueError(f"weights must be > 0, got {x}")
    # Tolerance-based order check: values produced by a previous
    # readjustment can wobble by an ulp.
    for i in range(len(w) - 1):
        if w[i] < w[i + 1] - _REL_TOL * max(w[i + 1], 1.0):
            raise ValueError("weights must be sorted in descending order")


def _readjust_recursive(w: list[float], i: int, p: int) -> None:
    """Direct transcription of Fig. 2 (0-based indices).

    ``w[i:]`` are the threads still to examine; ``p`` the processors
    still available to them. The scan stops at the first thread that
    satisfies the constraint (all later threads have smaller weights and
    therefore request smaller, feasible fractions).
    """
    remaining = len(w) - i
    if remaining == 0 or remaining < p:
        # Defensive: unreachable when called with t >= p at the top
        # level, because remaining and p decrease in lockstep.
        return
    total = sum(w[i:])
    if _violates(w[i], total, p):
        _readjust_recursive(w, i + 1, p - 1)
        tail_sum = sum(w[i + 1:])
        w[i] = tail_sum / (p - 1)


def readjust_sorted_iterative(weights: Sequence[float], p: int) -> list[float]:
    """Closed-form equivalent of :func:`readjust_sorted`.

    Every adjusted thread ends with overall share exactly ``1/p``
    (provable by induction over the Fig. 2 recursion), so all adjusted
    weights are *equal*: with ``k`` violators and unadjusted suffix sum
    ``S``, the final total is ``T = S * p / (p - k)`` and each adjusted
    weight is ``T / p = S / (p - k)``. Computing that value once is
    numerically exact where the level-by-level recursion accumulates
    ulp-scale asymmetries; this is therefore the production path used
    by :func:`readjust`, with the recursion kept as the paper-literal
    reference (the two are property-tested for agreement).
    """
    w = [float(x) for x in weights]
    _validate(w, p)
    t = len(w)
    if not w:
        return w
    if t < p:
        return _equalize(w)
    # Suffix sums of the original weights: suffix[i] = sum(w[i:]).
    suffix = [0.0] * (t + 1)
    for i in range(t - 1, -1, -1):
        suffix[i] = suffix[i + 1] + w[i]
    # Find k = number of adjusted threads (scan while violating).
    k = 0
    while k < min(p - 1, t) and _violates(w[k], suffix[k], p - k):
        k += 1
    if k:
        adjusted = suffix[k] / (p - k)
        for i in range(k):
            w[i] = adjusted
    return w


def readjust(weights: Sequence[float], p: int) -> list[float]:
    """Readjust an *arbitrary-order* weight vector.

    Sorts internally (descending), applies the algorithm (closed form —
    see :func:`readjust_sorted_iterative`), and scatters the adjusted
    values back to the original positions. Stable for ties: equal
    weights map to equal adjusted weights.
    """
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    sorted_w = [weights[i] for i in order]
    adjusted = readjust_sorted_iterative(sorted_w, p)
    result = [0.0] * len(weights)
    for pos, idx in enumerate(order):
        result[idx] = adjusted[pos]
    return result


def waterfill_shares(
    weights: Sequence[float], caps: Sequence[float]
) -> list[float]:
    """Generalized readjustment: proportional shares under per-entity caps.

    The §2.1 algorithm is the special case where every cap is ``1/p``
    (one thread can use at most one processor). The hierarchical
    scheduler (§5 extension) needs the general form: a scheduling
    *class* with ``n`` runnable members on a ``p``-CPU machine can use
    at most ``min(n, p)/p`` of the capacity.

    Iteratively pins entities whose proportional share exceeds their
    cap and redistributes the remainder among the rest — the classic
    water-filling computation. Returns shares summing to
    ``min(1, sum(caps))``.
    """
    if len(weights) != len(caps):
        raise ValueError("weights and caps must have equal length")
    for w in weights:
        if w <= 0:
            raise ValueError(f"weights must be > 0, got {w}")
    for c in caps:
        if not 0 < c <= 1:
            raise ValueError(f"caps must be in (0, 1], got {c}")
    n = len(weights)
    shares = [0.0] * n
    free = list(range(n))
    budget = 1.0
    # Each pass pins at least one entity, so at most n passes.
    for _ in range(n):
        total = sum(weights[i] for i in free)
        if total <= 0 or budget <= 0:
            break
        pinned = []
        for i in free:
            proportional = budget * weights[i] / total
            if proportional > caps[i] * (1.0 + _REL_TOL):
                pinned.append(i)
        if not pinned:
            for i in free:
                shares[i] = budget * weights[i] / total
            return shares
        for i in pinned:
            shares[i] = caps[i]
            budget -= caps[i]
            free.remove(i)
    # Everyone pinned (sum of caps < 1): budget may remain unused.
    return shares


def readjust_tasks(tasks: Sequence["Task"], p: int) -> list["Task"]:
    """Recompute the instantaneous weight ``phi`` of each runnable task.

    This is the entry point the schedulers call at every arrival,
    departure, block, wakeup and weight change (§3.1). Reads
    ``task.weight`` (the user assignment, never modified) and writes
    ``task.phi``. Returns the tasks whose ``phi`` changed.
    """
    if not tasks:
        return []
    weights = [t.weight for t in tasks]
    adjusted = readjust(weights, p)
    changed = []
    for task, phi in zip(tasks, adjusted):
        if task.phi != phi:
            task.phi = phi
            changed.append(task)
    return changed
