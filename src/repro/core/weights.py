"""The weight readjustment algorithm (§2.1, Fig. 2 of the paper).

On a ``p``-processor machine a weight assignment is *feasible* iff every
thread's requested share can actually be consumed:

.. math::  w_i / \\sum_j w_j \\le 1/p                      \\qquad (Eq. 1)

(a single thread cannot use more than one processor's worth of
bandwidth). Infeasible assignments make GPS-based schedulers unfair or
starve threads (Example 1 / Fig. 1 of the paper). The readjustment
algorithm maps an infeasible assignment to the *closest* feasible one:

- walk the threads in descending weight order;
- if thread ``i`` violates Eq. 1 for the remaining threads/processors,
  recursively solve for the rest with one fewer processor, then set
  ``w_i`` so its share of the remainder is exactly one processor;
- threads that satisfy the constraint are never modified.

Key properties (proved in the paper, verified by our property tests):

- the result is feasible;
- every *adjusted* thread ends with overall share exactly ``1/p``;
- at most ``p - 1`` threads are adjusted;
- feasible inputs are returned unchanged; the map is idempotent;
- unadjusted threads keep their original weights (hence their mutual
  ratios).

Degenerate case (not discussed in the paper): when there are *fewer*
runnable threads than processors (``t < p``), Eq. 1 is unsatisfiable —
shares sum to one, so some share must exceed ``1/p``. Every thread can
simply hold a full processor, which is what fluid GMS water-filling
yields; the natural extension of the algorithm is therefore **equal
instantaneous weights** (all threads capped at the full-processor
share). Equal phis also keep start tags advancing at equal rates, so no
relative credit builds up to starve anyone when more threads arrive.
For ``t == p`` the paper's recursion already does the right thing
(e.g. weights ``[10, 1]`` on two processors readjust to ``[1, 1]``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import Task

__all__ = [
    "is_feasible",
    "violators",
    "readjust_sorted",
    "readjust_sorted_iterative",
    "readjust",
    "readjust_tasks",
    "waterfill_shares",
    "ReadjustmentFrontier",
]

#: relative slack used when testing Eq. 1 so that shares lying exactly on
#: the boundary (as produced by readjustment itself) test as feasible.
_REL_TOL = 1e-9


def _violates(weight: float, total: float, p: int) -> bool:
    """Does ``weight`` request more than 1/p of ``total``? (Eq. 1)."""
    return weight * p > total * (1.0 + _REL_TOL)


class _ExactWeightSum:
    """Exact running sum of floats, as the dyadic rational ``num / 2**shift``.

    Every finite float is a dyadic rational, so a sum of floats is
    exactly representable this way with integer arithmetic. The point of
    carrying the sum exactly is *order independence*: converting back to
    float is correctly rounded, so two histories that reach the same
    multiset of weights — a batch pass summing a sorted list versus an
    incremental frontier adding and removing one weight at a time —
    yield bit-identical totals, and therefore bit-identical adjusted
    ``phi`` values. A naive float accumulator would drift with the event
    history and break golden-output reproducibility.
    """

    __slots__ = ("num", "shift")

    def __init__(self) -> None:
        self.num = 0  #: integer numerator
        self.shift = 0  #: value is num / 2**shift

    def _merge(self, n: int, s: int) -> None:
        if s > self.shift:
            self.num <<= s - self.shift
            self.shift = s
        elif s < self.shift:
            n <<= self.shift - s
        self.num += n
        if self.num == 0:
            self.shift = 0
        elif self.shift:
            # Strip common powers of two to keep the integers small.
            trailing = (self.num & -self.num).bit_length() - 1
            drop = min(trailing, self.shift)
            if drop:
                self.num >>= drop
                self.shift -= drop

    @staticmethod
    def _dyadic(x: float) -> tuple[int, int]:
        num, den = float(x).as_integer_ratio()
        return num, den.bit_length() - 1  # den is a power of two

    def add(self, x: float) -> None:
        n, s = self._dyadic(x)
        self._merge(n, s)

    def sub(self, x: float) -> None:
        n, s = self._dyadic(x)
        self._merge(-n, s)

    def as_float(self) -> float:
        # int / int true division is correctly rounded in Python.
        return self.num / (1 << self.shift)

    def copy(self) -> "_ExactWeightSum":
        out = _ExactWeightSum()
        out.num = self.num
        out.shift = self.shift
        return out

    @classmethod
    def of(cls, values: Sequence[float]) -> "_ExactWeightSum":
        out = cls()
        for x in values:
            out.add(x)
        return out


def is_feasible(weights: Sequence[float], p: int) -> bool:
    """Check Eq. 1 for every weight. Empty assignments are feasible."""
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    total = float(sum(weights))
    if total <= 0 and weights:
        raise ValueError("weights must be positive")
    return not any(_violates(w, total, p) for w in weights)


def violators(weights: Sequence[float], p: int) -> list[int]:
    """Indices of weights that violate the feasibility constraint.

    At most ``p - 1`` indices can be returned (the paper's §2.1
    observation: the requested fractions sum to one, so fewer than ``p``
    of them can exceed ``1/p``).
    """
    total = float(sum(weights))
    return [i for i, w in enumerate(weights) if _violates(w, total, p)]


def readjust_sorted(weights: Sequence[float], p: int) -> list[float]:
    """The paper's recursive algorithm (Fig. 2) on weights sorted in
    descending order. Returns a new list; the input must be sorted.

    Raises ``ValueError`` on unsorted input, non-positive weights, or
    ``p < 1``.
    """
    w = [float(x) for x in weights]
    _validate(w, p)
    if not w:
        return w
    if len(w) < p:
        return _equalize(w)
    _readjust_recursive(w, 0, p)
    return w


def _equalize(w: list[float]) -> list[float]:
    """Degenerate ``t < p`` case (see module docstring): every thread
    holds a full processor; equal instantaneous weights express that.
    Already-equal inputs are returned unchanged so the map is exactly
    idempotent. The mean is taken over the *exact* total so that the
    incremental frontier — which reaches the same runnable set by a
    different event history — computes the identical float."""
    if all(x == w[0] for x in w):
        return list(w)
    mean = _ExactWeightSum.of(w).as_float() / len(w)
    return [mean] * len(w)


def _validate(w: list[float], p: int) -> None:
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    for x in w:
        if x <= 0:
            raise ValueError(f"weights must be > 0, got {x}")
    # Tolerance-based order check: values produced by a previous
    # readjustment can wobble by an ulp.
    for i in range(len(w) - 1):
        if w[i] < w[i + 1] - _REL_TOL * max(w[i + 1], 1.0):
            raise ValueError("weights must be sorted in descending order")


def _readjust_recursive(w: list[float], i: int, p: int) -> None:
    """Direct transcription of Fig. 2 (0-based indices).

    ``w[i:]`` are the threads still to examine; ``p`` the processors
    still available to them. The scan stops at the first thread that
    satisfies the constraint (all later threads have smaller weights and
    therefore request smaller, feasible fractions).
    """
    remaining = len(w) - i
    if remaining == 0 or remaining < p:
        # Defensive: unreachable when called with t >= p at the top
        # level, because remaining and p decrease in lockstep.
        return
    total = sum(w[i:])
    if _violates(w[i], total, p):
        _readjust_recursive(w, i + 1, p - 1)
        tail_sum = sum(w[i + 1:])
        w[i] = tail_sum / (p - 1)


def readjust_sorted_iterative(weights: Sequence[float], p: int) -> list[float]:
    """Closed-form equivalent of :func:`readjust_sorted`.

    Every adjusted thread ends with overall share exactly ``1/p``
    (provable by induction over the Fig. 2 recursion), so all adjusted
    weights are *equal*: with ``k`` violators and unadjusted suffix sum
    ``S``, the final total is ``T = S * p / (p - k)`` and each adjusted
    weight is ``T / p = S / (p - k)``. Computing that value once is
    numerically exact where the level-by-level recursion accumulates
    ulp-scale asymmetries; this is therefore the production path used
    by :func:`readjust`, with the recursion kept as the paper-literal
    reference (the two are property-tested for agreement).
    """
    w = [float(x) for x in weights]
    _validate(w, p)
    t = len(w)
    if not w:
        return w
    if t < p:
        return _equalize(w)
    # Scan while violating, peeling each violator off the exact suffix
    # sum. suffix_k = sum(w[k:]) carried exactly — the float handed to
    # the Eq. 1 test is correctly rounded and therefore independent of
    # summation order, which keeps this batch oracle bit-identical to
    # the incremental ReadjustmentFrontier.
    remaining = _ExactWeightSum.of(w)
    k = 0
    limit = min(p - 1, t)
    while k < limit and _violates(w[k], remaining.as_float(), p - k):
        remaining.sub(w[k])
        k += 1
    if k:
        adjusted = remaining.as_float() / (p - k)
        for i in range(k):
            w[i] = adjusted
    return w


def readjust(weights: Sequence[float], p: int) -> list[float]:
    """Readjust an *arbitrary-order* weight vector.

    Sorts internally (descending), applies the algorithm (closed form —
    see :func:`readjust_sorted_iterative`), and scatters the adjusted
    values back to the original positions. Stable for ties: equal
    weights map to equal adjusted weights.
    """
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    sorted_w = [weights[i] for i in order]
    adjusted = readjust_sorted_iterative(sorted_w, p)
    result = [0.0] * len(weights)
    for pos, idx in enumerate(order):
        result[idx] = adjusted[pos]
    return result


def waterfill_shares(
    weights: Sequence[float], caps: Sequence[float]
) -> list[float]:
    """Generalized readjustment: proportional shares under per-entity caps.

    The §2.1 algorithm is the special case where every cap is ``1/p``
    (one thread can use at most one processor). The hierarchical
    scheduler (§5 extension) needs the general form: a scheduling
    *class* with ``n`` runnable members on a ``p``-CPU machine can use
    at most ``min(n, p)/p`` of the capacity.

    Iteratively pins entities whose proportional share exceeds their
    cap and redistributes the remainder among the rest — the classic
    water-filling computation. Returns shares summing to
    ``min(1, sum(caps))``.
    """
    if len(weights) != len(caps):
        raise ValueError("weights and caps must have equal length")
    for w in weights:
        if w <= 0:
            raise ValueError(f"weights must be > 0, got {w}")
    for c in caps:
        if not 0 < c <= 1:
            raise ValueError(f"caps must be in (0, 1], got {c}")
    n = len(weights)
    shares = [0.0] * n
    free = list(range(n))
    budget = 1.0
    # Each pass pins at least one entity, so at most n passes.
    for _ in range(n):
        total = sum(weights[i] for i in free)
        if total <= 0 or budget <= 0:
            break
        pinned = []
        for i in free:
            proportional = budget * weights[i] / total
            if proportional > caps[i] * (1.0 + _REL_TOL):
                pinned.append(i)
        if not pinned:
            for i in free:
                shares[i] = budget * weights[i] / total
            return shares
        for i in pinned:
            shares[i] = caps[i]
            budget -= caps[i]
            free.remove(i)
    # Everyone pinned (sum of caps < 1): budget may remain unused.
    return shares


def readjust_tasks(tasks: Sequence["Task"], p: int) -> list["Task"]:
    """Recompute the instantaneous weight ``phi`` of each runnable task.

    The batch form of §3.1's readjustment hook: reads ``task.weight``
    (the user assignment, never modified) and writes ``task.phi``.
    Returns the tasks whose ``phi`` changed. The tag-based schedulers
    now maintain the same mapping incrementally via
    :class:`ReadjustmentFrontier`; this batch pass is kept as the
    reference oracle (property tests assert bit-identical agreement)
    and for the simple schedulers whose event rates don't warrant the
    incremental machinery.
    """
    if not tasks:
        return []
    weights = [t.weight for t in tasks]
    adjusted = readjust(weights, p)
    changed = []
    for task, phi in zip(tasks, adjusted):
        # sfs-lint: disable=SFS005 (bit-identity change detection: skip no-op writes)
        if task.phi != phi:
            task.phi = phi
            changed.append(task)
    return changed


class ReadjustmentFrontier:
    """Incrementally maintained §2.1 feasibility frontier.

    The batch algorithm re-scans the whole runnable set on every
    arrival, block, wakeup, exit and weight change, yet only ever caps
    the ``k <= p - 1`` heaviest threads (the *frontier*). This object
    keeps that frontier repaired across runnable-set deltas instead:

    - ``queue`` — the §3.1 descending-weight queue (O(log n) ops);
    - an exact running total of member weights (order-independent, see
      :class:`_ExactWeightSum`), so the cap value ``S / (p - k)`` comes
      out bit-identical to the batch oracle's;
    - the current capped set and whether the degenerate ``t < p``
      equal-share mode is active.

    Each mutation costs one sorted-queue operation (O(log n)) plus a
    repair that touches at most O(p) threads — the scan examines only
    the ``min(p - 1, t)`` heaviest members, and only capped threads
    (plus the touched one) can change ``phi``. When the assignment was
    and remains feasible — the common case at load < 1 — the repair
    collapses to a single head-of-queue Eq. 1 test and no ``phi``
    write at all (``fast_skips`` counts these).

    Invariants (checked by the hypothesis model tests):

    - every member's ``phi`` equals what ``readjust_tasks`` over the
      current membership would assign, bit for bit;
    - at most ``p - 1`` members are capped when ``t >= p``;
    - repair is idempotent (:meth:`refresh` changes nothing).
    """

    __slots__ = (
        "p",
        "queue",
        "_total",
        "_capped",
        "_equalized",
        "repairs",
        "fast_skips",
        "phi_writes",
        "scan_steps",
    )

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ValueError(f"processor count must be >= 1, got {p}")
        from repro.sim.runqueue import SortedTaskList

        self.p = p
        #: §3.1 queue 1: members in descending user-weight order
        self.queue = SortedTaskList(key=lambda t: -t.weight)
        self._total = _ExactWeightSum()
        #: tid -> task currently holding a capped phi
        self._capped: dict[int, "Task"] = {}
        #: degenerate t < p equal-share mode active
        self._equalized = False
        #: instrumentation: full frontier repairs performed
        self.repairs = 0
        #: instrumentation: repairs skipped by the feasible fast path
        self.fast_skips = 0
        #: instrumentation: phi values actually changed
        self.phi_writes = 0
        #: instrumentation: violation tests consumed by frontier scans
        self.scan_steps = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.queue)

    def __contains__(self, task: "Task") -> bool:
        return task in self.queue

    def __iter__(self) -> Iterator["Task"]:
        return iter(self.queue)

    @property
    def capped_count(self) -> int:
        """Number of members currently holding a capped ``phi``."""
        return len(self._capped)

    def capped_tasks(self) -> list["Task"]:
        """Snapshot of the capped members, heaviest first."""
        return [t for t in self.queue.peek_n(self.p - 1) if t.tid in self._capped]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def add(self, task: "Task") -> None:
        """A task joined the runnable set; assign its phi, repair caps."""
        if task.weight <= 0:
            raise ValueError(f"weights must be > 0, got {task.weight}")
        self.queue.add(task)
        self._total.add(task.weight)
        self._repair(task)

    def remove(self, task: "Task") -> None:
        """A task left the runnable set; release its cap, repair."""
        self.queue.remove(task)
        self._capped.pop(task.tid, None)
        if not len(self.queue):
            # Reset rather than subtract down to zero: sheds any bigint
            # growth in the exact accumulator between busy periods.
            self._total = _ExactWeightSum()
            self._capped.clear()
            self._equalized = False
            return
        self._total.sub(task.weight)
        self._repair(None)

    def reweight(self, task: "Task", old_weight: float) -> None:
        """A member's user weight changed from ``old_weight`` in place."""
        if task.weight <= 0:
            raise ValueError(f"weights must be > 0, got {task.weight}")
        self.queue.reposition(task)
        self._total.sub(old_weight)
        self._total.add(task.weight)
        self._repair(task)

    def refresh(self) -> None:
        """Rebuild the exact total and force a full repair.

        Maintenance is exact, so this never changes anything — tests
        call it to assert exactly that (repair idempotence).
        """
        self._total = _ExactWeightSum.of([t.weight for t in self.queue])
        if len(self.queue):
            self._repair(None, force=True)

    # ------------------------------------------------------------------
    # the repair
    # ------------------------------------------------------------------

    def _set_phi(self, task: "Task", phi: float) -> None:
        # sfs-lint: disable=SFS005 (bit-identity change detection: skip no-op writes)
        if task.phi != phi:
            task.phi = phi
            self.phi_writes += 1

    def _equalize_members(self) -> None:
        """t < p: every member can hold a full processor (equal shares)."""
        self.repairs += 1
        self._capped.clear()
        self._equalized = True
        head = self.queue.head()
        tail = self.queue.peek_tail_n(1)[0]
        if head.weight == tail.weight:
            # All equal: the batch map returns the input unchanged.
            for task in self.queue:
                self._set_phi(task, task.weight)
        else:
            mean = self._total.as_float() / len(self.queue)
            for task in self.queue:
                self._set_phi(task, mean)

    def _repair(self, touched: "Task | None", force: bool = False) -> None:
        t = len(self.queue)
        p = self.p
        if t < p:
            self._equalize_members()
            return
        if self._equalized:
            # Leaving equal-share mode: restore phi = weight everywhere
            # before re-deriving the caps (t just crossed p, so O(p)).
            for task in self.queue:
                self._set_phi(task, task.weight)
            self._equalized = False
            self._capped.clear()
        elif not self._capped and not force:
            # Feasible before this delta; one Eq. 1 test on the heaviest
            # member decides whether it stayed feasible (common case).
            if not _violates(self.queue.head().weight, self._total.as_float(), p):
                if touched is not None:
                    self._set_phi(touched, touched.weight)
                self.fast_skips += 1
                return
        self.repairs += 1
        top = self.queue.peek_n(min(p - 1, t))
        remaining = self._total.copy()
        k = 0
        while k < len(top) and _violates(
            top[k].weight, remaining.as_float(), p - k
        ):
            remaining.sub(top[k].weight)
            k += 1
            self.scan_steps += 1
        capped = top[:k]
        capped_ids = {task.tid for task in capped}
        for tid in [tid for tid in self._capped if tid not in capped_ids]:
            dropped = self._capped.pop(tid)
            self._set_phi(dropped, dropped.weight)
        if k:
            adjusted = remaining.as_float() / (p - k)
            for task in capped:
                self._set_phi(task, adjusted)
                self._capped[task.tid] = task
        if touched is not None and touched.tid not in capped_ids:
            self._set_phi(touched, touched.weight)
