"""Generalized Multiprocessor Sharing — the idealized fluid algorithm (§2.2).

GMS is the multiprocessor analogue of GPS: threads are scheduled with
infinitesimally small quanta, ``p`` at a time, so that over any interval
in which two threads are continuously runnable with fixed instantaneous
weights,

.. math:: A_i(t_1,t_2) / A_j(t_1,t_2) \\ge \\phi_i / \\phi_j.  \\qquad (Eq. 2)

Summing Eq. 2 over runnable threads gives each thread service
``phi_i / sum_j phi_j * p * C * (t2 - t1)`` — proportionate allocation.

:class:`FluidGMS` integrates this fluid allocation exactly between
runnable-set changes. With *feasible* instantaneous weights (the §2.1
readjustment guarantees ``phi_i / sum phi <= 1/p``) the proportional
rate never exceeds a single processor's capacity ``C``; the ``min(C,.)``
cap below therefore only binds in the degenerate ``t <= p`` regime where
every thread simply holds a full processor.

The fluid oracle serves two roles:

- the reference against which the *surplus* of Eq. 3 is defined
  (``alpha_i = A_i - A_i^GMS``), used by the fairness metrics in
  :mod:`repro.analysis.fairness`;
- an executable specification: tests replay a simulated run's
  runnable-set timeline through the oracle and check that SFS service
  tracks it to within one quantum per thread.
"""

from __future__ import annotations

from repro.core.weights import readjust
from repro.sim.tracing import ARRIVE, BLOCK, EXIT, WAKE, WEIGHT, TraceEvent

__all__ = ["FluidGMS", "replay_trace"]


class FluidGMS:
    """Event-driven fluid integrator for GMS service.

    Threads are identified by arbitrary hashable keys (the simulator
    uses tids). All mutating calls take the absolute time at which the
    change happens; service is integrated piecewise between calls.
    """

    def __init__(self, cpus: int, capacity: float = 1.0) -> None:
        if cpus < 1:
            raise ValueError(f"need at least one CPU, got {cpus}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.p = cpus
        self.capacity = capacity
        self._weights: dict[int, float] = {}
        self._service: dict[int, float] = {}
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def rates(self) -> dict[int, float]:
        """Instantaneous service rate of each runnable thread.

        Rates are computed from the *readjusted* weights, so a thread
        whose raw weight is infeasible receives exactly one processor —
        the defining behaviour of GMS over feasible phis.
        """
        if not self._weights:
            return {}
        keys = list(self._weights)
        phis = readjust([self._weights[k] for k in keys], self.p)
        total = sum(phis)
        full = self.p * self.capacity
        return {
            k: min(self.capacity, full * phi / total)
            for k, phi in zip(keys, phis)
        }

    def advance_to(self, t: float) -> None:
        """Integrate service up to absolute time ``t``."""
        if t < self._now:
            raise ValueError(f"time went backwards: {t} < {self._now}")
        dt = t - self._now
        if dt > 0:
            for k, rate in self.rates().items():
                self._service[k] += rate * dt
        self._now = t

    def arrive(self, key: int, weight: float, at: float) -> None:
        """A thread becomes runnable (arrival or wakeup)."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.advance_to(at)
        self._weights[key] = weight
        self._service.setdefault(key, 0.0)

    def depart(self, key: int, at: float) -> None:
        """A thread leaves the runnable set (block or exit)."""
        self.advance_to(at)
        self._weights.pop(key, None)

    def set_weight(self, key: int, weight: float, at: float) -> None:
        """A runnable thread's weight changes."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.advance_to(at)
        if key in self._weights:
            self._weights[key] = weight

    def service_of(self, key: int) -> float:
        """Cumulative GMS service of a thread (0 if never seen)."""
        return self._service.get(key, 0.0)

    def services(self) -> dict[int, float]:
        """Snapshot of all cumulative services."""
        return dict(self._service)


def replay_trace(
    events: list[TraceEvent], cpus: int, t_end: float, capacity: float = 1.0
) -> dict[int, float]:
    """Replay a simulated run's runnable-set timeline through GMS.

    ``events`` is ``machine.trace.events``; the result maps tid to the
    CPU service an ideal GMS machine would have granted by ``t_end``.
    """
    gms = FluidGMS(cpus, capacity)
    for ev in sorted(events, key=lambda e: e.time):
        if ev.time > t_end:
            break
        if ev.kind in (ARRIVE, WAKE):
            gms.arrive(ev.tid, ev.weight, ev.time)
        elif ev.kind in (BLOCK, EXIT):
            gms.depart(ev.tid, ev.time)
        elif ev.kind == WEIGHT:
            gms.set_weight(ev.tid, ev.weight, ev.time)
    gms.advance_to(t_end)
    return gms.services()
