"""Generalized Multiprocessor Sharing — the idealized fluid algorithm (§2.2).

GMS is the multiprocessor analogue of GPS: threads are scheduled with
infinitesimally small quanta, ``p`` at a time, so that over any interval
in which two threads are continuously runnable with fixed instantaneous
weights,

.. math:: A_i(t_1,t_2) / A_j(t_1,t_2) \\ge \\phi_i / \\phi_j.  \\qquad (Eq. 2)

Summing Eq. 2 over runnable threads gives each thread service
``phi_i / sum_j phi_j * p * C * (t2 - t1)`` — proportionate allocation.

:class:`FluidGMS` integrates this fluid allocation exactly between
runnable-set changes. With *feasible* instantaneous weights (the §2.1
readjustment guarantees ``phi_i / sum phi <= 1/p``) the proportional
rate never exceeds a single processor's capacity ``C``; the ``min(C,.)``
cap below therefore only binds in the degenerate ``t <= p`` regime where
every thread simply holds a full processor.

The fluid oracle serves two roles:

- the reference against which the *surplus* of Eq. 3 is defined
  (``alpha_i = A_i - A_i^GMS``), used by the fairness metrics in
  :mod:`repro.analysis.fairness`;
- an executable specification: tests replay a simulated run's
  runnable-set timeline through the oracle and check that SFS service
  tracks it to within one quantum per thread.
"""

from __future__ import annotations

import heapq
from bisect import insort
from itertools import chain

from repro.core.weights import _REL_TOL, readjust
from repro.sim.tracing import ARRIVE, BLOCK, EXIT, WAKE, WEIGHT

__all__ = ["FluidGMS", "replay_trace"]


class FluidGMS:
    """Event-driven fluid integrator for GMS service.

    Threads are identified by arbitrary hashable keys (the simulator
    uses tids). All mutating calls take the absolute time at which the
    change happens; service is integrated piecewise between calls.
    """

    def __init__(self, cpus: int, capacity: float = 1.0) -> None:
        if cpus < 1:
            raise ValueError(f"need at least one CPU, got {cpus}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.p = cpus
        self.capacity = capacity
        self._weights: dict[int, float] = {}
        self._service: dict[int, float] = {}
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def rates(self) -> dict[int, float]:
        """Instantaneous service rate of each runnable thread.

        Rates are computed from the *readjusted* weights, so a thread
        whose raw weight is infeasible receives exactly one processor —
        the defining behaviour of GMS over feasible phis.
        """
        if not self._weights:
            return {}
        keys = list(self._weights)
        phis = readjust([self._weights[k] for k in keys], self.p)
        total = sum(phis)
        full = self.p * self.capacity
        return {
            k: min(self.capacity, full * phi / total)
            for k, phi in zip(keys, phis)
        }

    def advance_to(self, t: float) -> None:
        """Integrate service up to absolute time ``t``."""
        if t < self._now:
            raise ValueError(f"time went backwards: {t} < {self._now}")
        dt = t - self._now
        if dt > 0:
            for k, rate in self.rates().items():
                self._service[k] += rate * dt
        self._now = t

    def arrive(self, key: int, weight: float, at: float) -> None:
        """A thread becomes runnable (arrival or wakeup)."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.advance_to(at)
        self._weights[key] = weight
        self._service.setdefault(key, 0.0)

    def depart(self, key: int, at: float) -> None:
        """A thread leaves the runnable set (block or exit)."""
        self.advance_to(at)
        self._weights.pop(key, None)

    def set_weight(self, key: int, weight: float, at: float) -> None:
        """A runnable thread's weight changes."""
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.advance_to(at)
        if key in self._weights:
            self._weights[key] = weight

    def service_of(self, key: int) -> float:
        """Cumulative GMS service of a thread (0 if never seen)."""
        return self._service.get(key, 0.0)

    def services(self) -> dict[int, float]:
        """Snapshot of all cumulative services."""
        return dict(self._service)


def replay_trace(
    events,
    cpus: int,
    t_end: float,
    capacity: float = 1.0,
    assume_sorted: bool = False,
) -> dict[int, float]:
    """Replay a simulated run's runnable-set timeline through GMS.

    ``events`` is any iterable of ``(time, kind, tid, weight)`` rows —
    ``machine.trace.events`` (:class:`TraceEvent` records) or the
    allocation-free ``machine.trace.event_tuples()``; the result maps
    tid to the CPU service an ideal GMS machine would have granted by
    ``t_end``. Pass ``assume_sorted=True`` when the rows are already in
    time order (a recorded trace always is) to stream them without
    materializing and re-sorting.

    Incremental form of driving :class:`FluidGMS` event by event
    (which stays as the executable specification — the two agree to
    float rounding). At every instant GMS partitions the runnable set
    into *heavy* threads — the §2.1 readjustment caps them at exactly
    one processor — and *light* threads sharing the remaining
    ``p - k`` processors in proportion to their raw weights. Both
    groups admit O(1)-per-event accounting: a heavy thread's service
    over a span is ``C * (t2 - t1)`` (a timestamp per thread), and a
    light thread's is ``w * (I(t2) - I(t1))`` for the single running
    integral ``I = ∫ (p - k) * C / W_light dt``. Per-thread work
    happens only when a thread crosses the heavy/light boundary, which
    the event loop re-derives with the same peel rule (and the same
    ``_REL_TOL`` tolerance) as :func:`repro.core.weights.readjust` —
    at most ``p - 1`` threads are ever heavy when more than ``p`` are
    runnable, and *all* are when ``p`` or fewer are. The peel
    merge-walks the (tiny, sorted) current heavy set against the top
    of a max-weight heap holding only the light threads, so the steady
    state — membership unchanged — costs a few comparisons and no heap
    mutation at all.

    This runs inside the ``--audit`` overhead budget, hence the
    hand-inlined event loop (no per-event helper calls on the common
    path).
    """
    p = cpus
    limit = p - 1  # max heavy threads when more than p are runnable
    tol = 1.0 + _REL_TOL  # the readjust feasibility tolerance, inlined
    weights: dict[int, float] = {}
    heavy: dict[int, float] = {}  # tid -> span start (holds one CPU)
    hsorted: list[tuple[float, int]] = []  # heavy as sorted (-w, tid)
    light_enter: dict[int, float] = {}  # tid -> I_L at span start
    service: dict[int, float] = {}
    #: light threads only, as (-weight, tid) with lazy deletion; heavy
    #: threads live in hsorted instead, so steady-state membership
    #: passes never mutate the heap
    heap: list[tuple[float, int]] = []
    heappush, heappop = heapq.heappush, heapq.heappop
    k_arrive, k_wake, k_weight = ARRIVE, WAKE, WEIGHT
    k_block, k_exit = BLOCK, EXIT
    total = 0.0
    light_w = 0.0  # sum of non-heavy runnable weights
    i_light = 0.0  # ∫ (p - |heavy|) * C / light_w dt
    now = 0.0
    sentinel = (t_end, None, 0, 0.0)  # final advance, applies nothing
    if assume_sorted:
        ordered = chain(events, (sentinel,))
    else:
        ordered = sorted(events, key=lambda ev: ev[0])
        ordered.append(sentinel)
    for time, kind, tid, weight in ordered:
        over_end = time > t_end
        if over_end:
            time = t_end
        # -- integrate the interval since the previous event ----------
        dt = time - now
        if dt > 0.0 and light_enter and light_w > 0.0:
            # light_enter (not light_w) is the emptiness test: the
            # incremental weight sum can retain float dust after the
            # last light thread leaves, and integrating against dust
            # would wreck i_light's precision for later spans.
            i_light += (p - len(heavy)) * capacity * dt / light_w
        now = time
        if over_end or kind is None:
            break
        # -- apply the event (closing the span of the thread it hits) --
        if kind == k_arrive or kind == k_wake or kind == k_weight:
            old = weights.get(tid)
            if old is not None:
                t0 = heavy.pop(tid, None)
                if t0 is not None:
                    service[tid] += capacity * (now - t0)
                    hsorted.remove((-old, tid))
                else:
                    service[tid] += old * (i_light - light_enter.pop(tid))
                    light_w -= old
                total -= old
            elif kind == k_weight:
                continue  # weight change for a non-runnable thread
            elif tid not in service:
                service[tid] = 0.0
            weights[tid] = weight
            total += weight
            if len(weights) <= p:
                # Readjustment equalizes every weight in this regime:
                # the thread holds a full processor from the start, and
                # every peer already does (the loop invariant), so the
                # membership pass below would be a no-op — skip it.
                heavy[tid] = now
                insort(hsorted, (-weight, tid))
                continue
            # (re)open as light; the membership pass below may promote
            light_w += weight
            light_enter[tid] = i_light
            heappush(heap, (-weight, tid))
        elif kind == k_block or kind == k_exit:
            old = weights.pop(tid, None)
            if old is None:
                continue
            t0 = heavy.pop(tid, None)
            if t0 is not None:
                service[tid] += capacity * (now - t0)
                hsorted.remove((-old, tid))
            else:
                service[tid] += old * (i_light - light_enter.pop(tid))
                light_w -= old
            total -= old
        else:
            continue
        # -- re-derive the heavy set (changes only at events) ---------
        n = len(weights)
        if n <= p:
            # Readjustment equalizes every weight: each thread holds a
            # full processor. Promote any light thread.
            if len(heavy) != n:
                for t2, w2 in weights.items():
                    if t2 not in heavy:
                        service[t2] += w2 * (i_light - light_enter.pop(t2))
                        light_w -= w2
                        heavy[t2] = now
                        insort(hsorted, (-w2, t2))
            continue
        # Drop heap entries that are stale (weight changed / departed)
        # or shadowed (their thread was promoted to heavy).
        while heap:
            negw, t2 = heap[0]
            if weights.get(t2) != -negw or t2 in heavy:
                heappop(heap)
            else:
                break
        if not hsorted and (not heap or -heap[0][0] * p <= total * tol):
            continue  # no heavy and the top weight is feasible
        # Merge-walk the current heavy set and the heap top in
        # (-weight, tid) order, peeling infeasible weights exactly as
        # readjust_sorted_iterative does (ties never split: if the
        # first of two equal weights peels, so does the second). Only
        # an actual promotion or demotion touches the heap.
        s = total
        k = 0
        keep = 0  # prefix of hsorted that is (still) heavy
        nh = len(hsorted)
        while k < limit:
            while heap:
                negw, t2 = heap[0]
                if weights.get(t2) != -negw or t2 in heavy:
                    heappop(heap)
                else:
                    break
            hcand = hsorted[keep] if keep < nh else None
            lcand = heap[0] if heap else None
            if hcand is not None and (lcand is None or hcand <= lcand):
                w2 = -hcand[0]
                if w2 * (p - k) <= s * tol:
                    break
                keep += 1
            elif lcand is not None:
                w2 = -lcand[0]
                if w2 * (p - k) <= s * tol:
                    break
                # promote: a light thread became infeasible. lcand
                # sorts between the kept prefix and hsorted[keep], so
                # insort lands it at index `keep` and the walk resumes
                # unperturbed. Entering `heavy` here also makes the
                # lazy cleanup above drop any duplicate heap entry for
                # the same tid.
                heappop(heap)
                t2 = lcand[1]
                service[t2] += w2 * (i_light - light_enter.pop(t2))
                light_w -= w2
                heavy[t2] = now
                insort(hsorted, lcand)
                keep += 1
                nh += 1
            else:
                break
            s -= w2
            k += 1
        if keep < nh:
            # hsorted[keep:] became feasible — demote to light
            for entry in hsorted[keep:]:
                negw, t2 = entry
                service[t2] += capacity * (now - heavy.pop(t2))
                light_enter[t2] = i_light
                light_w -= negw
                heappush(heap, entry)
            del hsorted[keep:]
    # -- settle every still-open span at t_end ------------------------
    for tid, t0 in heavy.items():
        service[tid] += capacity * (now - t0)
    for tid, enter in light_enter.items():
        service[tid] += weights[tid] * (i_light - enter)
    return service
