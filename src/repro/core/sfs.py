"""Surplus Fair Scheduling (§2.3, §3.1-3.2 of the paper).

SFS approximates generalized multiprocessor sharing (GMS) with finite
quanta: at each scheduling instance it computes, for every runnable
thread, the *surplus*

.. math:: \\alpha_i = \\phi_i (S_i - v)                  \\qquad (Eq. 4)

— the service thread ``i`` has received beyond what the thread with the
least service has — and runs the thread with the smallest surplus.
Because the surplus depends only on the *start* tag, SFS does not need
to know the quantum length when it schedules, so quanta may end early
when threads block (a property the paper calls out explicitly).

The implementation mirrors §3.1's kernel data structures: three sorted
queues over the runnable threads —

1. descending user weight (drives the §2.1 weight readjustment scan),
2. ascending start tag (its head *is* the virtual time),
3. ascending surplus (its first schedulable entry is the decision),

with surpluses recomputed and the third queue re-sorted by insertion
sort whenever the virtual time advances (§3.2's "mostly sorted" trick).

Invariants maintained (checked by the test suite):

- ``alpha_i >= 0`` for every runnable thread;
- at least one runnable thread has ``alpha_i == 0`` (the one at ``v``);
- on one processor SFS degenerates to SFQ (min surplus == min start tag).
"""

from __future__ import annotations

import os

from repro.core.fixed_point import FloatTags, TagArithmetic
from repro.core.tags import TaggedScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.runqueue import SortedTaskList
from repro.sim.task import Task, TaskState

__all__ = ["SurplusFairScheduler"]


def _load_compiled_recompute():
    """The C surplus-recompute helper, honouring the SFS_ENGINE policy.

    Returns ``repro.sim._engine.sfs_recompute`` when the optional
    extension is importable and ``SFS_ENGINE`` does not force the pure
    path, else None. The helper reproduces ``FloatTags.surplus`` bit
    for bit (same IEEE-double expression), so it is gated per scheduler
    instance on the tag arithmetic actually being :class:`FloatTags` —
    fixed-point tags keep the pure integer loop.
    """
    if os.environ.get("SFS_ENGINE", "auto") == "pure":
        return None
    try:
        from repro.sim._engine import sfs_recompute
    except ImportError:
        return None
    return sfs_recompute


_C_RECOMPUTE = _load_compiled_recompute()


class SurplusFairScheduler(TaggedScheduler):
    """The exact SFS algorithm (no decision heuristic).

    Parameters
    ----------
    tag_math:
        Float (default) or kernel fixed-point tag arithmetic.
    wake_preempt:
        Allow woken threads to preempt the running thread with the most
        current surplus (see ``TaggedScheduler.choose_victim``).
    readjust:
        Run weight readjustment at every runnable-set change. On by
        default — SFS is defined over feasible instantaneous weights;
        the off switch exists only for ablation experiments.
    affinity_bonus:
        §5 extension ("SFS currently ignores processor affinities"):
        when > 0, a CPU re-runs its previous thread if that thread's
        surplus is within ``affinity_bonus`` seconds of the minimum —
        trading a bounded fairness slack for cache locality (fewer
        migrations). 0 (default) is the paper's exact policy.
    """

    name = "SFS"

    # Calibrated to Table 1 (≈4 us at a 2-entry run queue) and Fig. 7's
    # growth to ≈8 us at 50 processes. The linear term reflects the
    # amortized surplus-update/re-sort cost of §3.2.
    decision_cost_params = DecisionCostParams(base=3.3e-6, per_thread=0.09e-6)

    def __init__(
        self,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
        readjust: bool = True,
        affinity_bonus: float = 0.0,
    ) -> None:
        if affinity_bonus < 0:
            raise ValueError(f"affinity_bonus must be >= 0, got {affinity_bonus}")
        super().__init__(
            readjust=readjust, tag_math=tag_math, wake_preempt=wake_preempt
        )
        self.affinity_bonus = affinity_bonus
        #: dispatches that kept the CPU's previous thread thanks to the
        #: affinity bonus (instrumentation for the ablation bench)
        self.affinity_hits = 0
        #: §3.1 queue 1 when readjustment is off; with readjustment on,
        #: the ReadjustmentFrontier owns the descending-weight queue and
        #: :attr:`weight_queue` aliases it (one structure, not two).
        self._own_weight_queue = SortedTaskList(key=lambda t: -t.weight)
        #: §3.1 queue 3: runnable threads by ascending surplus
        self.surplus_queue = SortedTaskList(key=lambda t: t.sched["alpha"])
        self._in_queues: set[int] = set()
        self._surplus_dirty = True
        #: v at the last full surplus recompute. §3.1 prescribes a
        #: recompute when v differs from "the previous scheduling
        #: instance", so the comparison must be against this snapshot —
        #: not against the last _refresh_vtime() call, which other hooks
        #: (e.g. wrap-around checks) may invoke in between.
        self._v_at_recompute = self._vtime
        #: instrumentation: full surplus recomputations (resorts)
        self.resort_count = 0
        #: instrumentation: pick_next invocations
        self.decision_count = 0

    # ------------------------------------------------------------------
    # queue maintenance via TaggedScheduler extension points
    # ------------------------------------------------------------------

    @property
    def weight_queue(self) -> SortedTaskList:
        """§3.1 queue 1: runnable threads by descending user weight.

        Aliases the readjustment frontier's queue when readjustment is
        on (the frontier keeps it sorted through weight changes); SFS
        maintains its own copy only in the ``readjust=False`` ablation.
        """
        if self.frontier is not None:
            return self.frontier.queue
        return self._own_weight_queue

    def _runnable_set_changed(self, task: Task, now: float) -> None:
        runnable = task.tid in self._runnable
        if runnable and task.tid not in self._in_queues:
            task.sched["alpha"] = self.surplus_of(task)
            if self.frontier is None:
                self._own_weight_queue.add(task)
            self.surplus_queue.add(task)
            self._in_queues.add(task.tid)
        elif not runnable and task.tid in self._in_queues:
            if self.frontier is None:
                self._own_weight_queue.discard(task)
            self.surplus_queue.discard(task)
            self._in_queues.discard(task.tid)
        # Readjustment may have changed phis, arrivals/departures moved
        # v: stored surpluses are stale until the next decision.
        self._surplus_dirty = True

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        # The frontier repositions its queue itself; the ablation copy
        # must be repositioned here or its cached sort order goes stale.
        if self.frontier is None and task.tid in self._in_queues:
            self._own_weight_queue.reposition(task)
        super().on_weight_change(task, old_weight, now)

    def _tags_updated(self, task: Task, now: float) -> None:
        # A preemption advanced this task's start tag; its surplus grew.
        if task.tid in self._in_queues:
            task.sched["alpha"] = self.surplus_of(task)
            self.surplus_queue.reposition(task)

    def _after_rebase(self, offset) -> None:
        # Tags moved but (S - v) is invariant under a common shift, so
        # surpluses are unchanged; nothing to re-sort.
        pass

    # ------------------------------------------------------------------
    # the scheduling decision
    # ------------------------------------------------------------------

    def _recompute_surpluses(self) -> None:
        """Update every runnable thread's surplus and re-sort queue 3.

        §3.1: "if the virtual time changes from the previous scheduling
        instance, then the scheduler must update the surplus values of
        all runnable threads (since alpha_i is a function of v) and
        re-sort the queue." The paper's kernel re-sorts its linked list
        with insertion sort to exploit the mostly-sorted order (§3.2);
        here the recompute loop and the re-sort are fused into a single
        pass plus one :meth:`~repro.sim.runqueue.SortedTaskList.rebuild_sorted`
        call, whose timsort is near-linear on the same mostly-sorted
        input but runs its comparisons in C. Keys are unique (tid
        tie-break), so any sort produces the identical final order —
        the decision sequence is bit-for-bit unchanged. This recompute
        *is* the dominant cost of exact SFS under overload (runnable
        sets in the thousands, one recompute per decision), which is
        why the whole pass drops into C when the optional extension is
        built and the tags are plain floats; see docs/PERFORMANCE.md
        for measurements.
        """
        v = self._vtime
        queue = self.surplus_queue
        if _C_RECOMPUTE is not None and type(self.tags) is FloatTags:
            # One C call: compute every alpha = phi*(S-v), write it into
            # task.sched, sort by (alpha, tid), and install the queue's
            # new internal state. Bit-identical to the loop below.
            _C_RECOMPUTE(queue._tasks, v, queue)
        else:
            surplus = self.tags.surplus
            keyed = []
            append = keyed.append
            for task in queue:
                alpha = surplus(task.phi, task.sched["S"], v)
                task.sched["alpha"] = alpha
                append(((alpha, task.tid), task))
            queue.rebuild_sorted(keyed)
        self.resort_count += 1
        self._surplus_dirty = False
        self._v_at_recompute = v

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self.decision_count += 1
        self._refresh_vtime()
        # sfs-lint: disable=SFS005 (bit-identity staleness test, not arithmetic)
        if self._vtime != self._v_at_recompute or self._surplus_dirty:
            self._recompute_surpluses()
        best = self._first_schedulable(self.surplus_queue)
        if best is None or self.affinity_bonus <= 0:
            return best
        return self._apply_affinity(cpu, best)

    def _apply_affinity(self, cpu: int, best: Task) -> Task:
        """§5 extension: keep the CPU's previous thread when near-tied.

        Both sides of the bonus comparison are *fresh* Eq. 4 surpluses
        computed against one virtual-time snapshot. ``best`` was picked
        off the surplus queue's stored keys, so its fresh surplus is
        re-derived here too — the guard below re-selects if a stored
        key turns out stale (it should not, after the recompute in
        :meth:`pick_next`, but the bonus must never admit a thread more
        than ``affinity_bonus`` past the fresh minimum).
        """
        assert self.machine is not None
        prev = self.machine.previous_task(cpu)
        if (
            prev is None
            or prev is best
            or prev.state is not TaskState.RUNNABLE
            or prev.tid not in self._in_queues
        ):
            return best
        # Express the bonus in surplus units (works for float and
        # fixed-point tag arithmetic alike: surplus of a phi=1 thread
        # one bonus-length past the virtual time).
        bonus = self.tags.surplus(
            1.0,
            self.tags.finish_tag(self.tags.zero, self.affinity_bonus, 1.0),
            self.tags.zero,
        )
        v = self._vtime
        best_alpha = self.surplus_of(best, v)
        # sfs-lint: disable=SFS005 (bit-identity staleness test vs stored queue key)
        if best_alpha != best.sched["alpha"]:
            # Stale stored key: re-select against fresh surpluses so the
            # bound below really is the fresh minimum.
            self._recompute_surpluses()
            best = self._first_schedulable(self.surplus_queue)
            if best is None or prev is best:
                return best
            best_alpha = best.sched["alpha"]
        if self.surplus_of(prev, v) <= best_alpha + bonus:
            self.affinity_hits += 1
            return prev
        return best

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------

    def surpluses(self) -> dict[int, float]:
        """Fresh Eq. 4 surpluses of all runnable threads, keyed by tid."""
        self._refresh_vtime()
        return {t.tid: self.surplus_of(t) for t in self._runnable.values()}

    def exact_minimum_surplus_task(self) -> Task | None:
        """The schedulable thread with the smallest fresh surplus.

        Used as the ground truth when measuring heuristic accuracy
        (Fig. 3); ties broken by tid like the real decision path.
        """
        self._refresh_vtime()
        best: Task | None = None
        best_key = None
        for task in self._runnable.values():
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (self.surplus_of(task), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best
