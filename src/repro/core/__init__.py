"""The paper's contribution: weight readjustment, GMS, and SFS.

Public API:

- :func:`repro.core.weights.readjust` / :func:`is_feasible` — the §2.1
  weight readjustment algorithm and feasibility test (Eq. 1);
- :class:`repro.core.gms.FluidGMS` — the idealized generalized
  multiprocessor sharing oracle (§2.2);
- :class:`repro.core.sfs.SurplusFairScheduler` — surplus fair
  scheduling (§2.3), the practical instantiation of GMS;
- :class:`repro.core.sfs_heuristic.HeuristicSurplusFairScheduler` — the
  §3.2 constant-time decision heuristic;
- :class:`repro.core.fixed_point.FixedTags` — kernel-style scaled
  integer tag arithmetic with wrap-around rebasing (§3.2).
"""

from repro.core.fixed_point import FixedTags, FloatTags, TagArithmetic
from repro.core.gms import FluidGMS, replay_trace
from repro.core.hierarchical import (
    HierarchicalSurplusFairScheduler,
    SchedulingClass,
)
from repro.core.sfs import SurplusFairScheduler
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.core.tags import TaggedScheduler
from repro.core.weights import (
    ReadjustmentFrontier,
    is_feasible,
    readjust,
    readjust_sorted,
    readjust_sorted_iterative,
    readjust_tasks,
    violators,
    waterfill_shares,
)

__all__ = [
    "FixedTags",
    "FloatTags",
    "FluidGMS",
    "HeuristicSurplusFairScheduler",
    "HierarchicalSurplusFairScheduler",
    "ReadjustmentFrontier",
    "SchedulingClass",
    "SurplusFairScheduler",
    "TagArithmetic",
    "TaggedScheduler",
    "is_feasible",
    "readjust",
    "readjust_sorted",
    "readjust_sorted_iterative",
    "readjust_tasks",
    "replay_trace",
    "violators",
    "waterfill_shares",
]
