"""Hierarchical surplus fair scheduling — the §5 open problem.

§5 of the paper: *"GPS-based schedulers such as SFQ can perform
hierarchical scheduling. This allows threads to be aggregated into
classes and CPU shares to be allocated on a per-class basis. [...] SFS
is a single-level scheduler and lacks such features. The design of
hierarchical schedulers for multiprocessor environments remains an
open research problem."*

This module implements the natural two-level SFS design:

- **Top level (classes).** Each scheduling class has a weight; classes
  carry start/finish tags and surpluses exactly like SFS threads, with
  one multiprocessor twist: a class with ``n`` runnable members can use
  at most ``min(n, p)`` processors, so its instantaneous share is
  capped at ``min(n, p)/p`` — the generalized water-filling of
  :func:`repro.core.weights.waterfill_shares` (the §2.1 readjustment is
  the ``n = 1`` special case).
- **Bottom level (members).** The class's bandwidth is distributed
  among its member threads by a class-specific policy (§5: "such
  schedulers support class-specific schedulers"): ``"sfq"`` (start-time
  fair queueing on member tags, weights respected within the class) or
  ``"rr"`` (round-robin).

A CPU is granted to the active class with the least class surplus
``alpha_c = phi_c (S_c - V)``; the class's policy then picks the member
thread.
"""

from __future__ import annotations

from collections import deque

from repro.core.weights import waterfill_shares
from repro.sim.costs import DecisionCostParams
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState

__all__ = ["SchedulingClass", "HierarchicalSurplusFairScheduler"]

_POLICIES = ("sfq", "rr")


class SchedulingClass:
    """One aggregation class: weight, tags, members, child policy."""

    __slots__ = (
        "name",
        "weight",
        "policy",
        "phi",
        "start_tag",
        "finish_tag",
        "members",
        "fifo",
    )

    def __init__(self, name: str, weight: float, policy: str) -> None:
        if weight <= 0:
            raise ValueError(f"class weight must be > 0, got {weight}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.name = name
        self.weight = weight
        self.policy = policy
        #: instantaneous share (water-filled); valid while active
        self.phi = weight
        self.start_tag = 0.0
        self.finish_tag = 0.0
        #: runnable members (tid -> Task)
        self.members: dict[int, Task] = {}
        #: round-robin order (used when policy == "rr")
        self.fifo: deque[Task] = deque()

    @property
    def active(self) -> bool:
        """A class competes for CPUs iff it has runnable members."""
        return bool(self.members)

    def schedulable_members(self) -> list[Task]:
        return [
            t for t in self.members.values() if t.state is TaskState.RUNNABLE
        ]

    def local_virtual_time(self) -> float:
        """Minimum member start tag (the class's internal SFQ clock)."""
        if not self.members:
            return 0.0
        return min(t.sched.get("mS", 0.0) for t in self.members.values())

    def pick_member(self) -> Task | None:
        """Apply the class policy to choose the next member thread."""
        if self.policy == "rr":
            for task in self.fifo:
                if task.state is TaskState.RUNNABLE:
                    return task
            return None
        best: Task | None = None
        best_key: tuple | None = None
        for task in self.members.values():
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (task.sched.get("mS", 0.0), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SchedulingClass {self.name} w={self.weight} "
            f"members={len(self.members)} policy={self.policy}>"
        )


class HierarchicalSurplusFairScheduler(Scheduler):
    """Two-level SFS: classes by surplus, members by class policy.

    Usage::

        sched = HierarchicalSurplusFairScheduler()
        gold = sched.add_class("gold", weight=3)
        bronze = sched.add_class("bronze", weight=1, policy="rr")
        sched.assign(task, "gold")           # before machine.add_task
        machine = Machine(sched, cpus=2)

    Unassigned tasks fall into a weight-1 ``"default"`` class.
    """

    name = "H-SFS"

    decision_cost_params = DecisionCostParams(base=3.6e-6, per_thread=0.10e-6)

    def __init__(self, wake_preempt: bool = True) -> None:
        super().__init__()
        self.wake_preempt = wake_preempt
        self._classes: dict[str, SchedulingClass] = {}
        self._task_class: dict[int, SchedulingClass] = {}
        self._vtime = 0.0
        self._last_finish = 0.0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def add_class(
        self, name: str, weight: float, policy: str = "sfq"
    ) -> SchedulingClass:
        """Register a scheduling class (before any of its tasks arrive)."""
        if name in self._classes:
            raise ValueError(f"class {name!r} already exists")
        cls = SchedulingClass(name, weight, policy)
        self._classes[name] = cls
        return cls

    def assign(self, task: Task, class_name: str) -> None:
        """Place ``task`` into a class (call before the task arrives)."""
        try:
            cls = self._classes[class_name]
        except KeyError:
            raise ValueError(f"unknown class {class_name!r}") from None
        self._task_class[task.tid] = cls

    def class_of(self, task: Task) -> SchedulingClass:
        cls = self._task_class.get(task.tid)
        if cls is None:
            cls = self._classes.get("default")
            if cls is None:
                cls = self.add_class("default", 1.0)
            self._task_class[task.tid] = cls
        return cls

    def classes(self) -> list[SchedulingClass]:
        """All registered classes (for introspection/tests)."""
        return list(self._classes.values())

    # ------------------------------------------------------------------
    # top-level tag machinery
    # ------------------------------------------------------------------

    def _active_classes(self) -> list[SchedulingClass]:
        return [c for c in self._classes.values() if c.active]

    def _refresh_vtime(self) -> None:
        active = self._active_classes()
        if active:
            self._vtime = min(c.start_tag for c in active)
        else:
            self._vtime = self._last_finish

    def _reshare(self) -> None:
        """Water-fill instantaneous class shares (the §2.1 analogue).

        A class with ``n`` runnable members can consume at most
        ``min(n, p)`` processors.
        """
        assert self.machine is not None
        active = self._active_classes()
        if not active:
            return
        p = self.machine.num_cpus
        caps = [min(len(c.members), p) / p for c in active]
        shares = waterfill_shares([c.weight for c in active], caps)
        for cls, share in zip(active, shares):
            cls.phi = max(share, 1e-12)

    def class_surplus(self, cls: SchedulingClass) -> float:
        """Eq. 4 applied at the class level."""
        return cls.phi * (cls.start_tag - self._vtime)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def _enter_member(self, task: Task, cls: SchedulingClass, fresh: bool) -> None:
        was_active = cls.active
        if not was_active:
            # Compute V *before* (re)activating the class: its own stale
            # start tag must not drag the virtual time backwards, or the
            # class would bank credit for its idle period.
            self._refresh_vtime()
            if fresh and cls.finish_tag == 0.0:
                cls.start_tag = self._vtime
            else:
                cls.start_tag = max(cls.finish_tag, self._vtime)
        if fresh:
            task.sched["mS"] = cls.local_virtual_time()
            task.sched["mF"] = task.sched["mS"]
        else:
            task.sched["mS"] = max(
                task.sched.get("mF", 0.0), cls.local_virtual_time()
            )
        cls.members[task.tid] = task
        cls.fifo.append(task)
        self._reshare()

    def on_arrival(self, task: Task, now: float) -> None:
        task.phi = task.weight
        self._enter_member(task, self.class_of(task), fresh=True)

    def on_wakeup(self, task: Task, now: float) -> None:
        self._enter_member(task, self.class_of(task), fresh=False)

    def _charge(self, task: Task, cls: SchedulingClass, ran: float) -> None:
        """Update member and class tags after a quantum of ``ran``."""
        task.sched["mF"] = task.sched.get("mS", 0.0) + ran / task.weight
        cls.finish_tag = cls.start_tag + ran / cls.phi
        cls.start_tag = cls.finish_tag
        self._last_finish = cls.finish_tag

    def _leave_member(self, task: Task, cls: SchedulingClass) -> None:
        cls.members.pop(task.tid, None)
        try:
            cls.fifo.remove(task)
        except ValueError:
            pass
        self._reshare()

    def on_block(self, task: Task, now: float, ran: float) -> None:
        cls = self.class_of(task)
        self._charge(task, cls, ran)
        self._leave_member(task, cls)

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        cls = self.class_of(task)
        if ran > 0:
            self._charge(task, cls, ran)
        self._leave_member(task, cls)
        self._task_class.pop(task.tid, None)

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        cls = self.class_of(task)
        self._charge(task, cls, ran)
        task.sched["mS"] = task.sched["mF"]
        if cls.policy == "rr":
            try:
                cls.fifo.remove(task)
            except ValueError:
                pass
            cls.fifo.append(task)

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        task.phi = task.weight

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self._refresh_vtime()
        ordered = sorted(
            self._active_classes(),
            key=lambda c: (self.class_surplus(c), c.name),
        )
        for cls in ordered:
            member = cls.pick_member()
            if member is not None:
                return member
        return None

    def choose_victim(self, task: Task, running, now: float) -> int | None:
        if not self.wake_preempt or not running:
            return None
        self._refresh_vtime()
        new_cls = self.class_of(task)
        new_surplus = self.class_surplus(new_cls)
        worst_cpu = None
        worst = None
        for cpu, victim in running.items():
            vcls = self.class_of(victim)
            elapsed = 0.0
            if self.machine is not None:
                proc = self.machine.processors[cpu]
                elapsed = max(0.0, now - proc.dispatch_time)
            s = self.class_surplus(vcls) + elapsed
            if vcls is new_cls:
                continue  # same class: no point migrating the quantum
            if worst is None or s > worst:
                worst = s
                worst_cpu = cpu
        if worst is not None and new_surplus < worst:
            return worst_cpu
        return None

    def runnable_tasks(self) -> list[Task]:
        out = []
        for cls in self._classes.values():
            out.extend(cls.members.values())
        return sorted(out, key=lambda t: t.tid)
