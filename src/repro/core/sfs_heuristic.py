"""The §3.2 bounded-scan decision heuristic for SFS.

Exact SFS must recompute every runnable thread's surplus whenever the
virtual time advances — O(t log t) with run-queue length ``t``. The
paper's heuristic caps this: *"the thread with the minimum surplus
typically has either a small weight, a small start tag, or a small
surplus in the previous scheduling instance"*, so examining the first
``k`` threads of each of the three queues (the weight queue backwards,
since it is sorted descending), computing fresh surpluses only for
those, and picking the minimum is almost always right. Fig. 3 shows
k = 20 yields > 99 % accuracy on a quad-processor with up to 400
runnable threads.

Full surplus refreshes still happen, but only every ``refresh_every``
decisions ("infrequent updates and sorting are still required to
maintain a high accuracy of the heuristic"), making the per-decision
cost constant. Three details keep the decision path genuinely bounded
under overload (runnable sets in the thousands):

- when the ≤ 3k-thread window holds only *running* threads (possible
  whenever ``k`` is small relative to the processor count), the scan
  **widens geometrically** — doubling ``k`` until a runnable thread
  appears — instead of degrading to a full O(n) exact scan. At most
  ``p`` threads can be running, so one or two doublings always
  suffice; the worst case is O(p + k), never O(n);
- an explicit ``setweight()`` or a tag wrap-around rebase invalidates
  the surplus queue's stored order *structurally* (phis rescale
  surpluses; fixed-point shifts may round), so the next decision
  forces a full refresh immediately rather than trusting a stale order
  for up to ``refresh_every`` more decisions;
- the periodic refresh shares the exact path's fused
  recompute-and-rebuild (one pass computing fresh surpluses, one
  timsort): O(n log n) guaranteed even though after ``refresh_every``
  decisions of drift the queue arrives arbitrarily scrambled —
  insertion sort's quadratic case, which is why the §3.2 insertion
  re-sort is not used here.

Set ``track_accuracy=True`` to have every decision also compute the
exact minimum-surplus thread and record whether the heuristic matched —
this regenerates Fig. 3 (and the saturation study's accuracy-vs-k
curve on the server family).
"""

from __future__ import annotations

from repro.core.fixed_point import TagArithmetic
from repro.core.sfs import SurplusFairScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["HeuristicSurplusFairScheduler"]


class HeuristicSurplusFairScheduler(SurplusFairScheduler):
    """SFS with the bounded three-queue scan of §3.2.

    Parameters
    ----------
    scan_depth:
        ``k`` — threads examined per queue (paper: 20 suffices).
    refresh_every:
        Decisions between full surplus recomputations/re-sorts.
        Weight changes and tag rebases force an immediate refresh
        regardless (the stored order is structurally stale, not merely
        drifted).
    track_accuracy:
        Also compute the exact decision each time and count matches
        (a pick is a *match* when its fresh surplus equals the true
        minimum — picking a tied thread counts, as in the paper).
    """

    name = "SFS-heuristic"

    # Constant decision cost: the scan depth bounds the work.
    decision_cost_params = DecisionCostParams(base=3.5e-6, per_thread=0.0)

    def __init__(
        self,
        scan_depth: int = 20,
        refresh_every: int = 50,
        track_accuracy: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
        readjust: bool = True,
    ) -> None:
        if scan_depth < 1:
            raise ValueError(f"scan_depth must be >= 1, got {scan_depth}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        super().__init__(
            tag_math=tag_math, wake_preempt=wake_preempt, readjust=readjust
        )
        self.scan_depth = scan_depth
        self.refresh_every = refresh_every
        self.track_accuracy = track_accuracy
        self._since_refresh = 0
        #: surplus-queue order invalidated structurally (setweight /
        #: rebase) — force a full refresh at the next decision
        self._order_stale = False
        #: decisions where the heuristic had a real choice to make
        self.tracked_decisions = 0
        #: decisions whose pick had the true minimum surplus
        self.tracked_matches = 0
        #: widening rounds taken because a window held only running
        #: threads (the fixed fallback path; used to be a full O(n) scan)
        self.widened_scans = 0
        #: full refreshes forced by weight changes / rebases rather
        #: than the refresh_every cadence
        self.forced_refreshes = 0

    @property
    def accuracy(self) -> float:
        """Fraction of tracked decisions that matched the exact pick."""
        if self.tracked_decisions == 0:
            return 1.0
        return self.tracked_matches / self.tracked_decisions

    # ------------------------------------------------------------------
    # staleness hooks: structural order invalidation forces a refresh
    # ------------------------------------------------------------------

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        super().on_weight_change(task, old_weight, now)
        if task.is_runnable:
            # Readjustment may have rescaled *several* phis; surpluses
            # scale with phi, so the stored order is invalid, not just
            # drifted. Refresh at the next decision.
            self._order_stale = True

    def _after_rebase(self, offset) -> None:
        super()._after_rebase(offset)
        # Surpluses are invariant under a common tag shift in exact
        # arithmetic, but fixed-point shifts round — refreshing once is
        # cheap insurance against a silently reordered queue.
        self._order_stale = True

    # ------------------------------------------------------------------
    # the bounded decision scan
    # ------------------------------------------------------------------

    def _scan_window(self, depth: int) -> tuple[Task | None, float | None]:
        """Min-fresh-surplus runnable thread in the depth-``k`` window.

        One tight pass over the three window slices. Threads appearing
        in several windows are scanned more than once — harmless for a
        minimum, and cheaper than deduplicating: this loop runs per
        scheduling decision, so set bookkeeping and tuple keys are real
        costs at N=5000 overload.
        """
        surplus = self.tags.surplus
        v = self._vtime
        runnable = TaskState.RUNNABLE
        best: Task | None = None
        best_alpha: float | None = None
        best_tid = 0
        for window in (
            self.start_queue.peek_n(depth),
            self.weight_queue.peek_tail_n(depth),  # smallest weights
            self.surplus_queue.peek_n(depth),
        ):
            for task in window:
                if task.state is not runnable:
                    continue
                alpha = surplus(task.phi, task.sched["S"], v)
                if (
                    best is None
                    or alpha < best_alpha
                    or (alpha == best_alpha and task.tid < best_tid)
                ):
                    best = task
                    best_alpha = alpha
                    best_tid = task.tid
        return best, best_alpha

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self.decision_count += 1
        self._refresh_vtime()
        self._since_refresh += 1
        if self._order_stale or self._since_refresh >= self.refresh_every:
            if self._order_stale:
                self.forced_refreshes += 1
            self._recompute_surpluses()
            self._since_refresh = 0
            self._order_stale = False
        k = self.scan_depth
        best, best_alpha = self._scan_window(k)
        total = len(self.surplus_queue)
        while best is None and k < total:
            # The window held only running threads. At most p threads
            # can be running, so widening geometrically finds a runnable
            # one (if any exists) in O(p + k) — the old fallback ran the
            # exact O(n) scan here, the very cost the heuristic exists
            # to avoid.
            k = min(total, k * 2)
            self.widened_scans += 1
            best, best_alpha = self._scan_window(k)
        if self.track_accuracy and best is not None:
            exact = self.exact_minimum_surplus_task()
            if exact is not None:
                self.tracked_decisions += 1
                # best_alpha is best's fresh surplus from the scan —
                # no need to recompute it per decision.
                # sfs-lint: disable=SFS005 (bit-identity agreement counter vs exact scan)
                if best_alpha == self.surplus_of(exact):
                    self.tracked_matches += 1
        return best
