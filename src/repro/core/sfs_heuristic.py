"""The §3.2 bounded-scan decision heuristic for SFS.

Exact SFS must recompute every runnable thread's surplus whenever the
virtual time advances — O(t log t) with run-queue length ``t``. The
paper's heuristic caps this: *"the thread with the minimum surplus
typically has either a small weight, a small start tag, or a small
surplus in the previous scheduling instance"*, so examining the first
``k`` threads of each of the three queues (the weight queue backwards,
since it is sorted descending), computing fresh surpluses only for
those, and picking the minimum is almost always right. Fig. 3 shows
k = 20 yields > 99 % accuracy on a quad-processor with up to 400
runnable threads.

Full surplus refreshes still happen, but only every ``refresh_every``
decisions ("infrequent updates and sorting are still required to
maintain a high accuracy of the heuristic"), making the per-decision
cost constant.

Set ``track_accuracy=True`` to have every decision also compute the
exact minimum-surplus thread and record whether the heuristic matched —
this regenerates Fig. 3.
"""

from __future__ import annotations

from repro.core.fixed_point import TagArithmetic
from repro.core.sfs import SurplusFairScheduler
from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task, TaskState

__all__ = ["HeuristicSurplusFairScheduler"]


class HeuristicSurplusFairScheduler(SurplusFairScheduler):
    """SFS with the bounded three-queue scan of §3.2.

    Parameters
    ----------
    scan_depth:
        ``k`` — threads examined per queue (paper: 20 suffices).
    refresh_every:
        Decisions between full surplus recomputations/re-sorts.
    track_accuracy:
        Also compute the exact decision each time and count matches
        (a pick is a *match* when its fresh surplus equals the true
        minimum — picking a tied thread counts, as in the paper).
    """

    name = "SFS-heuristic"

    # Constant decision cost: the scan depth bounds the work.
    decision_cost_params = DecisionCostParams(base=3.5e-6, per_thread=0.0)

    def __init__(
        self,
        scan_depth: int = 20,
        refresh_every: int = 50,
        track_accuracy: bool = False,
        tag_math: TagArithmetic | None = None,
        wake_preempt: bool = True,
        readjust: bool = True,
    ) -> None:
        if scan_depth < 1:
            raise ValueError(f"scan_depth must be >= 1, got {scan_depth}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        super().__init__(tag_math=tag_math, wake_preempt=wake_preempt, readjust=readjust)
        self.scan_depth = scan_depth
        self.refresh_every = refresh_every
        self.track_accuracy = track_accuracy
        self._since_refresh = 0
        #: decisions where the heuristic had a real choice to make
        self.tracked_decisions = 0
        #: decisions whose pick had the true minimum surplus
        self.tracked_matches = 0

    @property
    def accuracy(self) -> float:
        """Fraction of tracked decisions that matched the exact pick."""
        if self.tracked_decisions == 0:
            return 1.0
        return self.tracked_matches / self.tracked_decisions

    def _candidates(self) -> list[Task]:
        """The <= 3k threads the heuristic examines, deduplicated."""
        k = self.scan_depth
        seen: set[int] = set()
        out: list[Task] = []
        for task in (
            self.start_queue.peek_n(k)
            + self.weight_queue.peek_tail_n(k)  # backwards: smallest weights
            + self.surplus_queue.peek_n(k)
        ):
            if task.tid not in seen:
                seen.add(task.tid)
                out.append(task)
        return out

    def pick_next(self, cpu: int, now: float) -> Task | None:
        self.decision_count += 1
        self._refresh_vtime()
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_every:
            self._recompute_surpluses()
            self._since_refresh = 0
        best: Task | None = None
        best_key: tuple | None = None
        for task in self._candidates():
            if task.state is not TaskState.RUNNABLE:
                continue
            key = (self.surplus_of(task), task.tid)
            if best_key is None or key < best_key:
                best_key = key
                best = task
        if best is None:
            # Scan window held only running threads; fall back to the
            # exact path so the scheduler stays work-conserving.
            best = self.exact_minimum_surplus_task()
        if self.track_accuracy and best is not None:
            exact = self.exact_minimum_surplus_task()
            if exact is not None:
                self.tracked_decisions += 1
                if self.surplus_of(best) == self.surplus_of(exact):
                    self.tracked_matches += 1
        return best
