"""Tag arithmetic strategies: floating point and kernel-style fixed point.

§3.2 of the paper: *"the Linux kernel supports only integer variables
[...] we simulate floating point variables using integer variables. To
do so we scale each floating point operation in SFS by a constant
factor [10^n]. [...] we found a scaling factor of 10^4 to be adequate
for most purposes. Observe that a large scaling factor can hasten the
wrap-around in the start and finish tags of long running threads; we
deal with wrap-around by adjusting all start and finish tags with
respect to the minimum start tag in the system and resetting the
virtual time."*

:class:`FloatTags` is the reference implementation (the simulator is
not bound by kernel restrictions); :class:`FixedTags` reproduces the
kernel's integer arithmetic — tags are integers counting ``1/10^n``
virtual-time units, finish-tag increments truncate exactly like C
integer division, and a 31-bit wrap threshold forces periodic rebasing.
Tests verify that fixed-point scheduling decisions track the float
reference for adequate ``n`` and degrade for tiny ``n``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["TagArithmetic", "FloatTags", "FixedTags"]


class TagArithmetic(ABC):
    """Strategy for start/finish-tag and surplus computations.

    Tags are opaque comparable numbers; schedulers must use only the
    operations defined here so that float and fixed-point variants are
    interchangeable.
    """

    #: the initial virtual time ("Initially, the virtual time ... is zero")
    zero: float | int = 0

    @abstractmethod
    def finish_tag(self, start: float | int, ran: float, phi: float) -> float | int:
        """Eq. 5: ``F = S + q / phi`` for a quantum that ran ``ran`` s."""

    @abstractmethod
    def surplus(self, phi: float, start: float | int, vtime: float | int):
        """Eq. 4: ``alpha = phi * (S - v)``."""

    def needs_rebase(self, vtime: float | int) -> bool:
        """Should tags be shifted down to avoid wrap-around?"""
        return False

    def shift(self, tag: float | int, offset: float | int) -> float | int:
        """Rebase helper: ``tag - offset``."""
        return tag - offset


class FloatTags(TagArithmetic):
    """IEEE-double tag arithmetic (reference semantics)."""

    zero = 0.0

    def finish_tag(self, start: float, ran: float, phi: float) -> float:
        if phi <= 0:
            raise ValueError(f"phi must be > 0, got {phi}")
        return start + ran / phi

    def surplus(self, phi: float, start: float, vtime: float) -> float:
        return phi * (start - vtime)


class FixedTags(TagArithmetic):
    """Kernel-style scaled integer tag arithmetic.

    Tags count ``1/10^n`` units of virtual time: a quantum of ``q``
    seconds at instantaneous weight ``phi`` advances the finish tag by
    ``(q_units * scale) // phi_scaled`` where both operands are integers
    — reproducing the truncation the kernel's integer division performs.

    Parameters
    ----------
    n:
        Decimal digits kept after the point (paper default: 4).
    wrap_bits:
        Tag width in bits before a rebase is forced; the kernel's
        signed 32-bit longs wrap at 2^31, we rebase at half that for
        safety margin, as a real implementation would.
    """

    def __init__(self, n: int = 4, wrap_bits: int = 31) -> None:
        if n < 0:
            raise ValueError(f"scale exponent must be >= 0, got {n}")
        if wrap_bits < 8:
            raise ValueError(f"wrap_bits must be >= 8, got {wrap_bits}")
        self.n = n
        self.scale = 10**n
        self.wrap_threshold = 2 ** (wrap_bits - 1)

    zero = 0

    def phi_scaled(self, phi: float) -> int:
        """Integer representation of an instantaneous weight."""
        return max(1, int(round(phi * self.scale)))

    def finish_tag(self, start: int, ran: float, phi: float) -> int:
        if phi <= 0:
            raise ValueError(f"phi must be > 0, got {phi}")
        # q is measured in scale-units of seconds; dividing two scaled
        # integers keeps the quotient in tag units (1/scale of a
        # virtual second), exactly as F = S + q * 10^n / w does in C.
        q_units = int(round(ran * self.scale))
        return start + (q_units * self.scale) // self.phi_scaled(phi)

    def surplus(self, phi: float, start: int, vtime: int) -> int:
        # alpha = phi * (S - v), kept scaled by 10^n (common factor, so
        # comparisons are unaffected).
        return self.phi_scaled(phi) * (start - vtime)

    def needs_rebase(self, vtime: int) -> bool:
        return vtime >= self.wrap_threshold

    def shift(self, tag: int, offset: int) -> int:
        return tag - offset
