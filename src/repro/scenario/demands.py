"""Pluggable service-demand registry for generated task populations.

A *demand distribution* draws per-task CPU service requirements (in
seconds) from a seeded PRNG; :func:`repro.scenario.population.generated_tasks`
pairs it with an arrival process (:mod:`repro.scenario.arrivals`) to
build open-arrival populations as data. Distributions register by name
with :func:`register_demand`, mirroring the scheduler registry, so
config files can pick them::

    demand: {kind: bounded-pareto, mean: 0.05, shape: 1.5}

Built-in distributions:

==============  ======================================================
exponential     memoryless M/M-style service times
bounded-pareto  heavy-tailed Pareto, capped (the server-cell default)
lognormal       moderately skewed multiplicative service times
bimodal         two-point interactive/batch mix
fixed           constant demand (deterministic corner cases)
constant-mtu    fixed packet size in bytes (flow domain, default 1500)
packet-trace    replay a recorded packet-size sequence, cycling
==============  ======================================================

The registry is unit-agnostic: the server family draws CPU seconds,
the flow family (:mod:`repro.flows`) draws packet sizes in bytes from
the same kinds.

Each distribution draws only from the ``rng`` passed to
:meth:`DemandDistribution.sample`, keeping (distribution, seed) pairs
bit-for-bit reproducible.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol, Sequence

from random import Random

__all__ = [
    "DemandDistribution",
    "DEMANDS",
    "register_demand",
    "make_demand",
    "demand_names",
    "ExponentialDemand",
    "BoundedParetoDemand",
    "LognormalDemand",
    "BimodalDemand",
    "FixedDemand",
    "ConstantMtu",
    "PacketTrace",
]


class DemandDistribution(Protocol):
    """What the population generator needs: one demand per task."""

    def sample(self, rng: Random) -> float:
        """Draw one CPU demand in seconds, > 0, using only ``rng``."""
        ...


#: name -> factory accepting keyword parameters (populated by
#: @register_demand)
DEMANDS: dict[str, Callable[..., DemandDistribution]] = {}


def register_demand(
    name: str, **preset: object
) -> Callable[
    [Callable[..., DemandDistribution]], Callable[..., DemandDistribution]
]:
    """Register a demand-distribution factory under ``name``.

    Mirrors :func:`repro.schedulers.registry.register`: returns the
    factory unchanged so decorators stack, each adding one preset
    variant.
    """

    def decorator(
        factory: Callable[..., DemandDistribution],
    ) -> Callable[..., DemandDistribution]:
        if name in DEMANDS:
            raise ValueError(
                f"demand distribution {name!r} is already registered"
            )

        def build(**overrides: object) -> DemandDistribution:
            options = dict(preset)
            options.update(overrides)
            return factory(**options)

        # registry consumers (`sfs-experiment list`) summarize kinds
        # by docstring first line
        build.__doc__ = factory.__doc__
        DEMANDS[name] = build
        return factory

    return decorator


def make_demand(name: str, **params: object) -> DemandDistribution:
    """Instantiate a demand distribution by registry name."""
    try:
        factory = DEMANDS[name]
    except KeyError:
        known = ", ".join(sorted(DEMANDS))
        raise ValueError(
            f"unknown demand distribution {name!r}; known: {known}"
        ) from None
    return factory(**params)


def demand_names() -> list[str]:
    """All registered demand-distribution names, sorted."""
    return sorted(DEMANDS)


# ----------------------------------------------------------------------
# built-in distributions
# ----------------------------------------------------------------------


@register_demand("exponential")
class ExponentialDemand:
    """Memoryless exponential service times with the given ``mean``."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: Random) -> float:
        return rng.expovariate(1.0 / self.mean)


@register_demand("bounded-pareto")
class BoundedParetoDemand:
    """Heavy-tailed Pareto demands with the given ``mean``, capped.

    The server-cell workload: ``shape`` must exceed 1 for a finite
    mean, the scale is chosen so the *uncapped* mean equals ``mean``,
    and samples are clipped at ``cap_factor * mean`` so one monster job
    cannot dominate a finite run. The draw — one ``paretovariate`` per
    task — matches the historical ``server_scenario`` loop exactly, so
    rebasing onto this class keeps existing seeds bit-identical.
    """

    def __init__(
        self, mean: float, shape: float = 1.5, cap_factor: float = 100.0
    ) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if shape <= 1:
            raise ValueError(f"shape must be > 1 (finite mean), got {shape}")
        if cap_factor <= 0:
            raise ValueError(f"cap_factor must be > 0, got {cap_factor}")
        self.mean = mean
        self.shape = shape
        self.cap_factor = cap_factor
        self.scale = mean * (shape - 1.0) / shape
        self.cap = cap_factor * mean

    def sample(self, rng: Random) -> float:
        return min(self.scale * rng.paretovariate(self.shape), self.cap)


@register_demand("lognormal")
class LognormalDemand:
    """Lognormal service times: skewed but lighter-tailed than Pareto.

    Parameterised by the arithmetic ``mean`` and the underlying
    normal's ``sigma`` (shape): ``mu = ln(mean) - sigma**2 / 2`` so the
    distribution's mean is exactly ``mean`` for any sigma.
    """

    def __init__(self, mean: float, sigma: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        self.mean = mean
        self.sigma = sigma
        self.mu = math.log(mean) - sigma * sigma / 2.0

    def sample(self, rng: Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


@register_demand("bimodal")
class BimodalDemand:
    """Two-point interactive/batch mix.

    With probability ``p_small`` a task demands ``small`` seconds,
    otherwise ``large`` — the canonical short-request/long-batch
    population whose slowdown behaviour separates fair schedulers from
    merely throughput-fair ones.
    """

    def __init__(
        self, small: float, large: float, p_small: float = 0.9
    ) -> None:
        if small <= 0:
            raise ValueError(f"small must be > 0, got {small}")
        if large <= 0:
            raise ValueError(f"large must be > 0, got {large}")
        if not 0.0 <= p_small <= 1.0:
            raise ValueError(f"p_small must be in [0, 1], got {p_small}")
        self.small = small
        self.large = large
        self.p_small = p_small

    def sample(self, rng: Random) -> float:
        return self.small if rng.random() < self.p_small else self.large


@register_demand("fixed")
class FixedDemand:
    """Constant demand: every task needs exactly ``value`` seconds.

    Consumes one ``rng.random()`` per sample anyway so swapping a
    stochastic distribution for ``fixed`` perturbs downstream draws the
    same way any other one-draw distribution would (keeping A/B
    comparisons honest about what changed).
    """

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"value must be > 0, got {value}")
        self.value = value

    def sample(self, rng: Random) -> float:
        rng.random()
        return self.value


@register_demand("constant-mtu")
class ConstantMtu:
    """Every packet is exactly ``mtu`` bytes (Ethernet default 1500).

    The flow-domain twin of ``fixed``: same one-draw parity (one
    ``rng.random()`` per sample), so swapping a stochastic size
    distribution for ``constant-mtu`` perturbs downstream draws the
    way any other one-draw kind would.
    """

    def __init__(self, mtu: float = 1500.0) -> None:
        if mtu <= 0:
            raise ValueError(f"mtu must be > 0, got {mtu}")
        self.mtu = mtu

    def sample(self, rng: Random) -> float:
        rng.random()
        return self.mtu


@register_demand("packet-trace")
class PacketTrace:
    """Replay a recorded packet-size sequence, cycling when exhausted.

    Deterministic but *stateful* — an internal cursor advances one
    entry per sample, so instantiate a fresh trace per population
    (``make_demand`` does) rather than sharing one across runs. Keeps
    one-draw parity with the stochastic kinds.
    """

    def __init__(self, sizes: Sequence[float]) -> None:
        values = tuple(float(s) for s in sizes)
        if not values:
            raise ValueError("packet trace needs at least one size")
        for i, size in enumerate(values):
            if size <= 0 or not math.isfinite(size):
                raise ValueError(
                    f"sizes[{i}] must be finite and > 0, got {size}"
                )
        self.sizes = values
        self._cursor = 0

    def sample(self, rng: Random) -> float:
        rng.random()
        value = self.sizes[self._cursor % len(self.sizes)]
        self._cursor += 1
        return value
