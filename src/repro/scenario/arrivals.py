"""Pluggable arrival-process registry for generated task populations.

An *arrival process* turns a seeded PRNG into a monotone stream of
absolute arrival times; :func:`repro.scenario.population.generated_tasks`
pairs it with a demand distribution (:mod:`repro.scenario.demands`) to
draw an open-arrival task population as plain :class:`TaskSpec` data.
Processes are registered by name with the :func:`register_arrival`
decorator — mirroring :mod:`repro.schedulers.registry` — so scenario
config files select them as data::

    streams:
      - n: 400
        seed: 7
        arrival: {kind: flash-crowd, rate: 20.0, spike_at: 10.0,
                  spike_duration: 5.0, spike_factor: 10.0}
        demand: {kind: exponential, mean: 0.05}

Built-in processes:

============  ========================================================
poisson       homogeneous Poisson stream (exponential gaps)
bursty        two-state MMPP: bursts of high rate between lulls
diurnal       sinusoidal load curve (peak/trough over a period)
flash-crowd   baseline rate with one multiplicative spike window
trace         explicit, pre-recorded arrival instants
============  ========================================================

Every process draws exclusively from the ``rng`` handed to
:meth:`ArrivalProcess.times`, so a (process, seed) pair is bit-for-bit
reproducible — the property the goldens and checkpoint fingerprints
rely on. Downstream projects add processes the same way the built-ins
do: decorate any callable returning an object with a ``times(rng)``
generator method.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Protocol, Sequence

from random import Random

__all__ = [
    "ArrivalProcess",
    "ARRIVALS",
    "register_arrival",
    "make_arrival",
    "arrival_names",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "TraceArrivals",
]


class ArrivalProcess(Protocol):
    """What the population generator needs: a stream of arrival times."""

    def times(self, rng: Random) -> Iterator[float]:
        """Yield strictly increasing absolute arrival times.

        Draws only from ``rng``; may be infinite (the caller takes the
        first ``n``) or finite (:class:`TraceArrivals`).
        """
        ...


#: name -> factory accepting keyword parameters (populated by
#: @register_arrival)
ARRIVALS: dict[str, Callable[..., ArrivalProcess]] = {}


def register_arrival(
    name: str, **preset: object
) -> Callable[[Callable[..., ArrivalProcess]], Callable[..., ArrivalProcess]]:
    """Register an arrival-process factory under ``name``.

    Mirrors :func:`repro.schedulers.registry.register`: returns the
    factory unchanged so decorators stack, each adding one preset
    variant.
    """

    def decorator(
        factory: Callable[..., ArrivalProcess],
    ) -> Callable[..., ArrivalProcess]:
        if name in ARRIVALS:
            raise ValueError(f"arrival process {name!r} is already registered")

        def build(**overrides: object) -> ArrivalProcess:
            options = dict(preset)
            options.update(overrides)
            return factory(**options)

        # registry consumers (`sfs-experiment list`) summarize kinds
        # by docstring first line
        build.__doc__ = factory.__doc__
        ARRIVALS[name] = build
        return factory

    return decorator


def make_arrival(name: str, **params: object) -> ArrivalProcess:
    """Instantiate an arrival process by registry name."""
    try:
        factory = ARRIVALS[name]
    except KeyError:
        known = ", ".join(sorted(ARRIVALS))
        raise ValueError(
            f"unknown arrival process {name!r}; known: {known}"
        ) from None
    return factory(**params)


def arrival_names() -> list[str]:
    """All registered arrival-process names, sorted."""
    return sorted(ARRIVALS)


# ----------------------------------------------------------------------
# built-in processes
# ----------------------------------------------------------------------


@register_arrival("poisson")
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` per second.

    The open-system baseline: independent exponential inter-arrival
    gaps. ``server_scenario`` uses this with
    ``rate = load * cpus / mean_service``.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate

    def times(self, rng: Random) -> Iterator[float]:
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            yield t


@register_arrival("bursty")
class BurstyArrivals:
    """Two-state MMPP: correlated bursts of ``rate_hi`` between lulls.

    A continuous-time Markov chain alternates between a *burst* state
    (Poisson at ``rate_hi``, mean dwell ``mean_burst``) and a *lull*
    (``rate_lo``, mean dwell ``mean_lull``; 0 turns the lull silent —
    the interrupted-Poisson special case). The workload the open
    Poisson stream can't express: arrival clumps that pile the run
    queue up faster than the steady-state rate suggests.
    """

    def __init__(
        self,
        rate_hi: float,
        rate_lo: float,
        mean_burst: float,
        mean_lull: float,
        start_in_burst: bool = False,
    ) -> None:
        if rate_hi <= 0:
            raise ValueError(f"rate_hi must be > 0, got {rate_hi}")
        if rate_lo < 0:
            raise ValueError(f"rate_lo must be >= 0, got {rate_lo}")
        if mean_burst <= 0:
            raise ValueError(f"mean_burst must be > 0, got {mean_burst}")
        if mean_lull <= 0:
            raise ValueError(f"mean_lull must be > 0, got {mean_lull}")
        self.rate_hi = rate_hi
        self.rate_lo = rate_lo
        self.mean_burst = mean_burst
        self.mean_lull = mean_lull
        self.start_in_burst = start_in_burst

    def times(self, rng: Random) -> Iterator[float]:
        t = 0.0
        burst = self.start_in_burst
        dwell = self.mean_burst if burst else self.mean_lull
        state_end = t + rng.expovariate(1.0 / dwell)
        while True:
            rate = self.rate_hi if burst else self.rate_lo
            # A silent state contributes no arrivals; jump to its end.
            gap = rng.expovariate(rate) if rate > 0 else math.inf
            if t + gap < state_end:
                t += gap
                yield t
            else:
                # Exponential gaps are memoryless, so discarding the
                # in-flight gap at a state switch keeps the process
                # exact (no bias toward either state's rate).
                t = state_end
                burst = not burst
                dwell = self.mean_burst if burst else self.mean_lull
                state_end = t + rng.expovariate(1.0 / dwell)


class _ThinnedArrivals:
    """Non-homogeneous Poisson base via Lewis-Shedler thinning.

    Subclasses provide ``peak_rate`` (an upper bound on the
    instantaneous rate) and :meth:`rate_at`; candidates drawn at the
    peak rate are accepted with probability ``rate_at(t) / peak_rate``.
    """

    peak_rate: float

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def times(self, rng: Random) -> Iterator[float]:
        t = 0.0
        while True:
            t += rng.expovariate(self.peak_rate)
            if rng.random() * self.peak_rate <= self.rate_at(t):
                yield t


@register_arrival("diurnal")
class DiurnalArrivals(_ThinnedArrivals):
    """Sinusoidal diurnal load curve around a mean ``rate``.

    Instantaneous rate
    ``rate * (1 + amplitude * cos(2*pi*(t - peak_at) / period))`` — the
    classic day/night demand cycle, compressed to whatever ``period``
    the scenario wants to simulate. ``amplitude`` in [0, 1] sets the
    peak-to-trough swing (1.0 idles the trough completely).
    """

    def __init__(
        self,
        rate: float,
        period: float,
        amplitude: float = 0.8,
        peak_at: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude
        self.peak_at = peak_at
        self.peak_rate = rate * (1.0 + amplitude)

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_at) / self.period
        return self.rate * (1.0 + self.amplitude * math.cos(phase))


@register_arrival("flash-crowd")
class FlashCrowdArrivals(_ThinnedArrivals):
    """Baseline Poisson rate with one multiplicative spike window.

    Rate is ``rate`` everywhere except
    ``[spike_at, spike_at + spike_duration)``, where it jumps to
    ``rate * spike_factor`` — the slashdot/flash-crowd shape whose
    transient backlog proportional-share studies care about.
    """

    def __init__(
        self,
        rate: float,
        spike_at: float,
        spike_duration: float,
        spike_factor: float,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if spike_at < 0:
            raise ValueError(f"spike_at must be >= 0, got {spike_at}")
        if spike_duration <= 0:
            raise ValueError(
                f"spike_duration must be > 0, got {spike_duration}"
            )
        if spike_factor < 1:
            raise ValueError(f"spike_factor must be >= 1, got {spike_factor}")
        self.rate = rate
        self.spike_at = spike_at
        self.spike_duration = spike_duration
        self.spike_factor = spike_factor
        self.peak_rate = rate * spike_factor

    def rate_at(self, t: float) -> float:
        in_spike = self.spike_at <= t < self.spike_at + self.spike_duration
        return self.rate * (self.spike_factor if in_spike else 1.0)


@register_arrival("trace")
class TraceArrivals:
    """Deterministic, pre-recorded arrival instants.

    Replays an explicit nondecreasing list of times — measured traces,
    hand-built corner cases, or adversarial patterns no stochastic
    process produces. Draws nothing from the RNG; the population
    generator still uses its stream for demands and weight classes.
    """

    def __init__(self, times: Sequence[float]) -> None:
        values = tuple(float(t) for t in times)
        if not values:
            raise ValueError("trace needs at least one arrival time")
        if values[0] < 0:
            raise ValueError(f"trace times must be >= 0, got {values[0]}")
        for a, b in zip(values, values[1:]):
            if b < a:
                raise ValueError(
                    f"trace times must be nondecreasing, got {a} before {b}"
                )
        self.trace = values

    def times(self, rng: Random) -> Iterator[float]:
        return iter(self.trace)
