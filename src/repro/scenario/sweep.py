"""Cartesian policy x machine sweeps over one base scenario.

A :class:`Sweep` expands a base :class:`~repro.scenario.spec.Scenario`
into the cartesian product of scheduler names, CPU counts and quantum
lengths, runs every cell through
:func:`~repro.scenario.runner.run_scenario`, and returns one
:class:`SweepCell` per grid point **in deterministic grid order**
(scheduler-major, then cpus, then quantum) regardless of how many
worker processes executed them.

Execution uses a ``concurrent.futures`` process pool; scenarios are
plain data, so they pickle cleanly to the workers and only the flat
metric summaries travel back. Environments without ``fork``/process
support (or ``workers=0``) degrade to serial in-process execution with
identical results and ordering.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.scenario.result import check_metrics, summarize
from repro.scenario.runner import run_scenario
from repro.scenario.spec import Scenario

__all__ = ["Sweep", "SweepCell", "run_sweep", "run_cells", "sweep_scenarios"]


@dataclass(frozen=True)
class Sweep:
    """A policy x parameter grid over one base scenario.

    Empty axes inherit the base scenario's value, so a sweep with only
    ``schedulers`` set is a pure policy comparison. ``metrics`` names
    the canned summaries (see :data:`repro.scenario.result.METRICS`)
    each cell reports; unknown names are rejected at construction, not
    after the first N=5000 cell has already run.
    """

    base: Scenario
    schedulers: tuple[str, ...] = ()
    cpus: tuple[int, ...] = ()
    quanta: tuple[float, ...] = ()
    metrics: tuple[str, ...] = ("shares", "jains")

    def __post_init__(self) -> None:
        check_metrics(self.metrics)


@dataclass(frozen=True)
class SweepCell:
    """One grid point's coordinates and measured metrics.

    ``wall_s`` is the worker-side wall-clock of the cell's
    ``run_scenario`` call — with the ``events_fired`` metric it yields
    events/sec, the throughput number the saturation studies chart.
    """

    index: int
    scheduler: str
    cpus: int
    quantum: float
    metrics: Mapping[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0


def sweep_scenarios(sweep: Sweep) -> list[Scenario]:
    """Expand the grid into per-cell scenarios, in deterministic order."""
    schedulers = sweep.schedulers or (sweep.base.scheduler,)
    cpus = sweep.cpus or (sweep.base.cpus,)
    quanta = sweep.quanta or (sweep.base.quantum,)
    cells = []
    for scheduler, ncpus, quantum in itertools.product(
        schedulers, cpus, quanta
    ):
        cells.append(
            sweep.base.with_(
                name=f"{sweep.base.name}[{scheduler}/cpus={ncpus}/q={quantum:g}]",
                scheduler=scheduler,
                # Base constructor params only make sense for the base
                # policy; a different swept policy gets its defaults.
                scheduler_params=(
                    sweep.base.scheduler_params
                    if scheduler == sweep.base.scheduler
                    else {}
                ),
                cpus=ncpus,
                quantum=quantum,
            )
        )
    return cells


def _run_cell(args: tuple[int, Scenario, tuple[str, ...]]) -> SweepCell:
    """Worker entry point: run one cell, return its flat summary."""
    index, scenario, metrics = args
    t0 = time.perf_counter()
    result = run_scenario(scenario)
    wall = time.perf_counter() - t0
    return SweepCell(
        index=index,
        scheduler=scenario.scheduler,
        cpus=scenario.cpus,
        quantum=scenario.quantum,
        metrics=summarize(result, metrics),
        wall_s=wall,
    )


def run_sweep(sweep: Sweep, workers: int | None = None) -> list[SweepCell]:
    """Run every cell of the grid; results come back in grid order.

    ``workers=None`` sizes the pool to the grid (capped by the OS CPU
    count); ``workers=0`` forces serial in-process execution. The pool
    is a plain ``concurrent.futures.ProcessPoolExecutor``; if the
    platform cannot spawn worker processes the sweep transparently
    falls back to serial execution.
    """
    return run_cells(
        sweep_scenarios(sweep), tuple(sweep.metrics), workers=workers
    )


def run_cells(
    scenarios: Sequence[Scenario],
    metrics: tuple[str, ...],
    workers: int | None = None,
) -> list[SweepCell]:
    """Run an arbitrary list of scenarios across the process pool.

    The generalization :func:`run_sweep` is built on: grids that vary
    more than (scheduler, cpus, quantum) — e.g. the saturation study's
    N x load x policy lattice, where each cell is a *different*
    ``server_scenario`` population — build their own scenario list and
    feed it here. Results come back in input order with the same
    pool-or-serial fallback semantics as ``run_sweep``.
    """
    check_metrics(metrics)
    jobs = [
        (i, scenario, tuple(metrics)) for i, scenario in enumerate(scenarios)
    ]
    if workers == 0 or len(jobs) <= 1:
        return [_run_cell(job) for job in jobs]
    max_workers = min(len(jobs), workers or os.cpu_count() or 1)
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            # Executor.map preserves submission order, which is the
            # deterministic grid order of sweep_scenarios().
            return list(pool.map(_run_cell, jobs))
    except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool) as exc:
        # Restricted sandboxes surface missing subprocess support either
        # at pool creation (OSError/PermissionError) or as worker death
        # (BrokenProcessPool). Degrade to serial, but loudly — a broken
        # pool can also mean a genuinely crashing worker (e.g. OOM).
        warnings.warn(
            f"process pool unavailable ({exc!r}); re-running the sweep "
            "serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        return [_run_cell(job) for job in jobs]
