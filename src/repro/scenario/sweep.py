"""Cartesian policy x machine sweeps over one base scenario.

A :class:`Sweep` expands a base :class:`~repro.scenario.spec.Scenario`
into the cartesian product of scheduler names, CPU counts and quantum
lengths, runs every cell through
:func:`~repro.scenario.runner.run_scenario`, and returns one
:class:`SweepCell` per grid point **in deterministic grid order**
(scheduler-major, then cpus, then quantum) regardless of how many
worker processes — or hosts — executed them.

Execution is delegated to a pluggable
:class:`~repro.exec.ExecutionBackend` (serial, process pool, chunked
streaming with a resume checkpoint, or ssh-sharded workers); this
module is the thin deterministic-reordering wrapper over the backend's
completion-order iterator. :func:`run_sweep` / :func:`run_cells` keep
their historical signatures — ``workers=None`` auto-sizes a local
pool, ``workers=0`` forces serial execution — so existing callers and
golden outputs are untouched; new callers pick a backend by name or
instance and may stream cells incrementally via :func:`stream_cells`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.exec import (
    CellJob,
    ChunkedBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.scenario.result import check_metrics
from repro.scenario.spec import Scenario

__all__ = [
    "Sweep",
    "SweepCell",
    "run_sweep",
    "run_cells",
    "stream_cells",
    "sweep_scenarios",
    "cells_in_grid_order",
]


@dataclass(frozen=True)
class Sweep:
    """A policy x parameter grid over one base scenario.

    Empty axes inherit the base scenario's value, so a sweep with only
    ``schedulers`` set is a pure policy comparison. ``metrics`` names
    the canned summaries (see :data:`repro.scenario.result.METRICS`)
    each cell reports; unknown names are rejected at construction, not
    after the first N=5000 cell has already run.
    """

    base: Scenario
    schedulers: tuple[str, ...] = ()
    cpus: tuple[int, ...] = ()
    quanta: tuple[float, ...] = ()
    metrics: tuple[str, ...] = ("shares", "jains")

    def __post_init__(self) -> None:
        check_metrics(self.metrics)


@dataclass(frozen=True)
class SweepCell:
    """One grid point's coordinates and measured metrics.

    ``wall_s`` is the worker-side wall-clock of the cell's
    ``run_scenario`` call — with the ``events_fired`` metric it yields
    events/sec, the throughput number the saturation studies chart.
    """

    index: int
    scheduler: str
    cpus: int
    quantum: float
    metrics: Mapping[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0


def sweep_scenarios(sweep: Sweep) -> list[Scenario]:
    """Expand the grid into per-cell scenarios, in deterministic order."""
    schedulers = sweep.schedulers or (sweep.base.scheduler,)
    cpus = sweep.cpus or (sweep.base.cpus,)
    quanta = sweep.quanta or (sweep.base.quantum,)
    cells = []
    for scheduler, ncpus, quantum in itertools.product(schedulers, cpus, quanta):
        cells.append(
            sweep.base.with_(
                name=f"{sweep.base.name}[{scheduler}/cpus={ncpus}/q={quantum:g}]",
                scheduler=scheduler,
                # Base constructor params only make sense for the base
                # policy; a different swept policy gets its defaults.
                scheduler_params=(
                    sweep.base.scheduler_params
                    if scheduler == sweep.base.scheduler
                    else {}
                ),
                cpus=ncpus,
                quantum=quantum,
            )
        )
    return cells


def cells_in_grid_order(cells: Iterable[SweepCell]) -> Iterator[SweepCell]:
    """Reorder a completion-order cell stream into grid (index) order.

    Yields cell ``i`` as soon as every cell ``< i`` has been yielded,
    holding out-of-order arrivals in a small buffer — so a streaming
    consumer (incremental CSV export, a progress table) still sees
    deterministic order without waiting for the whole grid. The buffer
    is bounded by the completion skew (in practice: the worker count /
    chunk size), not the grid size.
    """
    pending: dict[int, SweepCell] = {}
    next_index = 0
    for cell in cells:
        pending[cell.index] = cell
        while next_index in pending:
            yield pending.pop(next_index)
            next_index += 1
    # A cancelled/failed backend may leave gaps; flush what remains in
    # index order rather than dropping it.
    for index in sorted(pending):
        yield pending[index]


def _resolve_backend(
    backend: str | ExecutionBackend | None,
    workers: int | None,
    checkpoint: str | None,
    chunk_size: int | None,
    n_jobs: int,
) -> tuple[ExecutionBackend, bool]:
    """(backend to use, whether this call owns/closes it).

    ``backend=None`` preserves the historical ``run_cells`` semantics:
    serial for ``workers=0`` or single-cell grids, otherwise a local
    process pool (falling back to serial, loudly, where subprocesses
    are unavailable) — or a checkpointing chunked runner as soon as a
    ``checkpoint`` path is given.
    """
    chunking = {} if chunk_size is None else {"chunk_size": chunk_size}
    if backend is None:
        if checkpoint is not None:
            return (
                ChunkedBackend(
                    workers=workers, checkpoint=checkpoint, **chunking
                ),
                True,
            )
        if workers == 0 or n_jobs <= 1:
            return SerialBackend(), True
        return ProcessPoolBackend(workers=workers), True
    if isinstance(backend, str):
        return (
            make_backend(
                backend, workers=workers, checkpoint=checkpoint, **chunking
            ),
            True,
        )
    if checkpoint is not None and not isinstance(backend, ChunkedBackend):
        # Layer the resume checkpoint over any caller-provided backend.
        return (
            ChunkedBackend(checkpoint=checkpoint, inner=backend, **chunking),
            True,
        )
    return backend, False


def stream_cells(
    scenarios: Sequence[Scenario],
    metrics: tuple[str, ...],
    workers: int | None = None,
    backend: str | ExecutionBackend | None = None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
) -> Iterator[SweepCell]:
    """Run scenarios through a backend; yield cells in grid order.

    The streaming core of :func:`run_cells`: cells are yielded
    incrementally (in deterministic grid order, buffering only the
    completion skew), so a 10^4-cell grid can flush to CSV/JSONL as it
    runs instead of materialising every result first. ``backend`` is a
    name from :data:`repro.exec.BACKENDS`, a ready-made
    :class:`~repro.exec.ExecutionBackend` instance, or ``None`` for
    the historical pool-or-serial behaviour; ``checkpoint`` makes the
    run resumable and ``chunk_size`` bounds the in-flight cells (both
    see :class:`~repro.exec.ChunkedBackend`; ``chunk_size`` is ignored
    by backends that don't chunk).
    """
    check_metrics(metrics)
    jobs = [
        CellJob(index=i, scenario=scenario, metrics=tuple(metrics))
        for i, scenario in enumerate(scenarios)
    ]
    resolved, owned = _resolve_backend(
        backend, workers, checkpoint, chunk_size, len(jobs)
    )
    try:
        yield from cells_in_grid_order(resolved.submit(jobs))
    finally:
        if owned:
            resolved.close()


def run_sweep(
    sweep: Sweep,
    workers: int | None = None,
    backend: str | ExecutionBackend | None = None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
) -> list[SweepCell]:
    """Run every cell of the grid; results come back in grid order.

    ``workers=None`` sizes the default pool to the grid (capped by the
    OS CPU count); ``workers=0`` forces serial in-process execution.
    ``backend``/``checkpoint``/``chunk_size`` select any other
    execution backend — see :func:`stream_cells`.
    """
    return run_cells(
        sweep_scenarios(sweep),
        tuple(sweep.metrics),
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        chunk_size=chunk_size,
    )


def run_cells(
    scenarios: Sequence[Scenario],
    metrics: tuple[str, ...],
    workers: int | None = None,
    backend: str | ExecutionBackend | None = None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
) -> list[SweepCell]:
    """Run an arbitrary list of scenarios through an execution backend.

    The generalization :func:`run_sweep` is built on: grids that vary
    more than (scheduler, cpus, quantum) — e.g. the saturation study's
    N x load x policy lattice, where each cell is a *different*
    ``server_scenario`` population — build their own scenario list and
    feed it here. Results come back in input order whatever backend
    executed them; every backend yields cell lists identical to
    :class:`~repro.exec.SerialBackend` (modulo ``wall_s``).
    """
    return list(
        stream_cells(
            scenarios,
            metrics,
            workers=workers,
            backend=backend,
            checkpoint=checkpoint,
            chunk_size=chunk_size,
        )
    )
