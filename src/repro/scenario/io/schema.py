"""Typed schema machinery for scenario config files.

The loader (:mod:`repro.scenario.io.loader`) turns YAML/JSON mappings
into :class:`~repro.scenario.spec.Scenario` values; this module is the
validation layer underneath it. The contract every error obeys: a
:class:`ConfigError` names the exact dotted path of the offending
value (``tasks[3].behavior.cpu_seconds``), what was found, and what
would have been accepted — a config typo should cost one read of the
message, not a stack-trace dig.

Two sources of truth:

- :class:`FieldSpec` tables declare each block's fields with type,
  default, nullability and range — :data:`SCENARIO_FIELDS` covers the
  scalar :class:`Scenario` fields, :data:`STREAM_FIELDS` the generated
  ``streams`` blocks, and so on.
- :func:`fields_of_dataclass` derives a table directly from a frozen
  spec dataclass (behaviours, drivers, events), so the schema can
  never drift from the dataclasses the runner actually consumes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = [
    "ConfigError",
    "FieldSpec",
    "fields_of_dataclass",
    "check_mapping",
    "check_sequence",
    "validate_block",
    "SCENARIO_FIELDS",
    "STREAM_FIELDS",
    "CLASS_FIELDS",
    "WEIGHT_CHURN_FIELDS",
    "FLOW_FIELDS",
    "LINK_FIELDS",
]


class ConfigError(ValueError):
    """A config-file validation failure, anchored at a dotted path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.detail = message
        super().__init__(f"{path}: {message}" if path else message)


def _type_name(value: object) -> str:
    return type(value).__name__


# bool subclasses int, so plain isinstance(int/float) checks would let
# `cpus: true` through; every numeric check below excludes bool first
def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_float(value: object) -> bool:
    return _is_int(value) or (
        isinstance(value, float) and not isinstance(value, bool)
    )


@dataclass(frozen=True)
class FieldSpec:
    """One typed field of a config block.

    ``kind`` is one of ``str`` / ``int`` / ``float`` / ``bool`` (ints
    are accepted where floats are expected, as YAML writes ``2`` for
    ``2.0``). ``required`` fields have no default; ``nullable`` fields
    additionally accept an explicit ``null``. ``gt``/``ge`` bound
    numeric values; ``choices`` restricts strings to an enumerated set.
    """

    name: str
    kind: str
    default: Any = None
    required: bool = False
    nullable: bool = False
    gt: float | None = None
    ge: float | None = None
    choices: tuple[str, ...] | None = None

    def check(self, value: object, path: str) -> Any:
        """Validate ``value`` for this field; return the final value."""
        if value is None:
            if self.nullable:
                return None
            raise ConfigError(path, f"must be a {self.kind}, got null")
        if self.kind == "str":
            if not isinstance(value, str):
                raise ConfigError(
                    path, f"must be a string, got {_type_name(value)}"
                )
        elif self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigError(
                    path, f"must be a boolean, got {_type_name(value)}"
                )
        elif self.kind == "int":
            if not _is_int(value):
                raise ConfigError(
                    path, f"must be an integer, got {_type_name(value)}"
                )
        elif self.kind == "float":
            if not _is_float(value):
                raise ConfigError(
                    path, f"must be a number, got {_type_name(value)}"
                )
            value = float(value)
        else:  # pragma: no cover - table construction error
            raise AssertionError(f"bad FieldSpec kind {self.kind!r}")
        if self.gt is not None and value <= self.gt:
            raise ConfigError(path, f"must be > {self.gt}, got {value}")
        if self.ge is not None and value < self.ge:
            raise ConfigError(path, f"must be >= {self.ge}, got {value}")
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                path,
                f"must be one of {', '.join(self.choices)}; got {value!r}",
            )
        return value


#: dataclass annotation string -> (FieldSpec kind, nullable); spec.py
#: uses `from __future__ import annotations`, so field types are the
#: literal annotation strings
_ANNOTATION_KINDS: dict[str, tuple[str, bool]] = {
    "str": ("str", False),
    "bool": ("bool", False),
    "int": ("int", False),
    "float": ("float", False),
    "int | None": ("int", True),
    "float | None": ("float", True),
}


def fields_of_dataclass(
    cls: type, skip: Sequence[str] = ()
) -> tuple[FieldSpec, ...]:
    """Derive a FieldSpec table from a frozen spec dataclass.

    Keeps the config schema in lockstep with the dataclasses the
    runner consumes: a field added to e.g. ``Compile`` is immediately
    loadable (and required/optional exactly as the dataclass says).
    Fields named in ``skip`` are handled by the caller (``behavior``
    on :class:`~repro.scenario.spec.TaskSpec`).
    """
    specs: list[FieldSpec] = []
    for f in dataclasses.fields(cls):
        if f.name in skip:
            continue
        try:
            kind, nullable = _ANNOTATION_KINDS[f.type]
        except KeyError:  # pragma: no cover - table construction error
            raise AssertionError(
                f"{cls.__name__}.{f.name}: unmapped annotation {f.type!r}"
            ) from None
        required = f.default is dataclasses.MISSING
        specs.append(
            FieldSpec(
                f.name,
                kind,
                default=None if required else f.default,
                required=required,
                nullable=nullable,
            )
        )
    return tuple(specs)


def check_mapping(value: object, path: str) -> Mapping[str, Any]:
    """Require a string-keyed mapping at ``path``."""
    if not isinstance(value, Mapping):
        raise ConfigError(
            path, f"must be a mapping, got {_type_name(value)}"
        )
    for key in value:
        if not isinstance(key, str):
            raise ConfigError(path, f"keys must be strings, got {key!r}")
    return value


def check_sequence(value: object, path: str) -> Sequence[Any]:
    """Require a list at ``path`` (strings/mappings are not lists)."""
    if isinstance(value, (str, bytes, Mapping)) or not isinstance(
        value, Sequence
    ):
        raise ConfigError(path, f"must be a list, got {_type_name(value)}")
    return value


def validate_block(
    data: Mapping[str, Any],
    fields: Sequence[FieldSpec],
    path: str,
    extra_keys: Sequence[str] = (),
) -> dict[str, Any]:
    """Validate one config block against a FieldSpec table.

    Returns ``{field name: validated value}`` with defaults filled in.
    Keys outside the table (and ``extra_keys``, which the caller
    handles itself) are rejected by name, listing what is accepted.
    """
    known = {f.name for f in fields} | set(extra_keys)
    for key in data:
        if key not in known:
            accepted = ", ".join(sorted(known))
            raise ConfigError(
                f"{path}.{key}" if path else key,
                f"unknown key; accepted: {accepted}",
            )
    out: dict[str, Any] = {}
    for f in fields:
        key_path = f"{path}.{f.name}" if path else f.name
        if f.name not in data:
            if f.required:
                raise ConfigError(key_path, "required key is missing")
            out[f.name] = f.default
            continue
        out[f.name] = f.check(data[f.name], key_path)
    return out


#: the scalar Scenario fields a config file may set directly. tasks/
#: groups/streams/drivers/events and the mapping-valued fields
#: (scheduler_params, audit_params) are structured blocks handled by
#: the loader; probes are callables and deliberately not configurable.
SCENARIO_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("name", "str", required=True),
    FieldSpec("scheduler", "str", default="sfs"),
    FieldSpec("cpus", "int", default=2, ge=1),
    FieldSpec("quantum", "float", default=0.2, gt=0.0),
    FieldSpec("cost_model", "str", default="zero"),
    FieldSpec("duration", "float", default=None, nullable=True, gt=0.0),
    FieldSpec("quantum_jitter", "float", default=0.0, ge=0.0),
    FieldSpec("jitter_seed", "int", default=0),
    FieldSpec("sample_service", "bool", default=True),
    FieldSpec("service_sample_interval", "float", default=0.0, ge=0.0),
    FieldSpec("record_events", "bool", default=True),
    FieldSpec("preempt_on_wake", "bool", default=True),
    FieldSpec("max_time", "float", default=3600.0, gt=0.0),
    FieldSpec("audit", "bool", default=False),
)

#: one generated-population block under ``streams:``
STREAM_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("n", "int", required=True, ge=1),
    FieldSpec("seed", "int", default=42),
    FieldSpec("prefix", "str", default=""),
    FieldSpec("start", "float", default=0.0, ge=0.0),
    FieldSpec("drain_factor", "float", default=None, nullable=True, ge=1.0),
)

#: one ``(name, weight, share)`` row under a stream's ``classes:``
CLASS_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("name", "str", required=True),
    FieldSpec("weight", "float", required=True, gt=0.0),
    FieldSpec("share", "float", required=True, ge=0.0),
)

#: the ``weight-churn`` event-generator block (expands to SetWeight
#: events over every task matching ``prefix``)
WEIGHT_CHURN_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("prefix", "str", required=True),
    FieldSpec("seed", "int", default=0),
    FieldSpec("start", "float", required=True, ge=0.0),
    FieldSpec("every", "float", required=True, gt=0.0),
    FieldSpec("until", "float", required=True, gt=0.0),
)

#: one flow under the ``flows:`` block (packet fair-queueing domain);
#: the ``arrival``/``size``/``resources`` sub-blocks are handled by the
#: loader (registry-dispatched / resource-vector mappings)
FLOW_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("name", "str", required=True),
    FieldSpec("weight", "float", default=1.0, gt=0.0),
    FieldSpec("packets", "int", default=100, ge=1),
    FieldSpec("at", "float", default=0.0, ge=0.0),
    FieldSpec("seed", "int", default=0),
)

#: the ``link:`` block a ``flows:`` population transmits over; its
#: ``channels`` become the scenario's ``cpus``, and ``drain_factor``
#: (when set) derives ``duration`` from the materialized horizon
LINK_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("bytes_per_sec", "float", required=True, gt=0.0),
    FieldSpec("channels", "int", default=1, ge=1),
    FieldSpec("drain_factor", "float", default=None, nullable=True, ge=1.0),
)
