"""Scenario config I/O: schema-validated YAML/JSON <-> Scenario/Sweep.

See :mod:`repro.scenario.io.loader` for the config format and
:mod:`repro.scenario.io.schema` for the validation machinery.
"""

from repro.scenario.io.loader import (
    CONFIG_SUFFIXES,
    config_from_dict,
    dump_scenario,
    dumps_scenario,
    load_config,
    load_scenario,
    load_sweep,
    loads_config,
    scenario_from_dict,
    scenario_to_dict,
    sweep_from_dict,
)
from repro.scenario.io.schema import ConfigError, FieldSpec

__all__ = [
    "CONFIG_SUFFIXES",
    "ConfigError",
    "FieldSpec",
    "config_from_dict",
    "dump_scenario",
    "dumps_scenario",
    "load_config",
    "load_scenario",
    "load_sweep",
    "loads_config",
    "scenario_from_dict",
    "scenario_to_dict",
    "sweep_from_dict",
]
