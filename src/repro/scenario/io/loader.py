"""Load scenarios and sweeps from YAML/JSON config files.

The inverse pair at the heart of "scenarios as data":

- :func:`load_config` / :func:`loads_config` turn a config file (or
  text) into a :class:`~repro.scenario.spec.Scenario` or
  :class:`~repro.scenario.sweep.Sweep` — validated field by field, so
  every failure is a :class:`~repro.scenario.io.schema.ConfigError`
  naming the exact dotted path;
- :func:`scenario_to_dict` / :func:`dump_scenario` serialize a
  scenario back to plain data, losslessly: loading the dump yields an
  equal ``Scenario`` (and therefore a bit-identical simulation).

A config is a mapping with an optional ``kind`` (``scenario``, the
default, or ``sweep``). A scenario config sets the scalar
:class:`Scenario` fields directly plus five structured blocks::

    name: noisy-neighbour
    scheduler: sfs
    cpus: 4
    duration: 30.0
    metrics: [shares, jains]
    tasks:                       # explicit tasks
      - {name: victim, weight: 1.0, behavior: {kind: interactive}}
    groups:                      # count identical tasks, prefix-1..N
      - {count: 8, prefix: batch, behavior: {kind: inf}}
    streams:                     # generated open-arrival populations
      - n: 200
        seed: 7
        arrival: {kind: poisson, rate: 40.0}
        demand: {kind: exponential, mean: 0.05}
        classes: [{name: req, weight: 1.0, share: 1.0}]
        drain_factor: 1.5        # may derive duration (see below)
    link:                        # flow domain: packets over a link
      {bytes_per_sec: 1.25e6, channels: 1, drain_factor: 1.5}
    flows:                       # requires `link`; channels set cpus
      - name: video
        weight: 4.0
        packets: 500
        arrival: {kind: poisson, rate: 200.0}   # omit = backlogged
        size: {kind: constant-mtu, mtu: 1500}
        resources: {cpu: 0.6, bandwidth: 0.8}
    drivers:
      - {kind: short-jobs, name: T_short, job_cpu: 0.3}
    events:
      - {kind: set-weight, task: victim, weight: 4.0, at: 10.0}
      - {kind: kill, task: batch-1, at: 20.0}
      - {kind: weight-churn, prefix: batch, weights: [1.0, 4.0],
         seed: 3, start: 1.0, every: 0.5, until: 9.0}

``behavior``/``arrival``/``demand`` blocks are kind-dispatched:
behaviours resolve to the spec dataclasses of
:mod:`repro.scenario.spec`, arrivals and demands to the registries of
:mod:`repro.scenario.arrivals` / :mod:`repro.scenario.demands` (so
downstream registrations are loadable by name with no loader change).
When ``duration`` is omitted it derives from the streams: the largest
``last_arrival * drain_factor`` over streams that set ``drain_factor``
(matching :func:`~repro.scenario.server.server_scenario`); with no
such stream it stays ``None``, which the spec layer accepts only for
self-terminating driver populations.

A sweep config wraps a scenario block and up to three axes::

    kind: sweep
    base: { ...scenario block... }
    schedulers: [sfs, sfq, stride]
    cpus: [1, 2, 4]
    quanta: [0.05, 0.2]
    metrics: [shares, jains]

Probes hold callables and are deliberately not expressible as config
data; :func:`scenario_to_dict` refuses scenarios that carry them.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Any, Mapping, Sequence

try:
    import yaml
except ImportError:  # pragma: no cover - PyYAML is in the dev image
    yaml = None

from repro.scenario.arrivals import make_arrival
from repro.scenario.demands import make_demand
from repro.scenario.io.schema import (
    CLASS_FIELDS,
    FLOW_FIELDS,
    LINK_FIELDS,
    SCENARIO_FIELDS,
    STREAM_FIELDS,
    WEIGHT_CHURN_FIELDS,
    ConfigError,
    FieldSpec,
    check_mapping,
    check_sequence,
    fields_of_dataclass,
    validate_block,
)
from repro.scenario.population import generated_tasks
from repro.scenario.spec import (
    Compile,
    Compute,
    Disksim,
    Inf,
    InteractiveLoop,
    Kill,
    LatCtxRing,
    Mpeg,
    Scenario,
    SetWeight,
    ShortJobs,
    TaskSpec,
)
from repro.scenario.sweep import Sweep

__all__ = [
    "config_from_dict",
    "load_config",
    "loads_config",
    "load_scenario",
    "load_sweep",
    "scenario_from_dict",
    "sweep_from_dict",
    "scenario_to_dict",
    "dump_scenario",
    "dumps_scenario",
    "CONFIG_SUFFIXES",
]

#: file suffixes the loader accepts, mapped to their parser
CONFIG_SUFFIXES: tuple[str, ...] = (".yaml", ".yml", ".json")

#: behaviour kind name <-> spec dataclass
BEHAVIOR_KINDS: dict[str, type] = {
    "inf": Inf,
    "compute": Compute,
    "interactive": InteractiveLoop,
    "mpeg": Mpeg,
    "compile": Compile,
    "disksim": Disksim,
}
_BEHAVIOR_NAMES = {cls: kind for kind, cls in BEHAVIOR_KINDS.items()}

#: driver kind name <-> spec dataclass
DRIVER_KINDS: dict[str, type] = {
    "short-jobs": ShortJobs,
    "lat-ctx": LatCtxRing,
}
_DRIVER_NAMES = {cls: kind for kind, cls in DRIVER_KINDS.items()}

#: event kind name <-> spec dataclass (weight-churn is a generator
#: block, expanded to SetWeight events at load time)
EVENT_KINDS: dict[str, type] = {
    "set-weight": SetWeight,
    "kill": Kill,
}
_EVENT_NAMES = {cls: kind for kind, cls in EVENT_KINDS.items()}

# range constraints the annotation-derived table cannot express;
# behavior and resources are structured blocks the loader handles
_TASK_RANGES: dict[str, dict[str, float]] = {
    "weight": {"gt": 0.0},
    "at": {"ge": 0.0},
    "footprint_kb": {"ge": 0.0},
}
TASK_FIELDS = tuple(
    dataclasses.replace(spec, **_TASK_RANGES.get(spec.name, {}))
    for spec in fields_of_dataclass(TaskSpec, skip=("behavior", "resources"))
)

GROUP_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("count", "int", required=True, ge=1),
    FieldSpec("weight", "float", default=1.0, gt=0.0),
    FieldSpec("prefix", "str", default="T"),
    FieldSpec("at", "float", default=0.0, ge=0.0),
)


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _kind_of(
    block: Mapping[str, Any], kinds: Mapping[str, Any], path: str, what: str
) -> str:
    kind = block.get("kind")
    if not isinstance(kind, str) or kind not in kinds:
        known = ", ".join(sorted(kinds))
        raise ConfigError(
            _join(path, "kind"), f"must name a {what}: {known}"
        )
    return kind


def _build_packet_flow(block: Mapping[str, Any], path: str) -> Any:
    """Build a materialized ``packet-flow`` behaviour spec.

    Unlike the dataclass-derived kinds this one carries two parallel
    float arrays (enqueue times, packet sizes), so it gets a custom
    build/dump pair instead of a FieldSpec table.
    """
    # lazy: repro.flows imports this package, so resolving its specs at
    # module level would race a partially initialized repro.flows
    from repro.flows.spec import PacketFlow

    accepted = ("kind", "bytes_per_sec", "arrivals", "sizes")
    for key in block:
        if key not in accepted:
            raise ConfigError(
                _join(path, key),
                f"unknown key; accepted: {', '.join(sorted(accepted))}",
            )
    if "bytes_per_sec" not in block:
        raise ConfigError(
            _join(path, "bytes_per_sec"), "required key is missing"
        )
    rate = FieldSpec("bytes_per_sec", "float", gt=0.0).check(
        block["bytes_per_sec"], _join(path, "bytes_per_sec")
    )
    arrays: dict[str, tuple[float, ...]] = {}
    for key, spec in (
        ("arrivals", FieldSpec("arrivals", "float", ge=0.0)),
        ("sizes", FieldSpec("sizes", "float", gt=0.0)),
    ):
        if key not in block:
            raise ConfigError(_join(path, key), "required key is missing")
        key_path = _join(path, key)
        arrays[key] = tuple(
            spec.check(item, f"{key_path}[{i}]")
            for i, item in enumerate(check_sequence(block[key], key_path))
        )
    try:
        return PacketFlow(
            arrivals=arrays["arrivals"],
            sizes=arrays["sizes"],
            bytes_per_sec=rate,
        )
    except ValueError as exc:
        raise ConfigError(path, str(exc)) from None


def _build_behavior(value: object, path: str) -> Any:
    block = check_mapping(value, path)
    kinds: dict[str, Any] = dict(BEHAVIOR_KINDS)
    kinds["packet-flow"] = None  # custom build below
    kind = _kind_of(block, kinds, path, "behaviour kind")
    if kind == "packet-flow":
        return _build_packet_flow(block, path)
    cls = BEHAVIOR_KINDS[kind]
    fields = validate_block(
        block, fields_of_dataclass(cls), path, extra_keys=("kind",)
    )
    return cls(**fields)


def _build_resources(value: object, path: str) -> dict[str, float]:
    """Validate a per-task resource-demand vector block."""
    from repro.flows.resources import RESOURCES  # lazy, see above

    block = check_mapping(value, path)
    out: dict[str, float] = {}
    for key, item in block.items():
        if key not in RESOURCES:
            raise ConfigError(
                _join(path, key),
                f"unknown resource; accepted: {', '.join(RESOURCES)}",
            )
        out[key] = FieldSpec(key, "float", ge=0.0).check(
            item, _join(path, key)
        )
    return out


def _build_tasks(value: object, path: str) -> list[TaskSpec]:
    out: list[TaskSpec] = []
    for i, item in enumerate(check_sequence(value, path)):
        item_path = f"{path}[{i}]"
        block = check_mapping(item, item_path)
        fields = validate_block(
            block, TASK_FIELDS, item_path, extra_keys=("behavior", "resources")
        )
        if "behavior" in block:
            fields["behavior"] = _build_behavior(
                block["behavior"], _join(item_path, "behavior")
            )
        if "resources" in block:
            fields["resources"] = _build_resources(
                block["resources"], _join(item_path, "resources")
            )
        out.append(TaskSpec(**fields))
    return out


def _build_groups(value: object, path: str) -> list[TaskSpec]:
    out: list[TaskSpec] = []
    for i, item in enumerate(check_sequence(value, path)):
        item_path = f"{path}[{i}]"
        block = check_mapping(item, item_path)
        fields = validate_block(
            block, GROUP_FIELDS, item_path, extra_keys=("behavior",)
        )
        behavior = Inf()
        if "behavior" in block:
            behavior = _build_behavior(
                block["behavior"], _join(item_path, "behavior")
            )
        out.extend(
            TaskSpec(
                name=f"{fields['prefix']}-{j + 1}",
                weight=fields["weight"],
                behavior=behavior,
                at=fields["at"],
            )
            for j in range(fields["count"])
        )
    return out


def _build_stream(
    value: object, path: str
) -> tuple[list[TaskSpec], float | None]:
    """One generated population; returns (tasks, derived duration)."""
    block = check_mapping(value, path)
    fields = validate_block(
        block,
        STREAM_FIELDS,
        path,
        extra_keys=("arrival", "demand", "classes"),
    )
    for key in ("arrival", "demand", "classes"):
        if key not in block:
            raise ConfigError(_join(path, key), "required key is missing")

    arrival_block = check_mapping(block["arrival"], _join(path, "arrival"))
    arrival_kind = _kind_of(
        arrival_block,
        dict.fromkeys(_arrival_names()),
        _join(path, "arrival"),
        "registered arrival process",
    )
    demand_block = check_mapping(block["demand"], _join(path, "demand"))
    demand_kind = _kind_of(
        demand_block,
        dict.fromkeys(_demand_names()),
        _join(path, "demand"),
        "registered demand distribution",
    )

    classes: list[tuple[str, float, float]] = []
    class_items = check_sequence(block["classes"], _join(path, "classes"))
    for i, item in enumerate(class_items):
        row_path = f"{path}.classes[{i}]"
        row = validate_block(
            check_mapping(item, row_path), CLASS_FIELDS, row_path
        )
        classes.append((row["name"], row["weight"], row["share"]))

    params = {k: v for k, v in arrival_block.items() if k != "kind"}
    try:
        arrival = make_arrival(arrival_kind, **params)
    except (TypeError, ValueError) as exc:
        raise ConfigError(_join(path, "arrival"), str(exc)) from None
    params = {k: v for k, v in demand_block.items() if k != "kind"}
    try:
        demand = make_demand(demand_kind, **params)
    except (TypeError, ValueError) as exc:
        raise ConfigError(_join(path, "demand"), str(exc)) from None

    try:
        tasks = generated_tasks(
            fields["n"],
            arrival=arrival,
            demand=demand,
            weight_classes=classes,
            seed=fields["seed"],
            prefix=fields["prefix"],
            start=fields["start"],
        )
    except (TypeError, ValueError) as exc:
        raise ConfigError(path, str(exc)) from None
    derived = None
    if fields["drain_factor"] is not None:
        derived = tasks[-1].at * fields["drain_factor"]
    return tasks, derived


def _expand_weight_churn(
    block: Mapping[str, Any], task_names: Sequence[str], path: str
) -> list[SetWeight]:
    """Expand a ``weight-churn`` block into scheduled SetWeight events.

    From ``start``, every ``every`` seconds until (exclusive)
    ``until``, a seeded PRNG picks one task among those whose name
    starts with ``prefix`` and one weight from ``weights`` — the
    sustained §3.1 weight-change storm, as data.
    """
    fields = validate_block(
        block, WEIGHT_CHURN_FIELDS, path, extra_keys=("kind", "weights")
    )
    if "weights" not in block:
        raise ConfigError(_join(path, "weights"), "required key is missing")
    weights_path = _join(path, "weights")
    weights = [
        FieldSpec("weights", "float", gt=0.0).check(w, f"{weights_path}[{i}]")
        for i, w in enumerate(check_sequence(block["weights"], weights_path))
    ]
    if not weights:
        raise ConfigError(weights_path, "needs at least one weight")
    if fields["until"] <= fields["start"]:
        raise ConfigError(
            _join(path, "until"), f"must be > start ({fields['start']})"
        )
    matching = [n for n in task_names if n.startswith(fields["prefix"])]
    if not matching:
        raise ConfigError(
            _join(path, "prefix"),
            f"no task name starts with {fields['prefix']!r}",
        )
    rng = random.Random(fields["seed"])
    events: list[SetWeight] = []
    k = 0
    while True:
        at = fields["start"] + k * fields["every"]
        if at >= fields["until"]:
            break
        events.append(SetWeight(rng.choice(matching), rng.choice(weights), at))
        k += 1
    return events


def _build_drivers(value: object, path: str) -> list[Any]:
    out = []
    for i, item in enumerate(check_sequence(value, path)):
        item_path = f"{path}[{i}]"
        block = check_mapping(item, item_path)
        kind = _kind_of(block, DRIVER_KINDS, item_path, "driver kind")
        cls = DRIVER_KINDS[kind]
        fields = validate_block(
            block, fields_of_dataclass(cls), item_path, extra_keys=("kind",)
        )
        out.append(cls(**fields))
    return out


def _build_events(
    value: object, task_names: Sequence[str], path: str
) -> list[Any]:
    out = []
    for i, item in enumerate(check_sequence(value, path)):
        item_path = f"{path}[{i}]"
        block = check_mapping(item, item_path)
        kinds = dict(EVENT_KINDS)
        kinds["weight-churn"] = None
        kind = _kind_of(block, kinds, item_path, "event kind")
        if kind == "weight-churn":
            out.extend(_expand_weight_churn(block, task_names, item_path))
            continue
        cls = EVENT_KINDS[kind]
        fields = validate_block(
            block, fields_of_dataclass(cls), item_path, extra_keys=("kind",)
        )
        out.append(cls(**fields))
    return out


def _plain_params(value: object, path: str) -> dict[str, Any]:
    """A params mapping restricted to YAML-safe plain values."""
    block = check_mapping(value, path)
    out: dict[str, Any] = {}
    for key, item in block.items():
        item_path = _join(path, key)
        if isinstance(item, (list, tuple)):
            bad = [v for v in item if not _is_scalar(v)]
            if bad:
                raise ConfigError(
                    item_path, f"list values must be scalars, got {bad[0]!r}"
                )
            out[key] = list(item)
        elif _is_scalar(item):
            out[key] = item
        else:
            raise ConfigError(
                item_path,
                f"must be a scalar or list of scalars, "
                f"got {type(item).__name__}",
            )
    return out


def _is_scalar(value: object) -> bool:
    return value is None or isinstance(value, (str, bool, int, float))


def _arrival_names() -> list[str]:
    from repro.scenario.arrivals import arrival_names

    return arrival_names()


def _demand_names() -> list[str]:
    from repro.scenario.demands import demand_names

    return demand_names()


def _build_flow_specs(value: object, path: str) -> list[Any]:
    """Build the declarative :class:`~repro.flows.spec.FlowSpec` rows."""
    from repro.flows.spec import FlowSpec  # lazy, see _build_packet_flow

    out: list[FlowSpec] = []
    for i, item in enumerate(check_sequence(value, path)):
        item_path = f"{path}[{i}]"
        block = check_mapping(item, item_path)
        fields = validate_block(
            block,
            FLOW_FIELDS,
            item_path,
            extra_keys=("arrival", "size", "resources"),
        )
        arrival = None
        arrival_params: dict[str, Any] = {}
        if "arrival" in block:
            arrival_path = _join(item_path, "arrival")
            arrival_block = check_mapping(block["arrival"], arrival_path)
            arrival = _kind_of(
                arrival_block,
                dict.fromkeys(_arrival_names()),
                arrival_path,
                "registered arrival process",
            )
            arrival_params = {
                k: v for k, v in arrival_block.items() if k != "kind"
            }
        size = "constant-mtu"
        size_params: dict[str, Any] = {}
        if "size" in block:
            size_path = _join(item_path, "size")
            size_block = check_mapping(block["size"], size_path)
            size = _kind_of(
                size_block,
                dict.fromkeys(_demand_names()),
                size_path,
                "registered demand distribution",
            )
            size_params = {k: v for k, v in size_block.items() if k != "kind"}
        resources: dict[str, float] = {}
        if "resources" in block:
            resources = _build_resources(
                block["resources"], _join(item_path, "resources")
            )
        try:
            out.append(
                FlowSpec(
                    name=fields["name"],
                    weight=fields["weight"],
                    packets=fields["packets"],
                    at=fields["at"],
                    arrival=arrival,
                    arrival_params=arrival_params,
                    size=size,
                    size_params=size_params,
                    resources=resources,
                    seed=fields["seed"],
                )
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(item_path, str(exc)) from None
    if not out:
        raise ConfigError(path, "needs at least one flow")
    return out


def _build_flows(
    flows_value: object, link_value: object, path: str
) -> tuple[list[TaskSpec], int, float, float | None]:
    """Materialize a ``flows``/``link`` pair into explicit tasks.

    Returns ``(tasks, channels, mean_packet_time, derived duration)``
    — the link's channels become the scenario's cpus, and the mean
    packet transmission time is the natural quantum when the config
    does not set one.
    """
    from repro.flows.scenario import materialize_flows  # lazy, see above
    from repro.flows.spec import LinkSpec

    link_block = check_mapping(link_value, _join(path, "link"))
    link_fields = validate_block(link_block, LINK_FIELDS, _join(path, "link"))
    try:
        link = LinkSpec(
            bytes_per_sec=link_fields["bytes_per_sec"],
            channels=link_fields["channels"],
        )
    except ValueError as exc:
        raise ConfigError(_join(path, "link"), str(exc)) from None
    flows = _build_flow_specs(flows_value, _join(path, "flows"))
    try:
        tasks, mean_size, horizon = materialize_flows(flows, link)
    except (TypeError, ValueError) as exc:
        raise ConfigError(_join(path, "flows"), str(exc)) from None
    derived = None
    if link_fields["drain_factor"] is not None:
        derived = link_fields["drain_factor"] * horizon
    return tasks, link.channels, mean_size / link.bytes_per_sec, derived


_SCENARIO_BLOCKS = (
    "kind",
    "scheduler_params",
    "audit_params",
    "metrics",
    "tasks",
    "groups",
    "streams",
    "flows",
    "link",
    "drivers",
    "events",
)


def scenario_from_dict(
    data: Mapping[str, Any], path: str = ""
) -> Scenario:
    """Build a validated :class:`Scenario` from plain config data."""
    block = check_mapping(data, path)
    kind = block.get("kind", "scenario")
    if kind != "scenario":
        raise ConfigError(
            _join(path, "kind"), f"expected 'scenario', got {kind!r}"
        )
    fields = validate_block(
        block, SCENARIO_FIELDS, path, extra_keys=_SCENARIO_BLOCKS
    )

    # Registry names fail at load time: a config file is an end-user
    # artifact, and any downstream scheduler/cost-model registration
    # has necessarily happened (module import) before its configs load.
    from repro.schedulers.registry import SCHEDULERS
    from repro.sim.costs import COST_MODELS

    if fields["scheduler"] not in SCHEDULERS:
        known = ", ".join(sorted(SCHEDULERS))
        raise ConfigError(
            _join(path, "scheduler"),
            f"unknown scheduler {fields['scheduler']!r}; known: {known}",
        )
    if fields["cost_model"] not in COST_MODELS:
        known = ", ".join(sorted(COST_MODELS))
        raise ConfigError(
            _join(path, "cost_model"),
            f"unknown cost model {fields['cost_model']!r}; known: {known}",
        )

    tasks: list[TaskSpec] = []
    if "tasks" in block:
        tasks.extend(_build_tasks(block["tasks"], _join(path, "tasks")))
    if "groups" in block:
        tasks.extend(_build_groups(block["groups"], _join(path, "groups")))
    derived_durations: list[float] = []
    if "streams" in block:
        streams_path = _join(path, "streams")
        for i, item in enumerate(check_sequence(block["streams"], streams_path)):
            stream_tasks, derived = _build_stream(item, f"{streams_path}[{i}]")
            tasks.extend(stream_tasks)
            if derived is not None:
                derived_durations.append(derived)

    cpus = fields["cpus"]
    quantum = fields["quantum"]
    if ("flows" in block) != ("link" in block):
        missing = "link" if "flows" in block else "flows"
        present = "flows" if "flows" in block else "link"
        raise ConfigError(
            _join(path, missing),
            f"required key is missing ({present!r} needs a {missing!r} block)",
        )
    if "flows" in block:
        if "cpus" in block:
            raise ConfigError(
                _join(path, "cpus"),
                "conflicts with 'link' (link.channels sets cpus)",
            )
        flow_tasks, cpus, mean_packet_time, derived = _build_flows(
            block["flows"], block["link"], path
        )
        tasks.extend(flow_tasks)
        if "quantum" not in block:
            quantum = mean_packet_time
        if derived is not None:
            derived_durations.append(derived)

    duration = fields["duration"]
    if duration is None and derived_durations:
        duration = max(derived_durations)

    drivers = []
    if "drivers" in block:
        drivers = _build_drivers(block["drivers"], _join(path, "drivers"))
    events = []
    if "events" in block:
        events = _build_events(
            block["events"], [t.name for t in tasks], _join(path, "events")
        )

    metrics: tuple[str, ...] = ()
    if "metrics" in block:
        metrics_path = _join(path, "metrics")
        items = check_sequence(block["metrics"], metrics_path)
        for i, item in enumerate(items):
            if not isinstance(item, str):
                raise ConfigError(
                    f"{metrics_path}[{i}]",
                    f"must be a metric name, got {type(item).__name__}",
                )
        metrics = tuple(items)

    scheduler_params: dict[str, Any] = {}
    if "scheduler_params" in block:
        scheduler_params = _plain_params(
            block["scheduler_params"], _join(path, "scheduler_params")
        )
    audit_params: dict[str, Any] = {}
    if "audit_params" in block:
        audit_params = _plain_params(
            block["audit_params"], _join(path, "audit_params")
        )

    try:
        return Scenario(
            name=fields["name"],
            scheduler=fields["scheduler"],
            scheduler_params=scheduler_params,
            cpus=cpus,
            quantum=quantum,
            cost_model=fields["cost_model"],
            duration=duration,
            tasks=tuple(tasks),
            drivers=tuple(drivers),
            events=tuple(events),
            metrics=metrics,
            quantum_jitter=fields["quantum_jitter"],
            jitter_seed=fields["jitter_seed"],
            sample_service=fields["sample_service"],
            service_sample_interval=fields["service_sample_interval"],
            record_events=fields["record_events"],
            preempt_on_wake=fields["preempt_on_wake"],
            max_time=fields["max_time"],
            audit=fields["audit"],
            audit_params=audit_params,
        )
    except (TypeError, ValueError) as exc:
        raise ConfigError(path, str(exc)) from None


_SWEEP_KEYS = ("kind", "base", "schedulers", "cpus", "quanta", "metrics")


def sweep_from_dict(data: Mapping[str, Any], path: str = "") -> Sweep:
    """Build a validated :class:`Sweep` from plain config data."""
    block = check_mapping(data, path)
    for key in block:
        if key not in _SWEEP_KEYS:
            raise ConfigError(
                _join(path, key),
                f"unknown key; accepted: {', '.join(_SWEEP_KEYS)}",
            )
    if "base" not in block:
        raise ConfigError(_join(path, "base"), "required key is missing")
    base = scenario_from_dict(block["base"], _join(path, "base"))

    def str_axis(key: str) -> tuple[str, ...]:
        axis_path = _join(path, key)
        items = check_sequence(block[key], axis_path)
        for i, item in enumerate(items):
            if not isinstance(item, str):
                raise ConfigError(
                    f"{axis_path}[{i}]",
                    f"must be a string, got {type(item).__name__}",
                )
        return tuple(items)

    def num_axis(key: str, spec: FieldSpec) -> tuple[Any, ...]:
        axis_path = _join(path, key)
        items = check_sequence(block[key], axis_path)
        return tuple(
            spec.check(item, f"{axis_path}[{i}]")
            for i, item in enumerate(items)
        )

    kwargs: dict[str, Any] = {"base": base}
    if "schedulers" in block:
        kwargs["schedulers"] = str_axis("schedulers")
    if "cpus" in block:
        kwargs["cpus"] = num_axis("cpus", FieldSpec("cpus", "int", ge=1))
    if "quanta" in block:
        kwargs["quanta"] = num_axis(
            "quanta", FieldSpec("quanta", "float", gt=0.0)
        )
    if "metrics" in block:
        kwargs["metrics"] = str_axis("metrics")
    try:
        return Sweep(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigError(path, str(exc)) from None


def config_from_dict(data: Mapping[str, Any]) -> Scenario | Sweep:
    """Dispatch plain config data on its ``kind``."""
    block = check_mapping(data, "")
    kind = block.get("kind", "scenario")
    if kind == "scenario":
        return scenario_from_dict(block)
    if kind == "sweep":
        return sweep_from_dict(block)
    raise ConfigError("kind", f"must be 'scenario' or 'sweep', got {kind!r}")


def _parse_text(text: str, fmt: str) -> Mapping[str, Any]:
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError("", f"invalid JSON: {exc}") from None
    elif fmt == "yaml":
        if yaml is None:  # pragma: no cover - PyYAML is in the dev image
            raise ConfigError(
                "", "PyYAML is not installed; use a .json config"
            )
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigError("", f"invalid YAML: {exc}") from None
    else:
        raise ConfigError("", f"unknown config format {fmt!r}")
    return check_mapping(data, "")


def loads_config(text: str, fmt: str = "yaml") -> Scenario | Sweep:
    """Parse config text (``fmt``: ``yaml`` or ``json``) and build it."""
    return config_from_dict(_parse_text(text, fmt))


def _format_for(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix == ".json":
        return "json"
    if suffix in (".yaml", ".yml"):
        return "yaml"
    accepted = ", ".join(CONFIG_SUFFIXES)
    raise ConfigError(
        "", f"unrecognized config suffix {path.suffix!r}; accepted: {accepted}"
    )


def load_config(path: str | Path) -> Scenario | Sweep:
    """Load a scenario or sweep from a ``.yaml``/``.yml``/``.json`` file."""
    file = Path(path)
    fmt = _format_for(file)
    return loads_config(file.read_text(encoding="utf-8"), fmt)


def load_scenario(path: str | Path) -> Scenario:
    """Load a config file that must contain a single scenario."""
    loaded = load_config(path)
    if not isinstance(loaded, Scenario):
        raise ConfigError(
            "kind", f"{Path(path).name} is a sweep config, not a scenario"
        )
    return loaded


def load_sweep(path: str | Path) -> Sweep:
    """Load a config file that must contain a sweep."""
    loaded = load_config(path)
    if not isinstance(loaded, Sweep):
        raise ConfigError(
            "kind",
            f"{Path(path).name} is a scenario config; add `kind: sweep` "
            "and a `base:` block to sweep it",
        )
    return loaded


# ----------------------------------------------------------------------
# Scenario -> plain data (the lossless inverse)
# ----------------------------------------------------------------------


def _spec_to_dict(spec: Any, kind: str, fields: Sequence[FieldSpec]) -> dict:
    out: dict[str, Any] = {"kind": kind}
    for f in fields:
        value = getattr(spec, f.name)
        if f.required or value != f.default:
            out[f.name] = value
    return out


def _packet_flow_to_dict(behavior: Any) -> dict[str, Any]:
    return {
        "kind": "packet-flow",
        "bytes_per_sec": behavior.bytes_per_sec,
        "arrivals": list(behavior.arrivals),
        "sizes": list(behavior.sizes),
    }


def _task_to_dict(spec: TaskSpec) -> dict[str, Any]:
    from repro.flows.spec import PacketFlow  # lazy, see _build_packet_flow

    out: dict[str, Any] = {}
    for f in TASK_FIELDS:
        value = getattr(spec, f.name)
        if f.required or value != f.default:
            out[f.name] = value
    if isinstance(spec.behavior, PacketFlow):
        out["behavior"] = _packet_flow_to_dict(spec.behavior)
    elif spec.behavior != Inf():
        cls = type(spec.behavior)
        out["behavior"] = _spec_to_dict(
            spec.behavior, _BEHAVIOR_NAMES[cls], fields_of_dataclass(cls)
        )
    if spec.resources:
        out["resources"] = dict(spec.resources)
    return out


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Serialize a scenario to plain config data, losslessly.

    ``scenario_from_dict(scenario_to_dict(s)) == s`` for any scenario
    expressible as data: generated populations are emitted as explicit
    ``tasks`` (equal as Scenario values), scalar fields only when they
    differ from the default. Scenarios carrying probes — callables —
    are refused.
    """
    if scenario.probes:
        raise ConfigError(
            "probes", "probes hold callables and cannot be emitted as config"
        )
    out: dict[str, Any] = {"name": scenario.name}
    for f in SCENARIO_FIELDS:
        if f.name == "name":
            continue
        value = getattr(scenario, f.name)
        if value != f.default:
            out[f.name] = value
    if scenario.scheduler_params:
        out["scheduler_params"] = _plain_params(
            scenario.scheduler_params, "scheduler_params"
        )
    if scenario.metrics:
        out["metrics"] = list(scenario.metrics)
    if scenario.tasks:
        out["tasks"] = [_task_to_dict(t) for t in scenario.tasks]
    if scenario.drivers:
        out["drivers"] = [
            _spec_to_dict(d, _DRIVER_NAMES[type(d)], fields_of_dataclass(type(d)))
            for d in scenario.drivers
        ]
    if scenario.events:
        out["events"] = [
            _spec_to_dict(e, _EVENT_NAMES[type(e)], fields_of_dataclass(type(e)))
            for e in scenario.events
        ]
    if scenario.audit_params:
        out["audit_params"] = _plain_params(
            scenario.audit_params, "audit_params"
        )
    return out


def dumps_scenario(scenario: Scenario, fmt: str = "yaml") -> str:
    """Serialize a scenario to YAML (or JSON) config text."""
    data = scenario_to_dict(scenario)
    if fmt == "json":
        return json.dumps(data, indent=2) + "\n"
    if fmt != "yaml":
        raise ConfigError("", f"unknown config format {fmt!r}")
    if yaml is None:  # pragma: no cover - PyYAML is in the dev image
        raise ConfigError("", "PyYAML is not installed; dump as json instead")
    return yaml.safe_dump(data, sort_keys=False, default_flow_style=False)


def dump_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write a scenario to a config file (format from the suffix)."""
    file = Path(path)
    file.write_text(dumps_scenario(scenario, _format_for(file)), encoding="utf-8")
