"""Execute a declarative :class:`~repro.scenario.spec.Scenario`.

``run_scenario`` is the single pipeline every experiment, sweep and
workload goes through: build the machine from the spec, populate tasks
and drivers, schedule control events, interleave probes with the run,
settle accounting, and wrap everything in a
:class:`~repro.scenario.result.SimulationResult`.
"""

from __future__ import annotations

import random

from repro.scenario.result import SimulationResult, summarize
from repro.scenario.spec import (
    Compile,
    Compute,
    Disksim,
    Inf,
    InteractiveLoop,
    Kill,
    LatCtxRing,
    Mpeg,
    Scenario,
    SetWeight,
    ShortJobs,
)
from repro.schedulers.registry import make_scheduler
from repro.sim.costs import COST_MODELS
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import Behavior
from repro.workloads.cpu_bound import FiniteCompute, Infinite
from repro.workloads.disksim import DisksimBatch
from repro.workloads.gcc_build import CompileJob
from repro.workloads.interactive import Interactive
from repro.workloads.lmbench import TokenRing
from repro.workloads.mpeg import MpegDecoder
from repro.workloads.shortjobs import ShortJobFeeder

__all__ = ["run_scenario", "build_machine", "COST_MODELS"]


def _build_behavior(spec) -> Behavior:
    """Instantiate the workload behaviour a spec names."""
    if isinstance(spec, Inf):
        return Infinite()
    if isinstance(spec, Compute):
        return FiniteCompute(spec.cpu_seconds)
    if isinstance(spec, InteractiveLoop):
        rng = random.Random(spec.seed) if spec.seed is not None else None
        return Interactive(
            think_time=spec.think_time, burst=spec.burst, rng=rng
        )
    if isinstance(spec, Mpeg):
        return MpegDecoder(
            frame_cost=spec.frame_cost,
            target_fps=spec.target_fps,
            total_frames=spec.total_frames,
        )
    if isinstance(spec, Compile):
        return CompileJob(
            random.Random(spec.seed),
            burst_mean=spec.burst_mean,
            io_mean=spec.io_mean,
            total_cpu=spec.total_cpu,
        )
    if isinstance(spec, Disksim):
        rng = random.Random(spec.seed) if spec.seed is not None else None
        return DisksimBatch(
            checkpoint_every=spec.checkpoint_every,
            checkpoint_io=spec.checkpoint_io,
            rng=rng,
        )
    # Domain packages plug in behaviour specs without a scenario-layer
    # import cycle: repro.flows imports this module's package, so its
    # specs resolve lazily (any PacketFlow instance implies repro.flows
    # is importable — pickle restores it through the same module).
    from repro.flows.spec import PacketFlow
    from repro.flows.transmit import FlowTransmitter

    if isinstance(spec, PacketFlow):
        return FlowTransmitter(spec)
    raise TypeError(f"unknown behaviour spec {spec!r}")


def build_machine(
    scenario: Scenario,
) -> tuple[Machine, dict[str, Task], dict[str, object]]:
    """Construct the machine, tasks and drivers a scenario declares."""
    try:
        cost_model = COST_MODELS[scenario.cost_model]
    except KeyError:
        known = ", ".join(sorted(COST_MODELS))
        raise ValueError(
            f"unknown cost model {scenario.cost_model!r}; known: {known}"
        ) from None
    scheduler = make_scheduler(scenario.scheduler, **scenario.scheduler_params)
    machine = Machine(
        scheduler,
        cpus=scenario.cpus,
        quantum=scenario.quantum,
        cost_model=cost_model,
        sample_service=scenario.sample_service,
        service_sample_interval=scenario.service_sample_interval,
        # the auditor's bounded_lag check replays the event timeline
        # against the GMS fluid oracle, so auditing forces recording
        record_events=scenario.record_events or scenario.audit,
        preempt_on_wake=scenario.preempt_on_wake,
        quantum_jitter=scenario.quantum_jitter,
        jitter_seed=scenario.jitter_seed,
    )
    # Audit-forced recording only needs the event timeline; the
    # per-dispatch CPU occupancy intervals (Gantt data) stay gated on
    # the scenario's own record_events.
    machine.trace.record_runs = scenario.record_events
    tasks: dict[str, Task] = {}
    for spec in scenario.tasks:
        task = Task(
            _build_behavior(spec.behavior),
            weight=spec.weight,
            name=spec.name,
            footprint_kb=spec.footprint_kb,
            ts_priority=spec.ts_priority,
        )
        machine.add_task(task, at=spec.at)
        tasks[spec.name] = task
    # Declared multi-resource demand vectors ride along on the machine
    # so post-run accounting (and the auditor's resource-conservation
    # check) can see them without re-plumbing Task itself.
    vectors = {
        spec.name: dict(spec.resources)
        for spec in scenario.tasks
        if spec.resources
    }
    if vectors:
        machine.resource_vectors = vectors
    drivers: dict[str, object] = {}
    for driver in scenario.drivers:
        if isinstance(driver, ShortJobs):
            drivers[driver.name] = ShortJobFeeder(
                machine,
                weight=driver.weight,
                job_cpu=driver.job_cpu,
                first_arrival=driver.first_arrival,
                gap=driver.gap,
                name_prefix=driver.name,
            )
        elif isinstance(driver, LatCtxRing):
            drivers[driver.name] = TokenRing(
                machine,
                nprocs=driver.nprocs,
                passes=driver.passes,
                work_cost=driver.work_cost,
                footprint_kb=driver.footprint_kb,
                start_at=driver.start_at,
            )
        else:
            raise TypeError(f"unknown driver spec {driver!r}")
    for event in scenario.events:
        if isinstance(event, SetWeight):
            machine.set_weight_at(tasks[event.task], event.weight, event.at)
        elif isinstance(event, Kill):
            machine.kill_task_at(tasks[event.task], event.at)
        else:
            raise TypeError(f"unknown event spec {event!r}")
    return machine, tasks, drivers


def run_scenario(scenario: Scenario) -> SimulationResult:
    """Run a scenario to completion and collect its results."""
    machine, tasks, drivers = build_machine(scenario)
    auditor = None
    if scenario.audit:
        from repro.analysis.audit import Auditor

        params = dict(scenario.audit_params)
        checks = params.pop("checks", None)
        auditor = Auditor(machine, checks=checks, params=params).install()
    probes = sorted(
        enumerate(scenario.probes), key=lambda pair: (pair[1].at, pair[0])
    )
    values: dict[int, object] = {}
    for index, probe in probes:
        machine.run_until(probe.at)
        values[index] = probe.fn(machine, tasks)
    if scenario.duration is not None:
        machine.run_until(scenario.duration)
    else:
        # Step event-by-event so the run stops exactly when the last
        # driver completes — result.duration/capacity/shares then cover
        # the true measured window, with no idle padding.
        rings = [d for d in drivers.values() if isinstance(d, TokenRing)]
        while not all(r.done for r in rings):
            if machine.now >= scenario.max_time:
                raise RuntimeError(
                    "drivers did not finish within "
                    f"max_time={scenario.max_time}"
                )
            if not machine.engine.step():
                raise RuntimeError(
                    "drivers cannot finish: event queue drained"
                )
        machine.run_until(machine.now)  # settle service accounting
    result = SimulationResult(
        scenario,
        machine,
        tasks,
        drivers,
        [values[i] for i in range(len(scenario.probes))],
    )
    if auditor is not None:
        result.audit_report = auditor.finalize(machine.now)
    if scenario.metrics:
        result.metrics = summarize(result, scenario.metrics)
    return result
