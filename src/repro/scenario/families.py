"""Registry of scenario *families*: named preset builders.

A family is a seeded builder producing whole populations as data —
``server_scenario`` (high-N open-arrival CPU workloads) and
``flow_scenario`` (packet flows over a shared link) are the built-ins.
Families register themselves at import, mirroring the scheduler /
arrival / demand registries, so ``sfs-experiment list`` enumerates
every domain from one place and a new domain package shows up with no
CLI change.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["FAMILIES", "register_family", "family_names"]

#: family name -> (builder, one-line description)
FAMILIES: dict[str, tuple[Callable[..., object], str]] = {}


def register_family(
    name: str, description: str
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Register a scenario-family builder under ``name``.

    Returns the builder unchanged (decorator form), like the other
    registries; duplicate names are a programming error.
    """

    def decorator(builder: Callable[..., object]) -> Callable[..., object]:
        if name in FAMILIES:
            raise ValueError(f"scenario family {name!r} is already registered")
        FAMILIES[name] = (builder, description)
        return builder

    return decorator


def family_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(FAMILIES)
