"""The "server" scenario preset family: high-N open-arrival workloads.

The paper's evaluation (§4) uses small, hand-built populations — a few
``Inf`` loops, one short-job feeder, an lmbench ring. Capacity studies
in the spirit of Gunther's UNIX resource-manager work and multi-user
multiprocessor fairness models need the opposite: *thousands* of tasks
arriving as an open Poisson stream with heavy-tailed service demands
and mixed weight classes, the shape of a consolidated server's request
population.

:func:`server_scenario` builds exactly that as plain declarative data —
a :class:`~repro.scenario.spec.Scenario` whose task population is drawn
from a seeded PRNG, so the same (n, seed) pair is bit-for-bit
reproducible, picklable to sweep workers, and runnable under any
registered scheduler:

- **arrivals** are Poisson: exponential inter-arrival gaps at rate
  ``lambda = load * cpus / mean_service``, so ``load`` is the offered
  utilization of the machine;
- **service demands** are bounded Pareto (shape ``pareto_shape``, mean
  ``mean_service``, truncated at ``service_cap_factor * mean_service``)
  — heavy-tailed, like real request populations: most jobs are short,
  a few are enormous;
- **weights** are drawn from named classes (default: 70% "std" weight
  1, 20% "pro" weight 4, 10% "ent" weight 10), and tasks are named
  ``<class>-<index>`` so per-class aggregate shares fall out of
  ``result.group_service("pro-")``.

The family is the scaling proving ground for the hot-path work: run it
at N=5000 under the ``lmbench`` cost model and every accidentally-linear
scan in the simulator shows up as a wall-clock cliff
(``benchmarks/test_bench_scale.py`` tracks events/sec at
N ∈ {100, 1000, 5000}).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.scenario.arrivals import PoissonArrivals
from repro.scenario.demands import BoundedParetoDemand
from repro.scenario.families import register_family
from repro.scenario.population import generated_tasks
from repro.scenario.spec import Scenario

__all__ = [
    "SERVER_WEIGHT_CLASSES",
    "server_scenario",
    "class_shares",
    "busy_window_end",
]

#: default weight mix: (class name, weight, probability)
SERVER_WEIGHT_CLASSES: tuple[tuple[str, float, float], ...] = (
    ("std", 1.0, 0.70),
    ("pro", 4.0, 0.20),
    ("ent", 10.0, 0.10),
)


@register_family(
    "server", "high-N open-arrival CPU workloads (Poisson x Pareto)"
)
def server_scenario(
    n_tasks: int,
    cpus: int = 4,
    scheduler: str = "sfs",
    seed: int = 42,
    load: float = 0.85,
    mean_service: float = 0.05,
    pareto_shape: float = 1.5,
    service_cap_factor: float = 100.0,
    weight_classes: tuple[tuple[str, float, float], ...] = SERVER_WEIGHT_CLASSES,
    quantum: float = 0.05,
    cost_model: str = "zero",
    drain_factor: float = 1.5,
    sample_service: bool = True,
    service_sample_interval: float = 0.0,
    record_events: bool = False,
    metrics: tuple[str, ...] = (),
    scheduler_params: Mapping[str, Any] | None = None,
) -> Scenario:
    """Build one server-family scenario (pure data, deterministic).

    Parameters
    ----------
    n_tasks:
        Number of jobs in the open arrival stream (the family is
        designed for 100 .. ~5000).
    load:
        Offered utilization of the machine (arrival rate is
        ``load * cpus / mean_service``). Below 1.0 the system drains;
        above 1.0 the runnable set grows without bound.
    pareto_shape:
        Tail index of the bounded-Pareto service distribution; must be
        > 1 so the mean exists. Smaller = heavier tail.
    drain_factor:
        The run lasts ``drain_factor`` times the arrival window, giving
        the backlog time to drain after the last arrival.
    record_events:
        Off by default — the GMS-replay event timeline is O(events) of
        memory, which high-N runs rarely want.
    scheduler_params:
        Per-run constructor overrides for the scheduler (e.g.
        ``{"scan_depth": 10, "track_accuracy": True}`` for
        ``sfs-heuristic``), forwarded to the registry factory.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    if load <= 0:
        raise ValueError(f"load must be > 0, got {load}")
    if mean_service <= 0:
        raise ValueError(f"mean_service must be > 0, got {mean_service}")
    if pareto_shape <= 1:
        raise ValueError(
            f"pareto_shape must be > 1 (finite mean), got {pareto_shape}"
        )
    if drain_factor < 1:
        raise ValueError(f"drain_factor must be >= 1, got {drain_factor}")
    probs = [p for _, _, p in weight_classes]
    if not probs or abs(sum(probs) - 1.0) > 1e-9:
        raise ValueError(
            f"weight-class probabilities must sum to 1, got {probs}"
        )

    # Poisson arrivals + bounded-Pareto demands from the registries.
    # Truncation pulls the realized mean slightly below mean_service,
    # which only nudges the effective load down — fine for a synthetic
    # family. generated_tasks preserves the historical per-task draw
    # order, so existing (n, seed) populations are bit-identical.
    specs = generated_tasks(
        n_tasks,
        arrival=PoissonArrivals(load * cpus / mean_service),
        demand=BoundedParetoDemand(
            mean_service, shape=pareto_shape, cap_factor=service_cap_factor
        ),
        weight_classes=weight_classes,
        seed=seed,
    )
    duration = specs[-1].at * drain_factor
    return Scenario(
        name=f"server-n{n_tasks}-{scheduler}-seed{seed}",
        scheduler=scheduler,
        scheduler_params=dict(scheduler_params or {}),
        cpus=cpus,
        quantum=quantum,
        cost_model=cost_model,
        duration=duration,
        tasks=tuple(specs),
        metrics=metrics,
        sample_service=sample_service,
        service_sample_interval=service_sample_interval,
        record_events=record_events,
    )


def busy_window_end(result) -> float:
    """End of the run's *busy* window: the last job completion.

    Falls back to the full duration when any declared job is still in
    the system at the end (overloaded runs, or a drain window too short
    to clear the backlog) — then the whole run is genuinely busy.
    """
    ends = [t.exit_time for t in result.tasks.values()]
    if not ends or any(e is None for e in ends):
        return result.duration
    return max(ends)


def class_shares(
    result,
    weight_classes=SERVER_WEIGHT_CLASSES,
    window: str = "busy",
) -> dict[str, float]:
    """Aggregate machine share per weight class of a finished run.

    ``window="busy"`` (default) normalizes by capacity up to the last
    job completion, so the reported shares are invariant to how much
    idle padding ``drain_factor`` appends after the backlog clears.
    The old behaviour — dividing by capacity over the *full* duration,
    which shrinks every share as ``drain_factor`` grows — is available
    as ``window="full"``.
    """
    if window == "busy":
        end = busy_window_end(result)
    elif window == "full":
        end = result.duration
    else:
        raise ValueError(
            f"window must be 'busy' or 'full', got {window!r}"
        )
    capacity = result.capacity(0.0, end)
    return {
        name: result.group_service(f"{name}-") / capacity
        for name, _, _ in weight_classes
    }
