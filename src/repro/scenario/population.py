"""Draw open-arrival task populations from arrival/demand registries.

:func:`generated_tasks` is the single sampling loop behind
:func:`repro.scenario.server.server_scenario` and the ``streams``
blocks of config files (:mod:`repro.scenario.io`): one seeded PRNG,
one arrival process, one demand distribution, one weight-class mix —
out come plain :class:`~repro.scenario.spec.TaskSpec` rows.

The per-task draw order is a compatibility contract: arrival gap,
then demand, then weight class, exactly as the historical
``server_scenario`` loop drew them. Rebasing the server preset onto
this function therefore reproduces existing seeds bit-for-bit — the
property ``tests/test_arrivals_demands.py`` pins.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.scenario.arrivals import ArrivalProcess
from repro.scenario.demands import DemandDistribution
from repro.scenario.spec import Compute, TaskSpec

__all__ = ["generated_tasks", "check_weight_classes"]


def check_weight_classes(
    weight_classes: Sequence[tuple[str, float, float]],
) -> None:
    """Validate a ``(name, weight, probability)`` class mix."""
    if not weight_classes:
        raise ValueError("need at least one weight class")
    seen: set[str] = set()
    for name, weight, prob in weight_classes:
        if name in seen:
            raise ValueError(f"duplicate weight class {name!r}")
        seen.add(name)
        if weight <= 0:
            raise ValueError(
                f"weight class {name!r} weight must be > 0, got {weight}"
            )
        if prob < 0:
            raise ValueError(
                f"weight class {name!r} probability must be >= 0, got {prob}"
            )
    total = sum(prob for _, _, prob in weight_classes)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(
            f"weight-class probabilities must sum to 1, got {total}"
        )


def generated_tasks(
    n: int,
    arrival: ArrivalProcess,
    demand: DemandDistribution,
    weight_classes: Sequence[tuple[str, float, float]],
    seed: int = 42,
    prefix: str = "",
    start: float = 0.0,
) -> list[TaskSpec]:
    """Sample ``n`` finite-compute tasks as an open arrival stream.

    Tasks are named ``{prefix}{class}-{i:05d}`` and arrive at
    ``start + t_i`` where ``t_i`` comes from ``arrival``; each draws a
    demand from ``demand`` and a ``(weight, class)`` from the
    ``(name, weight, probability)`` rows of ``weight_classes``. All
    randomness flows through one ``random.Random(seed)`` in the fixed
    order arrival → demand → class, so every (inputs, seed) pair is
    bit-for-bit reproducible.
    """
    if n < 1:
        raise ValueError("n_tasks must be >= 1")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    check_weight_classes(weight_classes)
    names = [name for name, _, _ in weight_classes]
    probs = [prob for _, _, prob in weight_classes]
    weights = {name: weight for name, weight, _ in weight_classes}

    rng = random.Random(seed)
    times = arrival.times(rng)
    specs: list[TaskSpec] = []
    for i in range(n):
        try:
            t = next(times)
        except StopIteration:
            raise ValueError(
                f"arrival process produced only {i} of {n} requested times"
            ) from None
        d = demand.sample(rng)
        if d <= 0:
            raise ValueError(
                f"demand distribution produced non-positive demand {d}"
            )
        cls = rng.choices(names, weights=probs)[0]
        specs.append(
            TaskSpec(
                name=f"{prefix}{cls}-{i:05d}",
                weight=weights[cls],
                behavior=Compute(d),
                at=start + t,
            )
        )
    return specs
