"""Declarative scenario layer: one ``Scenario -> SimulationResult``
pipeline for every experiment, sweep and workload.

A :class:`~repro.scenario.spec.Scenario` is plain data — machine shape,
scheduler by registry name, a task population (arrivals, departures,
weight changes), a duration and the metrics to collect. Feeding it to
:func:`~repro.scenario.runner.run_scenario` yields a
:class:`~repro.scenario.result.SimulationResult` that wraps per-task
CPU shares, fairness/lag metrics from :mod:`repro.analysis` and raw
trace access. :class:`~repro.scenario.sweep.Sweep` /
:func:`~repro.scenario.sweep.run_sweep` execute cartesian
policy x machine grids across a process pool with deterministic result
ordering.

Every figure of the paper's evaluation (§4) is defined this way in
:mod:`repro.experiments`; a new workload is a ~30-line scenario, not a
new module::

    from repro.scenario import Scenario, task, group, run_scenario

    scn = Scenario(
        name="my-workload",
        scheduler="sfs",
        cpus=4,
        duration=30.0,
        tasks=(task("hog", weight=10), *group(8, 1, "bg")),
    )
    result = run_scenario(scn)
    print(result.shares())

Scenarios are also *data*: :mod:`repro.scenario.io` loads and dumps
schema-validated YAML/JSON configs (``load_scenario`` /
``dump_scenario``; ``Scenario -> YAML -> Scenario`` is the identity),
and generated populations compose an arrival process with a demand
distribution through the :data:`ARRIVALS` / :data:`DEMANDS` registries
(``register_arrival`` / ``register_demand`` add kinds that every
config file and ``sfs-experiment list`` then knows). For
thousands-of-tasks populations use
:func:`~repro.scenario.server.server_scenario`; grid execution is
delegated to the pluggable backends of :mod:`repro.exec`.
"""

from repro.scenario.arrivals import (
    ARRIVALS,
    arrival_names,
    make_arrival,
    register_arrival,
)
from repro.scenario.demands import (
    DEMANDS,
    demand_names,
    make_demand,
    register_demand,
)
from repro.scenario.families import (
    FAMILIES,
    family_names,
    register_family,
)
from repro.scenario.io import (
    ConfigError,
    dump_scenario,
    dumps_scenario,
    load_config,
    load_scenario,
    load_sweep,
    loads_config,
    scenario_to_dict,
)
from repro.scenario.population import generated_tasks
from repro.scenario.result import (
    METRICS,
    SimulationResult,
    percentile,
    summarize,
)
from repro.scenario.runner import run_scenario
from repro.scenario.server import (
    SERVER_WEIGHT_CLASSES,
    busy_window_end,
    class_shares,
    server_scenario,
)
from repro.scenario.spec import (
    Compile,
    Compute,
    Disksim,
    Inf,
    InteractiveLoop,
    Kill,
    LatCtxRing,
    Mpeg,
    Probe,
    Scenario,
    SetWeight,
    ShortJobs,
    TaskSpec,
    group,
    task,
)
from repro.scenario.sweep import (
    Sweep,
    SweepCell,
    cells_in_grid_order,
    run_cells,
    run_sweep,
    stream_cells,
    sweep_scenarios,
)

__all__ = [
    "ARRIVALS",
    "Compile",
    "Compute",
    "ConfigError",
    "DEMANDS",
    "Disksim",
    "FAMILIES",
    "Inf",
    "METRICS",
    "SERVER_WEIGHT_CLASSES",
    "arrival_names",
    "busy_window_end",
    "class_shares",
    "demand_names",
    "dump_scenario",
    "dumps_scenario",
    "family_names",
    "generated_tasks",
    "load_config",
    "load_scenario",
    "load_sweep",
    "loads_config",
    "make_arrival",
    "make_demand",
    "percentile",
    "register_arrival",
    "register_demand",
    "register_family",
    "scenario_to_dict",
    "server_scenario",
    "InteractiveLoop",
    "Kill",
    "LatCtxRing",
    "Mpeg",
    "Probe",
    "Scenario",
    "SetWeight",
    "ShortJobs",
    "SimulationResult",
    "Sweep",
    "SweepCell",
    "TaskSpec",
    "cells_in_grid_order",
    "group",
    "run_cells",
    "run_scenario",
    "run_sweep",
    "stream_cells",
    "summarize",
    "sweep_scenarios",
    "task",
]
