"""The unified result object returned by ``run_scenario``.

:class:`SimulationResult` wraps the finished machine and exposes the
questions every figure of the paper asks — per-task service and machine
shares, cumulative-service curves, starvation detection, Jain's index,
and the GMS-surplus / lag metrics of :mod:`repro.analysis` — plus raw
access to the tasks, behaviours, drivers and trace for anything
bespoke.

:func:`summarize` reduces a result to a flat, picklable dict of canned
metrics; it is what sweep workers ship back across the process pool.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.analysis.fairness import jains_index, longest_starvation
from repro.analysis.timeseries import cumulative_series, regular_times
from repro.sim.machine import Machine
from repro.sim.metrics import service_between, share_between
from repro.sim.task import Task
from repro.sim.tracing import Trace

__all__ = [
    "SimulationResult",
    "summarize",
    "percentile",
    "check_metrics",
    "METRICS",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method so reported latency
    percentiles are comparable to the capacity-planning literature.
    Raises ValueError on an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class SimulationResult:
    """Everything a finished scenario run can tell you."""

    def __init__(
        self,
        scenario: Any,
        machine: Machine,
        tasks: dict[str, Task],
        drivers: dict[str, Any],
        probes: list[Any],
    ) -> None:
        self.scenario = scenario
        self.machine = machine
        #: declared tasks by spec name (driver-spawned tasks excluded)
        self.tasks = tasks
        #: driver objects (ShortJobFeeder / TokenRing) by spec name
        self.drivers = drivers
        #: probe return values, in scenario probe order
        self.probes = probes
        #: canned metrics requested via ``scenario.metrics``
        self.metrics: dict[str, Any] = {}
        #: invariant-audit outcome (set when ``scenario.audit`` is on)
        self.audit_report: Any = None

    # -- raw access ----------------------------------------------------

    @property
    def scheduler(self):
        """The scheduler instance that drove the run."""
        return self.machine.scheduler

    @property
    def trace(self) -> Trace:
        """The machine's event/run-interval trace."""
        return self.machine.trace

    @property
    def now(self) -> float:
        """Simulation time at which the run stopped."""
        return self.machine.now

    @property
    def duration(self) -> float:
        """The measured window: scenario duration, or the stop time."""
        if self.scenario.duration is not None:
            return self.scenario.duration
        return self.machine.now

    def task(self, name: str) -> Task:
        """The :class:`Task` declared under ``name``."""
        return self.tasks[name]

    def behavior(self, name: str) -> Any:
        """The behaviour object of task ``name`` (post-run state)."""
        return self.tasks[name].behavior

    def driver(self, name: str) -> Any:
        """The driver object (feeder/ring) declared under ``name``."""
        return self.drivers[name]

    def sched_tag(self, name: str, key: str, default: float = 0.0) -> float:
        """A scheduler-private per-task value (e.g. SFQ's start tag S)."""
        return self.tasks[name].sched.get(key, default)

    # -- service and shares --------------------------------------------

    def service(self, name: str) -> float:
        """Total CPU service of task ``name`` over the whole run."""
        return self.tasks[name].service

    def service_between(self, name: str, t0: float, t1: float) -> float:
        """CPU service of task ``name`` over [t0, t1)."""
        return service_between(self.tasks[name], t0, t1)

    def share(self, name: str, t0: float = 0.0, t1: float | None = None) -> float:
        """Fraction of machine capacity task ``name`` got over [t0, t1)."""
        end = self.duration if t1 is None else t1
        return share_between(self.tasks[name], t0, end, self.machine.num_cpus)

    def shares(
        self,
        names: Iterable[str] | None = None,
        t0: float = 0.0,
        t1: float | None = None,
    ) -> dict[str, float]:
        """Machine share per task name over [t0, t1)."""
        picked = list(names) if names is not None else list(self.tasks)
        return {n: self.share(n, t0, t1) for n in picked}

    def group_service(self, prefix: str) -> float:
        """Summed service of every task whose name starts with ``prefix``."""
        return sum(
            t.service for n, t in self.tasks.items() if n.startswith(prefix)
        )

    def capacity(self, t0: float = 0.0, t1: float | None = None) -> float:
        """CPU-seconds the machine offered over [t0, t1)."""
        end = self.duration if t1 is None else t1
        return self.machine.total_capacity(t0, end)

    # -- curves ---------------------------------------------------------

    def series(
        self, name: str, times: Sequence[float], scale: float = 1.0
    ) -> list[tuple[float, float]]:
        """Cumulative (time, service * scale) curve for one task."""
        return cumulative_series(self.tasks[name], times, scale=scale)

    def sampled_series(
        self,
        names: Iterable[str],
        step: float,
        scale: float = 1.0,
        t0: float = 0.0,
        t1: float | None = None,
    ) -> dict[str, list[tuple[float, float]]]:
        """Regularly sampled cumulative curves for several tasks."""
        end = self.duration if t1 is None else t1
        times = regular_times(t0, end, step)
        return {n: self.series(n, times, scale=scale) for n in names}

    # -- latency --------------------------------------------------------

    def sojourns(self, prefix: str = "") -> dict[str, float]:
        """Arrival-to-completion time per *completed* task name.

        ``prefix`` filters by task-name prefix (e.g. ``"pro-"`` for one
        server weight class); jobs still in the system are excluded —
        under overload that truncation matters, so pair percentiles
        with the completion count when comparing policies.
        """
        out: dict[str, float] = {}
        for name, t in self.tasks.items():
            if prefix and not name.startswith(prefix):
                continue
            s = t.sojourn_time
            if s is not None:
                out[name] = s
        return out

    def first_dispatch_latencies(self, prefix: str = "") -> dict[str, float]:
        """Arrival-to-first-CPU delay per dispatched task name."""
        out: dict[str, float] = {}
        for name, t in self.tasks.items():
            if prefix and not name.startswith(prefix):
                continue
            lat = t.first_dispatch_latency
            if lat is not None:
                out[name] = lat
        return out

    def sojourn_percentile(self, q: float, prefix: str = "") -> float:
        """The ``q``-th sojourn percentile over completed tasks."""
        return percentile(list(self.sojourns(prefix).values()), q)

    def censored_sojourns(self, prefix: str = "") -> dict[str, float]:
        """Sojourns with in-system job *ages* standing in as lower bounds.

        Completed jobs contribute their true sojourn; jobs that arrived
        but never finished contribute ``duration - arrival_time`` — the
        time they have already been in the system, a lower bound on the
        sojourn they will eventually accrue. Under overload the
        completed-only percentiles systematically flatter the slow
        policy (the worst jobs are exactly the ones that did not
        finish); this censored-tail estimate bounds that truncation
        bias from the other side. Jobs that never arrived are excluded.
        """
        out: dict[str, float] = {}
        for name, t in self.tasks.items():
            if prefix and not name.startswith(prefix):
                continue
            value = _censored_sojourn_of(self, t)
            if value is not None:
                out[name] = value
        return out

    def censored_sojourn_percentile(self, q: float, prefix: str = "") -> float:
        """The ``q``-th percentile of :meth:`censored_sojourns`."""
        return percentile(list(self.censored_sojourns(prefix).values()), q)

    def in_system(self) -> int:
        """Jobs that arrived but had not completed when the run ended."""
        return sum(
            1
            for t in self.tasks.values()
            if t.arrival_time is not None and t.exit_time is None
        )

    # -- fairness -------------------------------------------------------

    def starvation(
        self, name: str, t0: float, t1: float, resolution: float = 0.1
    ) -> float:
        """Longest no-progress interval of task ``name`` in [t0, t1)."""
        return longest_starvation(self.tasks[name], t0, t1, resolution)

    def jains(self, t0: float = 0.0, t1: float | None = None) -> float:
        """Jain's fairness index over weighted service A_i / w_i."""
        end = self.duration if t1 is None else t1
        values = [
            service_between(t, t0, end) / t.weight for t in self.tasks.values()
        ]
        return jains_index(values)

    def gms_deviation(self) -> dict[int, float]:
        """Per-tid Eq. 3 surplus vs the GMS trace replay."""
        from repro.analysis.fairness import gms_deviation

        return gms_deviation(self.machine)

    def lag_report(
        self, t0: float = 0.0, t1: float | None = None, step: float = 0.1
    ) -> dict[str, float]:
        """Max |actual - fluid GMS| per task name over the window."""
        from repro.analysis.lag import lag_report

        end = self.duration if t1 is None else t1
        return lag_report(self.machine, t0, end, step)


def _metric_shares(result: SimulationResult) -> dict[str, float]:
    """Per-task share of total delivered service."""
    return result.shares()


def _metric_jains(result: SimulationResult) -> float:
    """Jain's fairness index over weight-normalized service."""
    return result.jains()


def _metric_total_service(result: SimulationResult) -> float:
    """Total CPU service delivered across all tasks."""
    return sum(t.service for t in result.tasks.values())


def _metric_context_switches(result: SimulationResult) -> int:
    """Context switches counted by the trace."""
    return result.trace.context_switches


def _metric_preemptions(result: SimulationResult) -> int:
    """Involuntary preemptions counted by the trace."""
    return result.trace.preemptions


def _metric_decisions(result: SimulationResult) -> int:
    """Scheduler pick_next invocations counted by the trace."""
    return result.trace.decisions


def _metric_events_fired(result: SimulationResult) -> int:
    """Simulation events fired during the run."""
    return result.machine.engine.events_fired


def _metric_max_lag(result: SimulationResult) -> float:
    """Max |service - GMS ideal| over all tasks (needs events)."""
    report = result.lag_report(step=max(result.duration / 100.0, 0.05))
    return max(report.values(), default=0.0)


def _class_of(name: str) -> str:
    """Weight-class prefix of a task name (``"pro-00042"`` -> ``"pro"``)."""
    return name.split("-", 1)[0]


def _percentile_by_class(
    result: SimulationResult,
    extract: Callable[[Task], float | None],
    q: float,
) -> dict[str, float]:
    """q-th percentile of ``extract(task)`` per weight-class prefix.

    Tasks for which ``extract`` returns None (e.g. jobs still in the
    system have no sojourn) are skipped; classes with no samples are
    omitted, an ``"all"`` key aggregates over every sampled task, and
    the dict is empty when nothing was sampled (an all-``Inf``
    population). Flat and picklable — sweep workers ship it back
    as-is.
    """
    by_class: dict[str, list[float]] = {}
    everything: list[float] = []
    for name, t in result.tasks.items():
        value = extract(t)
        if value is None:
            continue
        by_class.setdefault(_class_of(name), []).append(value)
        everything.append(value)
    out = {
        cls: percentile(vals, q) for cls, vals in sorted(by_class.items())
    }
    if everything:
        out["all"] = percentile(everything, q)
    return out


def _censored_sojourn_of(
    result: SimulationResult, t: Task
) -> float | None:
    """Sojourn if completed, in-system age if not, None if never arrived."""
    if t.arrival_time is None:
        return None
    if t.exit_time is not None:
        return t.exit_time - t.arrival_time
    return result.duration - t.arrival_time


def _metric_sojourn_p50(result: SimulationResult) -> dict[str, float]:
    """Median sojourn time of completed jobs, by class."""
    return _percentile_by_class(result, lambda t: t.sojourn_time, 50.0)


def _metric_sojourn_p95(result: SimulationResult) -> dict[str, float]:
    """95th-percentile sojourn time of completed jobs, by class."""
    return _percentile_by_class(result, lambda t: t.sojourn_time, 95.0)


def _metric_sojourn_p99(result: SimulationResult) -> dict[str, float]:
    """99th-percentile sojourn time of completed jobs, by class."""
    return _percentile_by_class(result, lambda t: t.sojourn_time, 99.0)


def _metric_dispatch_latency_p95(result: SimulationResult) -> dict[str, float]:
    """p95 arrival-to-first-CPU delay per weight-class prefix + ``"all"``."""
    return _percentile_by_class(
        result, lambda t: t.first_dispatch_latency, 95.0
    )


def _metric_completed(result: SimulationResult) -> int:
    """Jobs that ran to completion (the denominator behind sojourns)."""
    return sum(1 for t in result.tasks.values() if t.exit_time is not None)


def _make_censored_percentile(q: float) -> Callable[[SimulationResult], dict[str, float]]:
    """Censored-tail sojourn percentile extractor (see censored_sojourns).

    Completed jobs report true sojourns; in-system jobs report their
    age as a lower bound, so under overload these percentiles can't be
    flattered by truncation the way the completed-only ones are.
    """

    def extract(result: SimulationResult) -> dict[str, float]:
        return _percentile_by_class(
            result, lambda t: _censored_sojourn_of(result, t), q
        )

    return extract


def _metric_in_system(result: SimulationResult) -> int:
    """Jobs censored by the horizon (arrived, never completed)."""
    return result.in_system()


def _metric_class_shares(result: SimulationResult) -> dict[str, float]:
    """Busy-window machine share per server weight class (std/pro/ent).

    Flat and picklable, so backend workers can ship it back for the
    ``server`` CLI and the scale bench without returning the tasks.
    """
    from repro.scenario.server import class_shares

    return class_shares(result)


def _metric_driver_shares(result: SimulationResult) -> dict[str, float]:
    """Machine share of each driver's job stream (e.g. the Fig. 5 feeder).

    ``total_service / capacity`` per driver that tracks its service
    (currently the ShortJobs feeder); drivers without the accessor are
    skipped. This is what lets the sensitivity study run its cells
    through an execution backend: the finished driver object cannot
    cross a process boundary, but its share can.
    """
    capacity = result.capacity()
    out: dict[str, float] = {}
    for name, driver in result.drivers.items():
        total = getattr(driver, "total_service", None)
        if callable(total):
            out[name] = total() / capacity
    return out


def _metric_flow_throughput(result: SimulationResult) -> dict[str, float]:
    """Goodput in bytes/sec per flow + ``"all"`` (flow populations)."""
    from repro.flows.metrics import flow_throughput

    return flow_throughput(result)


def _make_packet_delay_percentile(
    q: float,
) -> Callable[[SimulationResult], dict[str, float]]:
    """Per-flow packet-delay percentile extractor (+ ``"all"``).

    Delay is enqueue-to-completion per packet — queueing plus
    transmission; empty on non-flow populations.
    """

    def extract(result: SimulationResult) -> dict[str, float]:
        from repro.flows.metrics import packet_delay_percentiles

        return packet_delay_percentiles(result, q)

    extract.__doc__ = (
        f"p{q:g} enqueue-to-completion packet delay per flow + ``\"all\"``."
    )
    return extract


def _metric_resource_shares(result: SimulationResult) -> dict[str, Any]:
    """Per-resource share of delivered {cpu, memory, bandwidth}, per task."""
    from repro.flows.resources import resource_shares

    return resource_shares(result)


def _metric_dominant_shares(result: SimulationResult) -> dict[str, float]:
    """DRF-style dominant resource share per task with a demand vector."""
    from repro.flows.resources import dominant_shares

    return dominant_shares(result)


def _metric_resource_jains(result: SimulationResult) -> dict[str, float]:
    """Jain's fairness index per resource over weighted resource service."""
    from repro.flows.resources import resource_jains

    return resource_jains(result)


def _metric_audit(result: SimulationResult) -> dict[str, Any]:
    """Flat invariant-audit summary (requires ``Scenario(audit=True)``)."""
    if result.audit_report is None:
        raise ValueError(
            "metric 'audit' requires Scenario(audit=True): no audit "
            "report was produced for this run"
        )
    return result.audit_report.summary()


#: canned metric name -> extractor (flat, picklable values only)
METRICS = {
    "audit": _metric_audit,
    "shares": _metric_shares,
    "jains": _metric_jains,
    "total_service": _metric_total_service,
    "context_switches": _metric_context_switches,
    "preemptions": _metric_preemptions,
    "decisions": _metric_decisions,
    "events_fired": _metric_events_fired,
    "max_lag": _metric_max_lag,
    "sojourn_p50": _metric_sojourn_p50,
    "sojourn_p95": _metric_sojourn_p95,
    "sojourn_p99": _metric_sojourn_p99,
    "sojourn_p50_censored": _make_censored_percentile(50.0),
    "sojourn_p95_censored": _make_censored_percentile(95.0),
    "sojourn_p99_censored": _make_censored_percentile(99.0),
    "in_system": _metric_in_system,
    "dispatch_latency_p95": _metric_dispatch_latency_p95,
    "completed": _metric_completed,
    "class_shares": _metric_class_shares,
    "driver_shares": _metric_driver_shares,
    "flow_throughput": _metric_flow_throughput,
    "packet_delay_p50": _make_packet_delay_percentile(50.0),
    "packet_delay_p95": _make_packet_delay_percentile(95.0),
    "packet_delay_p99": _make_packet_delay_percentile(99.0),
    "resource_shares": _metric_resource_shares,
    "dominant_shares": _metric_dominant_shares,
    "resource_jains": _metric_resource_jains,
}


def check_metrics(metrics: Iterable[str]) -> None:
    """Raise ValueError on unknown metric names (fail fast, pre-run).

    The single validation used by ``Scenario``/``Sweep`` construction
    and ``run_cells``, so a typo surfaces before any cell burns CPU.
    """
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        known = ", ".join(sorted(METRICS))
        raise ValueError(f"unknown metric(s) {unknown!r}; known: {known}")


def summarize(
    result: SimulationResult, metrics: Iterable[str]
) -> dict[str, Any]:
    """Compute the named canned metrics into a flat, picklable dict."""
    out: dict[str, Any] = {}
    for name in metrics:
        try:
            extractor = METRICS[name]
        except KeyError:
            known = ", ".join(sorted(METRICS))
            raise ValueError(
                f"unknown metric {name!r}; known: {known}"
            ) from None
        out[name] = extractor(result)
    return out
