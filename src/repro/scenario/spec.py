"""The declarative scenario specification.

Everything here is plain, picklable data: a :class:`Scenario` can be
shipped to a worker process (see :mod:`repro.scenario.sweep`) or
serialized next to its results. Behaviour
*specs* name the workload behaviours of :mod:`repro.workloads` without
instantiating them — construction (and seeding of any RNGs) happens
inside :func:`repro.scenario.runner.run_scenario`, so running the same
scenario twice is bit-for-bit identical.

The population DSL:

- :func:`task` / :func:`group` declare tasks with a behaviour, weight
  and arrival time;
- :class:`SetWeight` and :class:`Kill` schedule the §3.1 control
  operations (on-the-fly weight changes, external departures);
- :class:`ShortJobs` declares the Fig. 5 arrival process (a new short
  job the instant the previous one exits);
- :class:`LatCtxRing` declares the lmbench ``lat_ctx`` token ring of
  Table 1 / Fig. 7;
- :class:`Probe` samples arbitrary mid-run state (e.g. SFQ start tags
  the instant a thread arrives, as Example 1 requires).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Union

__all__ = [
    "Inf",
    "Compute",
    "InteractiveLoop",
    "Mpeg",
    "Compile",
    "Disksim",
    "BehaviorSpec",
    "TaskSpec",
    "task",
    "group",
    "ShortJobs",
    "LatCtxRing",
    "SetWeight",
    "Kill",
    "Probe",
    "Scenario",
]


# ----------------------------------------------------------------------
# behaviour specs (one per workload behaviour in repro.workloads)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Inf:
    """Compute forever — the paper's ``Inf`` / dhrystone loop."""


@dataclass(frozen=True)
class Compute:
    """Consume ``cpu_seconds`` of CPU, then exit."""

    cpu_seconds: float


@dataclass(frozen=True)
class InteractiveLoop:
    """Think/compute loop with response-time accounting (Fig. 6(c))."""

    think_time: float = 1.0
    burst: float = 0.005
    seed: int | None = None


@dataclass(frozen=True)
class Mpeg:
    """Paced MPEG frame-decoding loop (Fig. 6(b))."""

    frame_cost: float = 0.027
    target_fps: float = 30.0
    total_frames: int | None = None


@dataclass(frozen=True)
class Compile:
    """A gcc-like compile process: CPU bursts between file I/O."""

    seed: int
    burst_mean: float = 0.08
    io_mean: float = 0.004
    total_cpu: float | None = None


@dataclass(frozen=True)
class Disksim:
    """A disksim-like batch simulation process (Fig. 6(c))."""

    checkpoint_every: float | None = None
    checkpoint_io: float = 0.002
    seed: int | None = None


BehaviorSpec = Union[Inf, Compute, InteractiveLoop, Mpeg, Compile, Disksim]


# ----------------------------------------------------------------------
# task population
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TaskSpec:
    """One thread of the population: behaviour + weight + arrival.

    ``resources`` optionally declares a per-second demand vector over
    {cpu, memory, bandwidth} (see :mod:`repro.flows.resources`) for
    the multi-resource fairness metrics; empty means the task only
    consumes the schedulable resource.
    """

    name: str
    weight: float = 1.0
    behavior: BehaviorSpec = Inf()
    at: float = 0.0
    ts_priority: int = 20
    footprint_kb: float = 0.0
    resources: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "resources", dict(self.resources))


def task(
    name: str,
    weight: float = 1.0,
    behavior: BehaviorSpec = Inf(),
    at: float = 0.0,
    ts_priority: int = 20,
    footprint_kb: float = 0.0,
    resources: Mapping[str, float] | None = None,
) -> TaskSpec:
    """Declare one task (compute-bound ``Inf`` by default)."""
    return TaskSpec(
        name, weight, behavior, at, ts_priority, footprint_kb,
        dict(resources or {}),
    )


def group(
    count: int,
    weight: float = 1.0,
    prefix: str = "T",
    behavior: BehaviorSpec = Inf(),
    at: float = 0.0,
) -> tuple[TaskSpec, ...]:
    """Declare ``count`` identical tasks named ``prefix-1 .. prefix-N``."""
    return tuple(
        TaskSpec(f"{prefix}-{i + 1}", weight, behavior, at)
        for i in range(count)
    )


# ----------------------------------------------------------------------
# drivers: arrival processes that add/steer tasks while the sim runs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShortJobs:
    """The Fig. 5 / Example 2 short-job sequence.

    Back-to-back finite jobs: the next one arrives the instant the
    previous one exits (plus ``gap``). Accessible after the run as
    ``result.driver(name)`` (a
    :class:`~repro.workloads.shortjobs.ShortJobFeeder`).
    """

    name: str = "T_short"
    weight: float = 5.0
    job_cpu: float = 0.3
    first_arrival: float = 0.0
    gap: float = 0.0


@dataclass(frozen=True)
class LatCtxRing:
    """The lmbench ``lat_ctx`` token ring of Table 1 / Fig. 7.

    A scenario containing a ring may leave ``duration=None``: the run
    then ends when every ring has completed its passes. Accessible
    after the run as ``result.driver(name)`` (a
    :class:`~repro.workloads.lmbench.TokenRing`).
    """

    name: str = "lat_ctx"
    nprocs: int = 2
    passes: int = 2000
    work_cost: float = 0.0
    footprint_kb: float = 0.0
    start_at: float = 0.0


DriverSpec = Union[ShortJobs, LatCtxRing]


# ----------------------------------------------------------------------
# scheduled control events and probes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SetWeight:
    """``setweight()`` (§3.1): change ``task``'s weight at time ``at``."""

    task: str
    weight: float
    at: float


@dataclass(frozen=True)
class Kill:
    """Terminate ``task`` at time ``at`` (Fig. 4 stops T2 at t=30 s)."""

    task: str
    at: float


EventSpec = Union[SetWeight, Kill]


@dataclass(frozen=True)
class Probe:
    """Sample mid-run state at time ``at``.

    ``fn(machine, tasks)`` is called once the simulation reaches ``at``
    (after all events at ``at`` have fired, exactly as if the caller had
    paused ``run_until`` there); its return value lands in
    ``result.probes`` in probe order. ``fn`` must be a module-level
    callable for the scenario to stay picklable.
    """

    at: float
    fn: Callable[[Any, dict[str, Any]], Any]


# ----------------------------------------------------------------------
# the scenario itself
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """A complete, declarative experiment specification.

    Parameters mirror :class:`~repro.sim.machine.Machine` where they
    overlap; ``scheduler`` is a :mod:`repro.schedulers.registry` name
    and ``scheduler_params`` per-run constructor overrides. ``metrics``
    names canned summaries (see
    :func:`repro.scenario.result.summarize`) computed eagerly into
    ``result.metrics``; everything else is available lazily on the
    result object.

    ``duration=None`` is allowed only for scenarios whose drivers
    finish on their own (currently :class:`LatCtxRing`); the run then
    stops at completion (bounded by ``max_time``).
    """

    name: str
    scheduler: str = "sfs"
    scheduler_params: Mapping[str, Any] = field(default_factory=dict)
    cpus: int = 2
    quantum: float = 0.2
    cost_model: str = "zero"  # zero | testbed | lmbench
    duration: float | None = None
    tasks: tuple[TaskSpec, ...] = ()
    drivers: tuple[DriverSpec, ...] = ()
    events: tuple[EventSpec, ...] = ()
    probes: tuple[Probe, ...] = ()
    metrics: tuple[str, ...] = ()
    quantum_jitter: float = 0.0
    jitter_seed: int = 0
    sample_service: bool = True
    #: when > 0, decimate per-task service curves to one point per this
    #: many seconds. Totals and whole-window shares stay exact (each
    #: task's final total is pinned as a point); mid-run curve shapes —
    #: and therefore lag/starvation reports — become approximate. See
    #: the Machine docs. Essential for high-N runs that would otherwise
    #: record one point per event.
    service_sample_interval: float = 0.0
    record_events: bool = True
    preempt_on_wake: bool = True
    max_time: float = 3600.0
    #: install the online invariant auditor for this run; the report
    #: lands on ``result.audit_report`` (and in the canned ``"audit"``
    #: metric when requested)
    audit: bool = False
    #: auditor tuning (see repro.analysis.audit): check params such as
    #: ``starvation_factor``/``lag_factor``/``surplus_check_every``,
    #: ``max_violations``, plus ``checks`` to run a named subset
    audit_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accept nested iterables of TaskSpec (e.g. a group() splice
        # alongside single tasks) and flatten them.
        flat: list[TaskSpec] = []
        for entry in self.tasks:
            if isinstance(entry, TaskSpec):
                flat.append(entry)
            elif isinstance(entry, Iterable):
                flat.extend(entry)
            else:
                raise TypeError(f"bad task entry {entry!r}")
        object.__setattr__(self, "tasks", tuple(flat))
        names = [t.name for t in self.tasks]
        counts = Counter(names)
        dupes = {n for n, c in counts.items() if c > 1}
        if dupes:
            raise ValueError(f"duplicate task names: {sorted(dupes)}")
        known = set(names)
        for event in self.events:
            if event.task not in known:
                raise ValueError(
                    f"event {event!r} references unknown task {event.task!r}"
                )
        driver_names = [d.name for d in self.drivers]
        if len(set(driver_names)) != len(driver_names):
            raise ValueError(f"duplicate driver names: {driver_names}")
        if self.duration is not None:
            for probe in self.probes:
                if probe.at > self.duration:
                    raise ValueError(
                        f"probe at t={probe.at} is beyond duration "
                        f"{self.duration}"
                    )
        if self.duration is None and not any(
            isinstance(d, LatCtxRing) for d in self.drivers
        ):
            raise ValueError(
                "duration=None requires a self-terminating driver "
                "(LatCtxRing); fixed populations need an explicit duration"
            )
        # Fail fast on metric typos: summarize() used to raise only
        # *after* the simulation ran, wasting e.g. an N=5000 sweep cell
        # before reporting the bad name.
        from repro.scenario.result import check_metrics

        check_metrics(self.metrics)
        if self.scheduler_params:
            # Same fail-fast treatment for scheduler constructor
            # overrides: a typo'd key dies here, not in a sweep worker.
            # Unregistered scheduler names skip this (and still fail at
            # run time with the registry's unknown-scheduler error).
            from repro.schedulers.registry import check_scheduler_params

            check_scheduler_params(self.scheduler, self.scheduler_params)
        if "audit" in self.metrics and not self.audit:
            raise ValueError(
                "metric 'audit' requires Scenario(audit=True)"
            )
        if self.audit_params and not self.audit:
            raise ValueError("audit_params given but audit=False")
        if self.audit_params:
            # Fail fast on param/check typos, before any cell runs.
            from repro.analysis.audit import CHECKS
            from repro.analysis.audit.checks import KNOWN_PARAMS

            special = {"max_violations", "checks"}
            bad = set(self.audit_params) - KNOWN_PARAMS - special
            if bad:
                raise ValueError(
                    f"unknown audit param(s) {sorted(bad)!r}; known: "
                    f"{', '.join(sorted(KNOWN_PARAMS | special))}"
                )
            unknown = [
                c for c in self.audit_params.get("checks", ()) if c not in CHECKS
            ]
            if unknown:
                raise ValueError(
                    f"unknown audit check(s) {unknown!r}; known: "
                    f"{', '.join(sorted(CHECKS))}"
                )
        if self.service_sample_interval > 0 and "max_lag" in self.metrics:
            raise ValueError(
                "metric 'max_lag' reads mid-run service curves, which "
                "service_sample_interval > 0 decimates; request it on an "
                "undecimated run"
            )

    def with_(self, **overrides: Any) -> "Scenario":
        """A copy of this scenario with fields replaced."""
        return dataclasses.replace(self, **overrides)
