"""CSV output for experiment results.

Every experiment can write its series/rows as CSV so figures can be
re-plotted outside the sandbox. Files go to ``results/`` by default.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

__all__ = ["write_rows", "write_series"]


def write_rows(
    path: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Write rows with a header line; creates parent dirs. Returns path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def write_series(
    path: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_name: str = "time",
) -> str:
    """Write named (x, y) series as long-form CSV (series, x, y)."""
    rows = [
        (name, x, y)
        for name, points in series.items()
        for x, y in points
    ]
    return write_rows(path, ["series", x_name, "value"], rows)
