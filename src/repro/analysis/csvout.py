"""CSV/JSON output for experiment results.

Every experiment can write its series/rows as CSV so figures can be
re-plotted outside the sandbox. Files go to ``results/`` by default.

Besides the one-shot :func:`write_rows` / :func:`write_series`, the
module ships two **streaming** writers — :class:`RowStream` (CSV) and
:class:`JsonArrayStream` — that flush each row to disk the moment it
is appended. They exist for the execution-backend pipeline: a
10^4-cell sweep iterated via
:func:`repro.scenario.sweep.stream_cells` exports incrementally, cell
by cell, instead of materialising the whole grid in memory first (and
a killed run leaves every finished row on disk).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Mapping, Sequence

__all__ = ["write_rows", "write_series", "RowStream", "JsonArrayStream"]


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_rows(
    path: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Write rows with a header line; creates parent dirs. Returns path."""
    with RowStream(path, headers, flush_each=False) as stream:
        for row in rows:
            stream.append(row)
    return path


def write_series(
    path: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_name: str = "time",
) -> str:
    """Write named (x, y) series as long-form CSV (series, x, y)."""
    rows = [(name, x, y) for name, points in series.items() for x, y in points]
    return write_rows(path, ["series", x_name, "value"], rows)


class RowStream:
    """Incremental CSV writer: header up front, one row at a time.

    Produces byte-identical output to :func:`write_rows` fed the same
    rows; the only difference is *when* the bytes hit the disk.
    ``flush_each`` (the default) flushes after every row so a killed
    run keeps everything already appended; one-shot bulk exports turn
    it off and pay a single buffered write instead of a syscall per
    row.
    """

    def __init__(
        self, path: str, headers: Sequence[str], flush_each: bool = True
    ) -> None:
        _ensure_parent(path)
        self.path = path
        self._flush_each = flush_each
        self._fh = open(path, "w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(headers)
        if flush_each:
            self._fh.flush()

    def append(self, row: Sequence[object]) -> None:
        self._writer.writerow(row)
        if self._flush_each:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RowStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonArrayStream:
    """Incremental writer for a JSON array of objects.

    Emits the same ``json.dump(items, fh, indent=2)`` layout as a
    one-shot dump, but each :meth:`append` lands (flushed) on disk
    immediately. :meth:`close` terminates the array; an interrupted
    run leaves a truncated-but-recoverable file (every completed
    element is intact JSON).
    """

    def __init__(self, path: str) -> None:
        _ensure_parent(path)
        self.path = path
        self._fh = open(path, "w")
        self._count = 0
        self._fh.write("[")
        self._fh.flush()

    def append(self, item: Any) -> None:
        prefix = ",\n" if self._count else "\n"
        body = json.dumps(item, indent=2)
        indented = "\n".join("  " + line for line in body.splitlines())
        self._fh.write(prefix + indented)
        self._fh.flush()
        self._count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.write("\n]" if self._count else "]")
            self._fh.write("\n")
            self._fh.close()

    def __enter__(self) -> "JsonArrayStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
