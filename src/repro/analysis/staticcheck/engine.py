"""Lint driver: file discovery, scope filtering, suppression, rendering.

The engine walks the requested paths, parses every ``*.py`` file once,
runs each registered rule whose scope matches the file, drops findings
suppressed by an inline ``# sfs-lint: disable=`` pragma, and renders
the rest as text or JSON. Scenario config files under a ``scenarios``
directory are routed to :meth:`LintRule.check_config` instead of the
AST path (SFS007 schema-validates them; the pragma works from YAML
comments too). Exposed as ``sfs-experiment lint`` and
``python -m repro.analysis.staticcheck``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.staticcheck import checks  # noqa: F401  (registers rules)
from repro.analysis.staticcheck.rules import (
    LintRule,
    Violation,
    disabled_ids_by_line,
    make_rules,
    rule_ids,
)

__all__ = [
    "DEFAULT_ROOTS",
    "discover_files",
    "lint_source",
    "lint_paths",
    "render_text",
    "render_json",
    "main",
]

#: what a bare ``sfs-experiment lint`` scans, relative to the repo root
DEFAULT_ROOTS: tuple[str, ...] = ("src", "tests", "benchmarks", "examples")

#: scenario config suffixes picked up under a ``scenarios`` directory
_CONFIG_SUFFIXES = (".yaml", ".yml", ".json")

#: directories never descended into
_SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".ruff_cache",
        ".pytest_cache",
        "build",
        "dist",
        ".venv",
        "venv",
    }
)


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of lintable files.

    Directories yield every ``*.py`` file plus any scenario config
    (``*.yaml``/``*.yml``/``*.json``) living under a ``scenarios``
    directory — the example library SFS007 guards. Explicitly named
    config files are always included.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*"):
                if _SKIP_DIRS.intersection(sub.parts) or not sub.is_file():
                    continue
                if sub.suffix == ".py":
                    out.add(sub)
                elif sub.suffix in _CONFIG_SUFFIXES and "scenarios" in sub.parts:
                    out.add(sub)
        elif path.suffix == ".py" or path.suffix in _CONFIG_SUFFIXES:
            out.add(path)
    return sorted(out)


def _file_scope(path: Path) -> str | None:
    """The repro package a file belongs to (``sim``, ``core``, ...).

    Inferred from the path parts following a ``repro`` component, so it
    works for both ``src/repro/sim/machine.py`` and installed layouts.
    Files outside the ``repro`` package (tests, benchmarks, scripts)
    have no scope and only run scope-less rules.
    """
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "repro":
            return parts[i + 1] if i + 1 < len(parts) - 1 else None
    return None


def _applies(rule: LintRule, scope: str | None) -> bool:
    return rule.scopes is None or scope in rule.scopes


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Iterable[LintRule] | None = None,
    scope: str | None = None,
) -> list[Violation]:
    """Lint one source string (the unit-test entry point).

    ``scope`` simulates the file living in that repro package; rules
    restricted to other scopes are skipped. Cross-file (:meth:`finish`)
    findings are included, so single-file duplicate detection works.
    """
    active = list(rules) if rules is not None else make_rules()
    tree = ast.parse(source)
    disabled = disabled_ids_by_line(source)
    found: list[Violation] = []
    for lint_rule in active:
        if not _applies(lint_rule, scope):
            continue
        found.extend(lint_rule.check(tree, source, path))
    if rules is None:
        for lint_rule in active:
            found.extend(lint_rule.finish())
    return _suppress(found, {path: disabled})


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns (violations, files_checked)."""
    rules = make_rules(select)
    files = discover_files(paths)
    found: list[Violation] = []
    disabled_by_path: dict[str, dict[int, frozenset[str]]] = {}
    for file in files:
        if file.suffix in _CONFIG_SUFFIXES:
            path_str = str(file)
            try:
                text = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                found.append(
                    Violation(
                        rule="SFS000",
                        path=path_str,
                        line=1,
                        col=0,
                        message=f"file is unreadable: {exc.__class__.__name__}",
                    )
                )
                continue
            disabled_by_path[path_str] = disabled_ids_by_line(text)
            for lint_rule in rules:
                found.extend(lint_rule.check_config(text, path_str))
            continue
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, UnicodeDecodeError) as exc:
            found.append(
                Violation(
                    rule="SFS000",
                    path=str(file),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"file does not parse: {exc.__class__.__name__}",
                )
            )
            continue
        path_str = str(file)
        disabled_by_path[path_str] = disabled_ids_by_line(source)
        scope = _file_scope(file)
        for lint_rule in rules:
            if _applies(lint_rule, scope):
                found.extend(lint_rule.check(tree, source, path_str))
    for lint_rule in rules:
        found.extend(lint_rule.finish())
    return _suppress(found, disabled_by_path), len(files)


def _suppress(
    violations: Iterable[Violation],
    disabled_by_path: dict[str, dict[int, frozenset[str]]],
) -> list[Violation]:
    """Drop violations waived by an inline pragma on their line."""
    kept = []
    for v in violations:
        ids = disabled_by_path.get(v.path, {}).get(v.line, frozenset())
        if v.rule in ids or "all" in ids:
            continue
        kept.append(v)
    return sorted(kept, key=lambda v: (v.path, v.line, v.col, v.rule))


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun} in {files_checked} files checked")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (``--format json``)."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "violations": [v.to_json() for v in violations],
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit status 0 = clean, 1 = findings, 2 = usage."""
    parser = argparse.ArgumentParser(
        prog="sfs-experiment lint",
        description=(
            "Repo-specific determinism/soundness linter (rules "
            + ", ".join(rule_ids())
            + "). Waive a finding inline with '# sfs-lint: disable=SFSnnn'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_ROOTS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted_rules():
            scopes = ",".join(cls.scopes) if cls.scopes else "all files"
            print(f"{rule_id}  [{scopes}]  {cls.title}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        violations, files_checked = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(violations, files_checked))
    return 1 if violations else 0


def sorted_rules():
    """(id, class) pairs in id order — shared by --list-rules and docs."""
    from repro.analysis.staticcheck.rules import RULES

    return sorted(RULES.items())
