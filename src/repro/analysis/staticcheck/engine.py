"""Lint driver: file discovery, scope filtering, suppression, rendering.

The engine walks the requested paths, parses every ``*.py`` file once,
runs each registered rule whose scope matches the file, drops findings
suppressed by an inline ``# sfs-lint: disable=`` pragma, and renders
the rest as text or JSON. Scenario config files under a ``scenarios``
directory are routed to :meth:`LintRule.check_config` instead of the
AST path (SFS007 schema-validates them; the pragma works from YAML
comments too). Exposed as ``sfs-experiment lint`` and
``python -m repro.analysis.staticcheck``.

Beyond the per-file rules, two whole-project analyzers hang off the
same driver: ``--project`` runs the interprocedural determinism rules
SFS008/SFS009 (:mod:`.project`) and ``--cboundary`` the compiled-
boundary conformance checker SFS010/SFS011 (:mod:`.cboundary`), both
against the repo root inferred from the linted paths. Paths in every
finding are rendered repo-root-relative so CI annotations and
baselines are stable across machines; ``--baseline``/
``--write-baseline`` let a new rule land by freezing today's findings
and failing only on new ones, and ``--output`` tees the JSON report
to a file.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.staticcheck import checks  # noqa: F401  (registers rules)
from repro.analysis.staticcheck.rules import (
    LintRule,
    Violation,
    disabled_ids_by_line,
    make_rules,
    rule_ids,
)

__all__ = [
    "DEFAULT_ROOTS",
    "apply_baseline",
    "discover_files",
    "find_repo_root",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "render_text",
    "render_json",
    "main",
    "write_baseline",
]

#: what a bare ``sfs-experiment lint`` scans, relative to the repo root
DEFAULT_ROOTS: tuple[str, ...] = ("src", "tests", "benchmarks", "examples")

#: scenario config suffixes picked up under a ``scenarios`` directory
_CONFIG_SUFFIXES = (".yaml", ".yml", ".json")

#: directories never descended into
_SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".ruff_cache",
        ".pytest_cache",
        "build",
        "dist",
        ".venv",
        "venv",
    }
)

#: filesystem markers that identify a repo root
_ROOT_MARKERS = ("pyproject.toml", ".git")


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of lintable files.

    Directories yield every ``*.py`` file plus any scenario config
    (``*.yaml``/``*.yml``/``*.json``) living under a ``scenarios``
    directory — the example library SFS007 guards. Explicitly named
    config files are always included.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*"):
                if _SKIP_DIRS.intersection(sub.parts) or not sub.is_file():
                    continue
                if sub.suffix == ".py":
                    out.add(sub)
                elif sub.suffix in _CONFIG_SUFFIXES and "scenarios" in sub.parts:
                    out.add(sub)
        elif path.suffix == ".py" or path.suffix in _CONFIG_SUFFIXES:
            out.add(path)
    return sorted(out)


def find_repo_root(paths: Sequence[str | Path]) -> Path | None:
    """Locate the repo root for the linted paths (pyproject/.git marker).

    Walks up from the first path (then from the cwd) looking for a
    directory containing one of :data:`_ROOT_MARKERS`. Returns None
    when nothing matches — path rendering then falls back to the
    paths as given.
    """
    probes: list[Path] = []
    if paths:
        first = Path(paths[0]).resolve()
        probes.append(first if first.is_dir() else first.parent)
    probes.append(Path.cwd())
    for start in probes:
        for cand in (start, *start.parents):
            if any((cand / marker).exists() for marker in _ROOT_MARKERS):
                return cand
    return None


def _display_path(file: Path, root: Path | None) -> str:
    """Repo-root-relative rendering of a file path (posix separators).

    Falls back to cwd-relative, then to the path as given, so files
    outside any recognizable repo (tmp dirs in tests) keep stable
    names too.
    """
    resolved = file.resolve()
    bases = [root] if root is not None else []
    bases.append(Path.cwd())
    for base in bases:
        try:
            return resolved.relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return file.as_posix()


def _file_scope(path: Path) -> str | None:
    """The repro package a file belongs to (``sim``, ``core``, ...).

    Inferred from the path parts following a ``repro`` component, so it
    works for both ``src/repro/sim/machine.py`` and installed layouts.
    Files outside the ``repro`` package (tests, benchmarks, scripts)
    have no scope and only run scope-less rules.
    """
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "repro":
            return parts[i + 1] if i + 1 < len(parts) - 1 else None
    return None


def _applies(rule: LintRule, scope: str | None) -> bool:
    return rule.scopes is None or scope in rule.scopes


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Iterable[LintRule] | None = None,
    scope: str | None = None,
) -> list[Violation]:
    """Lint one source string (the unit-test entry point).

    ``scope`` simulates the file living in that repro package; rules
    restricted to other scopes are skipped. Cross-file (:meth:`finish`)
    findings are included, so single-file duplicate detection works.
    """
    active = list(rules) if rules is not None else make_rules()
    tree = ast.parse(source)
    disabled = disabled_ids_by_line(source)
    found: list[Violation] = []
    for lint_rule in active:
        if not _applies(lint_rule, scope):
            continue
        found.extend(lint_rule.check(tree, source, path))
    if rules is None:
        for lint_rule in active:
            found.extend(lint_rule.finish())
    return _suppress(found, {path: disabled})


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    project: bool = False,
    cboundary: bool = False,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns (violations, files_checked).

    ``project`` additionally runs the interprocedural analyzer
    (SFS008/SFS009) and ``cboundary`` the compiled-boundary
    conformance checker (SFS010/SFS011), both over the repo root
    inferred from ``paths`` — a ValueError is raised when no root can
    be located.
    """
    rules = make_rules(select)
    files = discover_files(paths)
    root = find_repo_root(paths)
    found: list[Violation] = []
    disabled_by_path: dict[str, dict[int, frozenset[str]]] = {}
    for file in files:
        path_str = _display_path(file, root)
        if file.suffix in _CONFIG_SUFFIXES:
            try:
                text = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                found.append(
                    Violation(
                        rule="SFS000",
                        path=path_str,
                        line=1,
                        col=0,
                        message=f"file is unreadable: {exc.__class__.__name__}",
                    )
                )
                continue
            disabled_by_path[path_str] = disabled_ids_by_line(text)
            for lint_rule in rules:
                found.extend(lint_rule.check_config(text, path_str))
            continue
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, UnicodeDecodeError) as exc:
            found.append(
                Violation(
                    rule="SFS000",
                    path=path_str,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"file does not parse: {exc.__class__.__name__}",
                )
            )
            continue
        disabled_by_path[path_str] = disabled_ids_by_line(source)
        scope = _file_scope(file)
        for lint_rule in rules:
            if _applies(lint_rule, scope):
                found.extend(lint_rule.check(tree, source, path_str))
    for lint_rule in rules:
        found.extend(lint_rule.finish())
    if project or cboundary:
        if root is None:
            raise ValueError(
                "cannot locate a repo root (pyproject.toml/.git) for the "
                "project/cboundary analyzers; lint from inside the repo or "
                "pass paths within it"
            )
        extra: list[Violation] = []
        if project:
            from repro.analysis.staticcheck.project import project_violations

            extra.extend(project_violations(root))
        if cboundary:
            from repro.analysis.staticcheck.cboundary import check_cboundary

            extra.extend(check_cboundary(root))
        if select is not None:
            wanted = set(select)
            extra = [v for v in extra if v.rule in wanted]
        found.extend(extra)
    return _suppress(found, disabled_by_path), len(files)


def _suppress(
    violations: Iterable[Violation],
    disabled_by_path: dict[str, dict[int, frozenset[str]]],
) -> list[Violation]:
    """Drop violations waived by an inline pragma on their line."""
    kept = []
    for v in violations:
        ids = disabled_by_path.get(v.path, {}).get(v.line, frozenset())
        if v.rule in ids or "all" in ids:
            continue
        kept.append(v)
    return sorted(kept, key=lambda v: (v.path, v.line, v.col, v.rule))


# ----------------------------------------------------------------------
# baseline: freeze current findings, fail only on new ones
# ----------------------------------------------------------------------


def _fingerprint(v: Violation) -> tuple[str, str, str]:
    """Line-number-free identity of a finding (stable across edits)."""
    return (v.rule, v.path, v.message)


def write_baseline(violations: Sequence[Violation], file: str | Path) -> None:
    """Record the current findings as the accepted baseline."""
    counts = Counter(_fingerprint(v) for v in violations)
    entries = [
        [rule, path, message, count]
        for (rule, path, message), count in sorted(counts.items())
    ]
    Path(file).write_text(
        json.dumps({"version": 1, "entries": entries}, indent=2) + "\n",
        encoding="utf-8",
    )


def load_baseline(file: str | Path) -> Counter:
    """Load a baseline file; raises ValueError when malformed."""
    try:
        data = json.loads(Path(file).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {file}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"baseline {file} is not a version-1 baseline file")
    counts: Counter = Counter()
    for entry in data.get("entries", []):
        rule, path, message, count = entry
        counts[(rule, path, message)] = int(count)
    return counts


def apply_baseline(
    violations: Sequence[Violation], baseline: Counter
) -> tuple[list[Violation], int]:
    """Split findings into (new, baselined_count) against a baseline.

    Fingerprints are (rule, path, message) — deliberately free of line
    numbers, so unrelated edits shifting a waived finding around do
    not resurface it. Counts are respected: if the baseline recorded
    two identical findings and a third appears, one is reported.
    """
    used: Counter = Counter()
    kept: list[Violation] = []
    suppressed = 0
    for v in violations:
        key = _fingerprint(v)
        if used[key] < baseline.get(key, 0):
            used[key] += 1
            suppressed += 1
            continue
        kept.append(v)
    return kept, suppressed


def render_text(
    violations: Sequence[Violation], files_checked: int, baselined: int = 0
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [v.render() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    summary = f"{len(violations)} {noun} in {files_checked} files checked"
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation], files_checked: int, baselined: int = 0
) -> str:
    """Machine-readable report (``--format json`` / ``--output``)."""
    report: dict[str, object] = {
        "files_checked": files_checked,
        "violations": [v.to_json() for v in violations],
    }
    if baselined:
        report["baselined"] = baselined
    return json.dumps(report, indent=2, sort_keys=True)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit status 0 = clean, 1 = findings, 2 = usage."""
    parser = argparse.ArgumentParser(
        prog="sfs-experiment lint",
        description=(
            "Repo-specific determinism/soundness linter (rules "
            + ", ".join(rule_ids())
            + "). Waive a finding inline with '# sfs-lint: disable=SFSnnn'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_ROOTS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the interprocedural project analyzer (SFS008/SFS009)",
    )
    parser.add_argument(
        "--cboundary",
        action="store_true",
        help=(
            "also run the compiled-boundary conformance checker "
            "(SFS010/SFS011) against src/repro/sim/_engine.c"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted_rules():
            scopes = ",".join(cls.scopes) if cls.scopes else "all files"
            print(f"{rule_id}  [{scopes}]  {cls.title}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        violations, files_checked = lint_paths(
            args.paths,
            select=select,
            project=args.project,
            cboundary=args.cboundary,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(violations, args.write_baseline)
        noun = "finding" if len(violations) == 1 else "findings"
        print(
            f"baseline written: {len(violations)} {noun} recorded "
            f"to {args.write_baseline}"
        )
        return 0

    baselined = 0
    if args.baseline:
        try:
            violations, baselined = apply_baseline(
                violations, load_baseline(args.baseline)
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    if args.output:
        Path(args.output).write_text(
            render_json(violations, files_checked, baselined) + "\n",
            encoding="utf-8",
        )
    render = render_json if args.format == "json" else render_text
    print(render(violations, files_checked, baselined))
    return 1 if violations else 0


def sorted_rules():
    """(id, class) pairs in id order — shared by --list-rules and docs."""
    from repro.analysis.staticcheck.rules import RULES

    return sorted(RULES.items())
