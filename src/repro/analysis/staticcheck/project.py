"""Interprocedural determinism rules (SFS008/SFS009) over the call graph.

The per-file rules SFS001-SFS003 only see direct draws and leaks;
nondeterminism can also *reach* simulation code through the harness
layers the linter cannot follow file by file — registries, execution
backends, analysis helpers. This module propagates the per-function
summaries of :mod:`.callgraph` transitively and reports the boundary
call sites:

- **SFS008** ``nondeterminism-reaches-sim``: a function in a sim
  scope (:data:`~repro.analysis.staticcheck.rules.SIM_SCOPES`) calls
  out of the sim scopes into a function whose transitive closure
  reaches an unseeded RNG draw or a wall-clock read. The message
  carries the full call chain down to the effect.
- **SFS009** ``unordered-order-escapes``: a sim-scope function
  *iterates* the result of a call out of the sim scopes into a
  function that (transitively, through returned calls) returns a
  syntactic set — hash order escaping into simulation behaviour that
  SFS003 cannot see per-file.

Findings anchor at the boundary call site, so the existing inline
pragma machinery (``# sfs-lint: disable=SFS008``) waives sanctioned
harness boundaries right where they happen. Run via
``sfs-experiment lint --project``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.staticcheck.callgraph import (
    CallGraph,
    Effect,
    build_callgraph,
)
from repro.analysis.staticcheck.rules import (
    SIM_SCOPES,
    Violation,
    disabled_ids_by_line,
)

__all__ = [
    "FunctionSummary",
    "analyze_project",
    "effect_closure",
    "project_summaries",
    "project_violations",
    "unordered_closure",
]

_KIND_LABEL = {
    "rng": "unseeded randomness",
    "clock": "a wall-clock read",
}


@dataclass(frozen=True)
class FunctionSummary:
    """Per-function summary: direct and transitive effect kinds."""

    qualname: str
    path: str
    line: int
    direct: frozenset[str]
    transitive: frozenset[str]
    returns_unordered: bool


def _scope(module: str) -> str | None:
    """The repro package a module belongs to (mirrors engine._file_scope)."""
    parts = module.split(".")
    if len(parts) > 1 and parts[0] == "repro":
        return parts[1]
    return None


def effect_closure(graph: CallGraph) -> dict[str, frozenset[str]]:
    """Effect kinds each function can reach through any call chain."""
    kinds: dict[str, set[str]] = {
        qual: {e.kind for e in fn.effects} for qual, fn in graph.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, fn in graph.functions.items():
            current = kinds[qual]
            before = len(current)
            for call in fn.calls:
                current |= kinds.get(call.target, set())
            if len(current) != before:
                changed = True
    return {qual: frozenset(v) for qual, v in kinds.items()}


def unordered_closure(graph: CallGraph) -> dict[str, bool]:
    """Functions whose *return value* is (transitively) an unordered set.

    Propagates only through tail positions (``return g(...)``): a
    function that merely calls a set-returning helper somewhere does
    not itself return unordered data.
    """
    ret = {qual: fn.returns_set for qual, fn in graph.functions.items()}
    changed = True
    while changed:
        changed = False
        for qual, fn in graph.functions.items():
            if ret[qual]:
                continue
            for call in fn.calls:
                if call.in_return and ret.get(call.target, False):
                    ret[qual] = True
                    changed = True
                    break
    return ret


def _effect_chain(
    graph: CallGraph,
    closures: dict[str, frozenset[str]],
    start: str,
    kind: str,
) -> tuple[list[str], Effect] | None:
    """Shortest call chain from ``start`` to a direct ``kind`` effect."""
    queue: list[list[str]] = [[start]]
    visited = {start}
    while queue:
        path = queue.pop(0)
        fn = graph.functions.get(path[-1])
        if fn is None:
            continue
        for effect in fn.effects:
            if effect.kind == kind:
                return path, effect
        for call in fn.calls:
            if call.target in visited:
                continue
            if kind in closures.get(call.target, frozenset()):
                visited.add(call.target)
                queue.append(path + [call.target])
    return None


def _unordered_chain(
    graph: CallGraph, ret: dict[str, bool], start: str
) -> list[str] | None:
    """Return-call chain from ``start`` to a function returning a set."""
    queue: list[list[str]] = [[start]]
    visited = {start}
    while queue:
        path = queue.pop(0)
        fn = graph.functions.get(path[-1])
        if fn is None:
            continue
        if fn.returns_set:
            return path
        for call in fn.calls:
            if call.in_return and call.target not in visited:
                if ret.get(call.target, False):
                    visited.add(call.target)
                    queue.append(path + [call.target])
    return None


def analyze_project(root: str | Path) -> CallGraph:
    """Build the call graph for a repo root (its ``src/repro`` tree)."""
    return build_callgraph(Path(root) / "src")


def project_summaries(graph: CallGraph) -> dict[str, FunctionSummary]:
    """The propagated per-function summaries (tests and tooling API)."""
    closures = effect_closure(graph)
    unordered = unordered_closure(graph)
    return {
        qual: FunctionSummary(
            qualname=qual,
            path=fn.path,
            line=fn.line,
            direct=frozenset(e.kind for e in fn.effects),
            transitive=closures[qual],
            returns_unordered=unordered[qual],
        )
        for qual, fn in graph.functions.items()
    }


def project_violations(
    root: str | Path, graph: CallGraph | None = None
) -> list[Violation]:
    """Run SFS008/SFS009 over the project; pragma waivers applied.

    Paths in the returned violations are repo-root-relative (posix),
    matching the lint engine's rendering.
    """
    root = Path(root)
    if graph is None:
        graph = analyze_project(root)
    closures = effect_closure(graph)
    unordered = unordered_closure(graph)
    found: list[Violation] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if _scope(fn.module) not in SIM_SCOPES:
            continue
        for call in fn.calls:
            callee = graph.functions.get(call.target)
            if callee is None or _scope(callee.module) in SIM_SCOPES:
                continue
            for kind in ("rng", "clock"):
                if kind not in closures.get(call.target, frozenset()):
                    continue
                chained = _effect_chain(graph, closures, call.target, kind)
                if chained is None:
                    continue
                chain, effect = chained
                found.append(
                    Violation(
                        rule="SFS008",
                        path=fn.path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"{_KIND_LABEL[kind]} reaches simulation code: "
                            + " -> ".join([qual, *chain])
                            + f" reaches {effect.detail} "
                            + f"({effect.path}:{effect.line}); thread seeded "
                            "RNGs / engine time through the scenario, or "
                            "waive a sanctioned harness boundary with "
                            "'# sfs-lint: disable=SFS008'"
                        ),
                    )
                )
            if call.sink is not None and unordered.get(call.target, False):
                chain = _unordered_chain(graph, unordered, call.target)
                if chain is None:
                    continue
                terminal = graph.functions[chain[-1]]
                found.append(
                    Violation(
                        rule="SFS009",
                        path=fn.path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"unordered iteration order escapes into "
                            f"simulation code: {call.sink} iterates "
                            + " -> ".join([qual, *chain])
                            + f", and {terminal.qualname} returns a set "
                            f"({terminal.path}:{terminal.line}); sort at "
                            "the source or wrap the call in sorted(...)"
                        ),
                    )
                )
    return _suppress_pragmas(sorted(set(found), key=_sort_key), root)


def _sort_key(v: Violation) -> tuple[str, int, int, str, str]:
    return (v.path, v.line, v.col, v.rule, v.message)


def _suppress_pragmas(found: list[Violation], root: Path) -> list[Violation]:
    """Apply the inline ``# sfs-lint: disable=`` pragmas at the sinks."""
    disabled: dict[str, dict[int, frozenset[str]]] = {}
    kept: list[Violation] = []
    for v in found:
        if v.path not in disabled:
            try:
                source = (root / v.path).read_text(encoding="utf-8")
            except OSError:
                source = ""
            disabled[v.path] = disabled_ids_by_line(source)
        ids = disabled[v.path].get(v.line, frozenset())
        if v.rule in ids or "all" in ids:
            continue
        kept.append(v)
    return kept
