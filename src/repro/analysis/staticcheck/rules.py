"""Rule registry and base machinery for the repo-specific linter.

The determinism conventions this repository lives by — seeded RNGs
threaded through scenarios, no wall clock inside the simulator, no
hash-order leaks into rendered output — were tribal knowledge enforced
only by review. Each convention is now a registered :class:`LintRule`
with a stable ``SFSnnn`` id, so ``sfs-experiment lint`` (and the
blocking CI job behind it) can enforce them mechanically.

Rules are registered with the :func:`rule` decorator, mirroring the
``@register`` pattern of :mod:`repro.schedulers.registry`::

    @rule("SFS001", scopes=SIM_SCOPES)
    class UnseededRandomRule(LintRule):
        \"\"\"What the rule enforces and why.\"\"\"
        ...

Every lint run instantiates fresh rule objects (:func:`make_rules`), so
rules may keep per-run state — SFS004 uses this to detect registry
names duplicated *across* files via the :meth:`LintRule.finish` hook.

Suppression is inline and per-line: a violation whose line carries a
``# sfs-lint: disable=SFS001`` comment (comma-separated ids, or
``all``) is dropped. There is deliberately no file-level or global
suppression — every waiver sits next to the code it excuses, where
review can see it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "LintRule",
    "Violation",
    "RULES",
    "SIM_SCOPES",
    "rule",
    "make_rules",
    "rule_ids",
    "disabled_ids_by_line",
]

#: the packages that constitute "simulation code": everything whose
#: behaviour must be a pure function of the scenario spec and its seeds
SIM_SCOPES: tuple[str, ...] = (
    "sim",
    "scenario",
    "schedulers",
    "core",
    "workloads",
)


@dataclass(frozen=True)
class Violation:
    """One finding: (rule, file, position, message)."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line ``path:line:col: SFSnnn message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """Machine-readable form (the ``--format json`` output mode)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintRule:
    """Base class for one registered check.

    Subclasses implement :meth:`check` (per file) and may override
    :meth:`finish` (once per run, after every file was checked) for
    cross-file properties. ``id``, ``scopes`` and ``title`` are filled
    in by the :func:`rule` decorator from its arguments and the class
    docstring.
    """

    #: stable rule id ("SFS001"); set by the decorator
    id: str = ""
    #: one-line summary (first docstring line); set by the decorator
    title: str = ""
    #: package scopes the rule applies to (None = every scanned file)
    scopes: tuple[str, ...] | None = None

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        """Yield violations for one parsed file."""
        raise NotImplementedError

    def check_config(self, text: str, path: str) -> Iterator[Violation]:
        """Yield violations for one scenario config file (optional).

        Config files (``*.yaml``/``*.yml``/``*.json`` under a
        ``scenarios`` directory) have no AST; the engine routes them
        here instead of :meth:`check`. Most rules are python-only and
        inherit this no-op.
        """
        return iter(())

    def finish(self) -> Iterator[Violation]:
        """Yield cross-file violations after the whole run (optional)."""
        return iter(())

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        """Build a Violation anchored at ``node``'s position."""
        return Violation(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule id -> rule class (populated by @rule)
RULES: dict[str, type[LintRule]] = {}


def rule(rule_id: str, *, scopes: tuple[str, ...] | None = None):
    """Register a :class:`LintRule` subclass under ``rule_id``.

    Returns the class unchanged so the registry stays invisible to the
    rule's own tests; duplicate ids are rejected exactly like duplicate
    scheduler names in :func:`repro.schedulers.registry.register`.
    """

    def decorator(cls: type[LintRule]) -> type[LintRule]:
        if rule_id in RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        if not (cls.__doc__ or "").strip():
            raise ValueError(f"lint rule {rule_id!r} needs a docstring")
        cls.id = rule_id
        cls.scopes = scopes
        cls.title = cls.__doc__.strip().splitlines()[0]
        RULES[rule_id] = cls
        return cls

    return decorator


def make_rules(select: Iterable[str] | None = None) -> list[LintRule]:
    """Fresh rule instances for one lint run (all, or the named subset)."""
    if select is None:
        picked = sorted(RULES)
    else:
        picked = list(select)
        unknown = [r for r in picked if r not in RULES]
        if unknown:
            known = ", ".join(sorted(RULES))
            raise ValueError(f"unknown lint rule(s) {unknown!r}; known: {known}")
    return [RULES[rule_id]() for rule_id in picked]


def rule_ids() -> list[str]:
    """All registered rule ids, sorted."""
    return sorted(RULES)


#: the inline escape hatch: ``# sfs-lint: disable=SFS001,SFS005`` (or all)
_DISABLE_RE = re.compile(r"#\s*sfs-lint:\s*disable=([A-Za-z0-9_,\s]+|all)")


def disabled_ids_by_line(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line.

    The special id ``all`` suppresses every rule on the line. A pragma
    on a comment-only line waives the *next* line instead, so long
    statements can keep their waiver (and its justification) on the
    line above. Scanning raw source lines (rather than the token
    stream) keeps the pragma usable even on lines the parser
    attributes to a different statement.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(text)
        if not match:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        target = lineno + 1 if text.lstrip().startswith("#") else lineno
        out[target] = out.get(target, frozenset()) | ids
    return out
