"""A purpose-built C tokenizer for the compiled-boundary checker.

This is not a C parser — it recognises exactly the handful of shapes
the conformance checker (:mod:`.cboundary`) needs to read out of
``src/repro/sim/_engine.c``:

- ``PyMethodDef``/``PyGetSetDef``/``PyMemberDef`` initializer tables
  (the first string literal of each ``{...}`` entry is the exposed
  name),
- ``PyUnicode_InternFromString("...")`` calls (the attribute/dict-key
  names the C code reads through cached slot offsets),
- one function body and one ``var = expr;`` assignment inside it (the
  ``alpha = phi * (S - v)`` expression shape), and
- every string literal, with C's adjacent-literal concatenation
  applied (exception-message parity).

Comments and preprocessor lines are stripped, string/char literals are
decoded enough for text comparison, and everything else becomes
single-character punctuation tokens. Stdlib only, by design: the
linter must run in the plain CI container before anything is built.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Token",
    "assignment_expr",
    "expr_text",
    "function_body",
    "interned_strings",
    "merge_adjacent_strings",
    "string_literals",
    "table_entries",
    "tokenize",
]

#: simple-escape decoding for string/char literals (enough for text
#: comparison; unknown escapes keep their backslash verbatim)
_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    '"': '"',
    "'": "'",
    "\\": "\\",
}

_ID_START = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is id, num, str, char or punct."""

    kind: str
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Tokenize C source, dropping comments and preprocessor lines."""
    tokens: list[Token] = []
    i, n, line = 0, len(source), 1
    bol = True  # only whitespace seen since the last newline
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            bol = True
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                j = n - 2
            line += source.count("\n", i, j)
            i = j + 2
            continue
        if ch == "#" and bol:
            # Preprocessor line (with backslash continuations).
            while i < n:
                j = source.find("\n", i)
                if j < 0:
                    i = n
                    break
                if source[j - 1] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        bol = False
        if ch == '"' or ch == "'":
            quote = ch
            start_line = line
            j = i + 1
            buf: list[str] = []
            while j < n and source[j] != quote:
                c = source[j]
                if c == "\\" and j + 1 < n:
                    nxt = source[j + 1]
                    buf.append(_ESCAPES.get(nxt, "\\" + nxt))
                    j += 2
                    continue
                if c == "\n":
                    line += 1
                buf.append(c)
                j += 1
            kind = "str" if quote == '"' else "char"
            tokens.append(Token(kind, "".join(buf), start_line))
            i = j + 1
            continue
        if ch in _ID_START:
            j = i + 1
            while j < n and source[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", source[i:j], line))
            i = j
            continue
        if ch in _DIGITS:
            j = i + 1
            while j < n and (
                source[j] in _ID_CONT
                or source[j] == "."
                or (source[j] in "+-" and source[j - 1] in "eEpP")
            ):
                j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        tokens.append(Token("punct", ch, line))
        i += 1
    return tokens


def merge_adjacent_strings(tokens: list[Token]) -> list[Token]:
    """Apply C's adjacent-string-literal concatenation."""
    out: list[Token] = []
    for tok in tokens:
        if tok.kind == "str" and out and out[-1].kind == "str":
            prev = out.pop()
            out.append(Token("str", prev.text + tok.text, prev.line))
        else:
            out.append(tok)
    return out


def string_literals(tokens: list[Token]) -> list[Token]:
    """Every string literal, post-concatenation, in source order."""
    return [t for t in merge_adjacent_strings(tokens) if t.kind == "str"]


def interned_strings(tokens: list[Token]) -> list[Token]:
    """Arguments of every ``PyUnicode_InternFromString("...")`` call."""
    out: list[Token] = []
    for i, tok in enumerate(tokens):
        if (
            tok.kind == "id"
            and tok.text == "PyUnicode_InternFromString"
            and i + 2 < len(tokens)
            and tokens[i + 1].text == "("
            and tokens[i + 2].kind == "str"
        ):
            out.append(tokens[i + 2])
    return out


def table_entries(tokens: list[Token], table_name: str) -> list[Token] | None:
    """The entry names of an array-of-struct initializer table.

    Given ``static PyMethodDef Engine_methods[] = { {"step", ...}, ...
    {NULL} };`` returns the first string literal of each ``{...}``
    entry (``{NULL}`` sentinels contribute nothing). Returns None when
    no initializer named ``table_name`` exists.
    """
    start = None
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != table_name:
            continue
        j = i + 1
        # Optional [ ... ] after the name, then = {
        if j < len(tokens) and tokens[j].text == "[":
            while j < len(tokens) and tokens[j].text != "]":
                j += 1
            j += 1
        if (
            j + 1 < len(tokens)
            and tokens[j].text == "="
            and tokens[j + 1].text == "{"
        ):
            start = j + 1
            break
    if start is None:
        return None
    entries: list[Token] = []
    depth = 0
    expecting_name = False
    for tok in tokens[start:]:
        if tok.text == "{" and tok.kind == "punct":
            depth += 1
            expecting_name = depth == 2
        elif tok.text == "}" and tok.kind == "punct":
            depth -= 1
            if depth == 0:
                break
        elif expecting_name and tok.kind == "str":
            entries.append(tok)
            expecting_name = False
    return entries


def function_body(tokens: list[Token], name: str) -> list[Token] | None:
    """The brace-balanced body tokens of function ``name``'s definition.

    Skips declarations (``name(...);``) and call sites; the definition
    is the occurrence whose parameter list is followed by ``{``.
    """
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != name:
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        j = i + 1
        depth = 0
        while j < n:
            if tokens[j].text == "(":
                depth += 1
            elif tokens[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j + 1 >= n or tokens[j + 1].text != "{":
            continue
        body_start = j + 2
        depth = 1
        k = body_start
        while k < n:
            if tokens[k].text == "{" and tokens[k].kind == "punct":
                depth += 1
            elif tokens[k].text == "}" and tokens[k].kind == "punct":
                depth -= 1
                if depth == 0:
                    return tokens[body_start:k]
            k += 1
    return None


def assignment_expr(tokens: list[Token], var: str) -> list[Token] | None:
    """The right-hand side of the first ``var = <expr>;`` assignment.

    Comparison operators are two adjacent punct tokens here, so a
    lone ``=`` preceded/followed by another operator char is skipped
    (``==``, ``!=``, ``<=``, ``>=``).
    """
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != var:
            continue
        if i + 1 >= n or tokens[i + 1].text != "=":
            continue
        if i + 2 < n and tokens[i + 2].text == "=":
            continue  # var == ...
        if i > 0 and tokens[i - 1].text in ("=", "!", "<", ">"):
            continue
        rhs: list[Token] = []
        j = i + 2
        while j < n and tokens[j].text != ";":
            rhs.append(tokens[j])
            j += 1
        return rhs
    return None


def expr_text(tokens: list[Token]) -> str:
    """Whitespace-free canonical text of an expression token list."""
    return "".join(t.text for t in tokens)
