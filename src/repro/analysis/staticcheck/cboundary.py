"""Compiled-boundary conformance checker (rules SFS010/SFS011).

Cross-checks ``src/repro/sim/_engine.c`` against its pure-Python
reference modules using the declarative manifest in
:mod:`.cboundary_manifest` and the tokenizer in :mod:`.csrc`:

- **SFS010 (mirror surface)**: the C method/getset/member tables must
  expose exactly the declared mirror surface, nothing dropped and
  nothing undeclared, and the Python twin class must still provide
  every mirrored name.
- **SFS011 (mirror drift)**: the interned attribute/dict-key names the
  C reads through cached slot offsets must equal the declared set and
  still exist on the Python side; the ``alpha = phi * (S - v)``
  expression must match ``FloatTags.surplus`` token for token under
  the declared variable map; env flags and exception messages must
  agree on both sides.

Runs before the extension is ever built (pure text/AST analysis), so
the CI compiled leg can fail fast on drift even where gcc is absent.
Entry point: :func:`check_cboundary`, wired into the lint engine via
``lint --cboundary``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.staticcheck import cboundary_manifest as manifest
from repro.analysis.staticcheck import csrc
from repro.analysis.staticcheck.rules import Violation

__all__ = ["check_cboundary"]

#: printf-style directives (``%R``, ``%zd``, ...) -> ``{}``; ``%%`` -> ``%``
_C_FMT = re.compile(
    r"%(?:%|[#0\- +]*[0-9*]*(?:\.[0-9*]+)?(?:hh|h|ll|l|j|z|t|L)?[a-zA-Z])"
)


def _c_skeleton(text: str) -> str:
    """Normalize a C format string to the shared ``{}`` skeleton."""
    return _C_FMT.sub(lambda m: "%" if m.group(0) == "%%" else "{}", text)


def _py_skeletons(tree: ast.AST) -> set[str]:
    """Every string/f-string in a module, holes normalized to ``{}``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.JoinedStr):
            parts = []
            for value in node.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append("{}")
            out.add("".join(parts))
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
    return out


def _class_def(tree: ast.AST, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _class_surface(cls: ast.ClassDef) -> set[str]:
    """Names a class provides: defs, properties, slots, self-attributes."""
    names: set[str] = set()
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(item.name)
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and isinstance(sub.ctx, ast.Store)
                ):
                    names.add(sub.attr)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    for sub in ast.walk(item.value):
                        if isinstance(sub, ast.Constant) and isinstance(
                            sub.value, str
                        ):
                            names.add(sub.value)
    return names


def _subscript_keys(tree: ast.AST, receiver: str) -> set[str]:
    """String keys subscripted on ``<anything>.<receiver>`` or ``receiver``."""
    keys: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Subscript):
            continue
        value = node.value
        named = (
            isinstance(value, ast.Attribute) and value.attr == receiver
        ) or (isinstance(value, ast.Name) and value.id == receiver)
        if not named:
            continue
        sl = node.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
            keys.add(sl.value)
    return keys


def _env_reads(tree: ast.AST) -> set[str]:
    """First string argument of os.environ.get / os.getenv calls."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr not in ("get", "getenv"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                out.add(value)
    return out


def _render_py_expr(node: ast.AST, name_map: dict[str, str]) -> str | None:
    """Render an arithmetic expression to the C token-text form.

    Names are translated through ``name_map`` (Python name -> C name);
    nested binary operands keep explicit parentheses so the rendering
    is comparable with the C source's token text.
    """
    ops = {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.Mod: "%",
    }
    if isinstance(node, ast.Name):
        return name_map.get(node.id, node.id)
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.BinOp) and type(node.op) in ops:
        left = _render_py_expr(node.left, name_map)
        right = _render_py_expr(node.right, name_map)
        if left is None or right is None:
            return None
        if isinstance(node.left, ast.BinOp):
            left = f"({left})"
        if isinstance(node.right, ast.BinOp):
            right = f"({right})"
        return f"{left}{ops[type(node.op)]}{right}"
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _render_py_expr(node.operand, name_map)
        return None if inner is None else f"-{inner}"
    return None


class _Checker:
    """One conformance run: parses everything once, collects violations."""

    def __init__(self, root: Path, c_path: Path | None) -> None:
        self.root = root
        self.c_path = c_path if c_path is not None else root / manifest.C_SOURCE
        self.c_rel = self._rel(self.c_path)
        self.out: list[Violation] = []
        self._trees: dict[str, ast.AST | None] = {}

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def add(self, rule: str, path: str, line: int, message: str) -> None:
        self.out.append(
            Violation(rule=rule, path=path, line=line, col=0, message=message)
        )

    def tree(self, rel_path: str) -> ast.AST | None:
        """Parse (and cache) a repo-relative Python reference file."""
        if rel_path not in self._trees:
            file = self.root / rel_path
            try:
                self._trees[rel_path] = ast.parse(
                    file.read_text(encoding="utf-8"), filename=str(file)
                )
            except (OSError, SyntaxError, UnicodeDecodeError) as exc:
                self._trees[rel_path] = None
                self.add(
                    "SFS010",
                    rel_path,
                    1,
                    f"python reference file is unreadable "
                    f"({exc.__class__.__name__}); the compiled-boundary "
                    "manifest points at it",
                )
        return self._trees[rel_path]

    # ------------------------------------------------------------------
    # SFS010: mirror surface
    # ------------------------------------------------------------------

    def check_table(
        self,
        table: str | None,
        expected: tuple[str, ...],
        what: str,
        c_type: str,
        py_class: str,
    ) -> None:
        if table is None:
            return
        entries = csrc.table_entries(self.tokens, table)
        if entries is None:
            self.add(
                "SFS010",
                self.c_rel,
                1,
                f"C table {table!r} (the {c_type} {what} surface) was not "
                "found; cboundary_manifest expects it",
            )
            return
        names = {t.text: t.line for t in entries}
        for name in expected:
            if name not in names:
                self.add(
                    "SFS010",
                    self.c_rel,
                    min(names.values(), default=1),
                    f"mirrored {what} {name!r} declared in cboundary_manifest "
                    f"is missing from C table {table} — the compiled "
                    f"{c_type} no longer matches {py_class}",
                )
        for name in sorted(set(names) - set(expected)):
            self.add(
                "SFS010",
                self.c_rel,
                names[name],
                f"C table {table} exposes undeclared {what} {name!r}; "
                "declare the mirror in cboundary_manifest so conformance "
                "stays checked",
            )

    def check_type_mirrors(self) -> None:
        for tm in manifest.TYPE_MIRRORS:
            self.check_table(
                tm.methods_table, tm.methods, "method", tm.c_type, tm.py_class
            )
            self.check_table(
                tm.getset_table, tm.getsets, "getset", tm.c_type, tm.py_class
            )
            self.check_table(
                tm.members_table, tm.members, "member", tm.c_type, tm.py_class
            )
            tree = self.tree(tm.py_file)
            if tree is None:
                continue
            cls = _class_def(tree, tm.py_class)
            if cls is None:
                self.add(
                    "SFS010",
                    tm.py_file,
                    1,
                    f"class {tm.py_class!r} mirrored by C type {tm.c_type} "
                    "was not found; update cboundary_manifest or restore it",
                )
                continue
            surface = _class_surface(cls)
            for name in tm.methods + tm.getsets + tm.members:
                if name not in surface:
                    self.add(
                        "SFS010",
                        tm.py_file,
                        cls.lineno,
                        f"{tm.py_class} no longer provides {name!r}, which "
                        f"the compiled {tm.c_type} mirrors — pure and "
                        "compiled surfaces have drifted",
                    )

    def check_module_functions(self) -> None:
        entries = csrc.table_entries(self.tokens, manifest.MODULE_FUNCTIONS_TABLE)
        if entries is None:
            self.add(
                "SFS010",
                self.c_rel,
                1,
                f"C table {manifest.MODULE_FUNCTIONS_TABLE!r} (module "
                "function surface) was not found",
            )
            return
        names = {t.text: t.line for t in entries}
        for name in manifest.MODULE_FUNCTIONS:
            if name not in names:
                self.add(
                    "SFS010",
                    self.c_rel,
                    min(names.values(), default=1),
                    f"mirrored module function {name!r} declared in "
                    "cboundary_manifest is missing from C table "
                    f"{manifest.MODULE_FUNCTIONS_TABLE}",
                )
        for name in sorted(set(names) - set(manifest.MODULE_FUNCTIONS)):
            self.add(
                "SFS010",
                self.c_rel,
                names[name],
                f"C exports undeclared module function {name!r}; declare "
                "the mirror in cboundary_manifest",
            )

    # ------------------------------------------------------------------
    # SFS011: mirror drift
    # ------------------------------------------------------------------

    def check_interned(self) -> None:
        declared = {s.interned for s in manifest.SLOT_MIRRORS} | {
            d.interned for d in manifest.DICT_KEY_MIRRORS
        }
        actual = {t.text: t.line for t in csrc.interned_strings(self.tokens)}
        for name in sorted(set(actual) - declared):
            self.add(
                "SFS011",
                self.c_rel,
                actual[name],
                f"C interns attribute/key name {name!r} that is not declared "
                "in cboundary_manifest — an undeclared (or stale) "
                "slot-offset read",
            )
        for name in sorted(declared - set(actual)):
            self.add(
                "SFS011",
                self.c_rel,
                1,
                f"cboundary_manifest declares interned name {name!r} but "
                "_engine.c no longer interns it; update the manifest with "
                "the rename",
            )

    def check_slot_mirrors(self) -> None:
        for sm in manifest.SLOT_MIRRORS:
            tree = self.tree(sm.py_file)
            if tree is None:
                continue
            cls = _class_def(tree, sm.py_class)
            if cls is None:
                self.add(
                    "SFS011",
                    sm.py_file,
                    1,
                    f"class {sm.py_class!r} (slot-offset target of interned "
                    f"{sm.interned!r}) was not found",
                )
                continue
            if sm.interned not in _class_surface(cls):
                self.add(
                    "SFS011",
                    sm.py_file,
                    cls.lineno,
                    f"C reads attribute {sm.interned!r} of {sm.py_class} via "
                    "a cached slot offset, but the class no longer has it — "
                    "a stale slot offset (renamed or removed attribute)",
                )

    def check_dict_keys(self) -> None:
        for dk in manifest.DICT_KEY_MIRRORS:
            tree = self.tree(dk.py_file)
            if tree is None:
                continue
            if dk.interned not in _subscript_keys(tree, dk.receiver):
                self.add(
                    "SFS011",
                    dk.py_file,
                    1,
                    f"C reads/writes {dk.receiver}[{dk.interned!r}] but "
                    f"{dk.py_file} never subscripts that key on "
                    f"{dk.receiver!r}; the shared per-task dict keys have "
                    "drifted",
                )

    def check_exprs(self) -> None:
        for em in manifest.ALPHA_EXPRS:
            body = csrc.function_body(self.tokens, em.c_function)
            if body is None:
                self.add(
                    "SFS011",
                    self.c_rel,
                    1,
                    f"C function {em.c_function!r} (holder of the mirrored "
                    f"{em.c_var} expression) was not found",
                )
                continue
            rhs = csrc.assignment_expr(body, em.c_var)
            if rhs is None:
                self.add(
                    "SFS011",
                    self.c_rel,
                    body[0].line,
                    f"no `{em.c_var} = ...;` assignment in {em.c_function}; "
                    "the mirrored expression is gone",
                )
                continue
            c_text = csrc.expr_text(rhs)
            py_text = self._py_expr_text(em)
            if py_text is None:
                continue  # the py-side violation was already recorded
            if c_text != py_text:
                self.add(
                    "SFS011",
                    self.c_rel,
                    rhs[0].line,
                    f"C computes {em.c_var} = {c_text} but "
                    f"{em.py_class}.{em.py_method} computes {py_text} under "
                    "the declared variable map; expression shape and "
                    "operand order must match bit for bit",
                )

    def _py_expr_text(self, em: manifest.ExprMirror) -> str | None:
        tree = self.tree(em.py_file)
        if tree is None:
            return None
        cls = _class_def(tree, em.py_class)
        method = None
        if cls is not None:
            for item in cls.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == em.py_method
                ):
                    method = item
                    break
        if method is None:
            self.add(
                "SFS011",
                em.py_file,
                1,
                f"{em.py_class}.{em.py_method} (python reference of the C "
                f"{em.c_var} expression) was not found",
            )
            return None
        ret = None
        for sub in ast.walk(method):
            if isinstance(sub, ast.Return) and sub.value is not None:
                ret = sub.value
                break
        if ret is None:
            self.add(
                "SFS011",
                em.py_file,
                method.lineno,
                f"{em.py_class}.{em.py_method} has no return expression to "
                "mirror",
            )
            return None
        name_map = {py: c for c, py in em.var_map}
        rendered = _render_py_expr(ret, name_map)
        if rendered is None:
            self.add(
                "SFS011",
                em.py_file,
                ret.lineno,
                f"{em.py_class}.{em.py_method}'s return expression is not "
                "plain arithmetic; the conformance checker cannot compare "
                "it to the C mirror",
            )
        return rendered

    def check_env_flags(self) -> None:
        declared = set(manifest.ENV_FLAGS)
        seen: set[str] = set()
        for rel in manifest.ENV_FLAG_FILES:
            tree = self.tree(rel)
            if tree is not None:
                seen |= _py_skeletons(tree)
        for flag in manifest.ENV_FLAGS:
            if flag not in seen:
                self.add(
                    "SFS011",
                    manifest.ENV_FLAG_FILES[0],
                    1,
                    f"declared env flag {flag!r} no longer appears in the "
                    "python reference files; update cboundary_manifest or "
                    "restore the flag",
                )
        for rel in manifest.ENV_SCAN_FILES:
            tree = self.tree(rel)
            if tree is None:
                continue
            for name in sorted(_env_reads(tree)):
                if name.startswith("SFS_") and name not in declared:
                    self.add(
                        "SFS011",
                        rel,
                        1,
                        f"env flag {name!r} is read here but not declared in "
                        "cboundary_manifest.ENV_FLAGS; the compiled engine "
                        "will not honour it",
                    )

    def check_exceptions(self) -> None:
        c_skels = {
            _c_skeleton(t.text): t.line
            for t in csrc.string_literals(self.tokens)
        }
        for ex in manifest.EXCEPTION_MIRRORS:
            if ex.skeleton not in c_skels:
                self.add(
                    "SFS011",
                    self.c_rel,
                    1,
                    f"C no longer raises the mirrored message "
                    f"{ex.skeleton!r}; pure and compiled error surfaces "
                    "have drifted",
                )
            tree = self.tree(ex.py_file)
            if tree is not None and ex.skeleton not in _py_skeletons(tree):
                self.add(
                    "SFS011",
                    ex.py_file,
                    1,
                    f"python engine no longer raises the mirrored message "
                    f"{ex.skeleton!r}; pure and compiled error surfaces "
                    "have drifted",
                )

    def run(self) -> list[Violation]:
        try:
            source = self.c_path.read_text(encoding="utf-8")
        except OSError as exc:
            self.add(
                "SFS010",
                self.c_rel,
                1,
                f"compiled source {self.c_rel} is unreadable "
                f"({exc.__class__.__name__}); cboundary_manifest.C_SOURCE "
                "points at it",
            )
            return self.out
        self.tokens = csrc.tokenize(source)
        self.check_type_mirrors()
        self.check_module_functions()
        self.check_interned()
        self.check_slot_mirrors()
        self.check_dict_keys()
        self.check_exprs()
        self.check_env_flags()
        self.check_exceptions()
        return sorted(
            set(self.out), key=lambda v: (v.path, v.line, v.col, v.rule, v.message)
        )


def check_cboundary(
    root: str | Path, c_path: str | Path | None = None
) -> list[Violation]:
    """Run the full conformance check; returns sorted violations.

    ``root`` is the repo root (the directory holding ``src/``).
    ``c_path`` overrides the C source location — the fault-injection
    tests point it at mutated copies of ``_engine.c``.
    """
    return _Checker(Path(root), None if c_path is None else Path(c_path)).run()
