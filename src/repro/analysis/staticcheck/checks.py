"""The repo-specific lint rules (SFS001-SFS011).

Each rule encodes one determinism or soundness convention the
reproduction depends on:

- goldens and the perf-trend gate assume byte-identical reruns, which
  dies the moment simulation code reads the wall clock or draws from
  an unseeded RNG (SFS001, SFS002) or leaks hash order into rendered
  output (SFS003);
- the registry pattern every subsystem copies (schedulers, metrics,
  backends, audit checks, lint rules) only stays navigable if entries
  are documented and uniquely named (SFS004);
- tag/surplus arithmetic is bit-exact by construction, so a float
  ``==`` outside the fixed-point modules is either a bug or a
  deliberate bit-identity check that deserves a waiver comment
  (SFS005);
- every execution backend pickles Scenario/SweepCell across process
  and host boundaries, which lambdas and closures silently break
  (SFS006);
- the example scenario configs are executable documentation, so one
  that stops schema-validating is a broken promise the moment someone
  copies it (SFS007);
- nondeterminism and hash order can also reach simulation code
  *transitively* through harness layers, which the interprocedural
  project analyzer catches (SFS008, SFS009; :mod:`.project`);
- the optional C engine must stay a faithful mirror of its pure-Python
  reference, pinned statically by the compiled-boundary conformance
  checker (SFS010, SFS011; :mod:`.cboundary`).

Rules are registered via :func:`repro.analysis.staticcheck.rules.rule`
and run by :mod:`repro.analysis.staticcheck.engine`. SFS008-SFS011 are
produced by their dedicated analyzers (enabled with ``lint --project``
/ ``lint --cboundary``); the classes here carry their ids, titles and
docs, and their per-file hooks are no-ops.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.staticcheck.rules import (
    SIM_SCOPES,
    LintRule,
    Violation,
    rule,
)

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "OrderLeakRule",
    "RegistryHygieneRule",
    "FloatTagEqualityRule",
    "PickleSafetyRule",
    "ScenarioConfigRule",
    "TransitiveNondeterminismRule",
    "UnorderedEscapeRule",
    "MirrorSurfaceRule",
    "MirrorDriftRule",
]


def _call_name(func: ast.AST) -> str | None:
    """The bare callee name of a call (``f`` for both ``f()``/``m.f()``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(node: ast.AST) -> str | None:
    """Reconstruct a dotted name (``numpy.random``), or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


# ----------------------------------------------------------------------
# SFS001: unseeded randomness in simulation code
# ----------------------------------------------------------------------

#: numpy.random attributes that are fine: explicit generator plumbing
_NUMPY_OK = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64"})


@rule("SFS001", scopes=SIM_SCOPES)
class UnseededRandomRule(LintRule):
    """Simulation code must thread seeded RNGs, never the module-level ones.

    ``random.<fn>()`` and ``numpy.random.<fn>()`` draw from interpreter-
    global state: any import-order or call-order change reshuffles every
    stream, and goldens stop reproducing. ``random.Random(seed)`` /
    ``numpy.random.default_rng(seed)`` instances threaded through the
    scenario are the only sanctioned sources; constructing either
    *without* a seed is flagged too.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, path)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(node, path)

    def _check_call(self, node: ast.Call, path: str) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = _dotted(func.value)
        if owner == "random":
            if func.attr == "SystemRandom":
                yield self.violation(
                    path, node, "random.SystemRandom is nondeterministic by design"
                )
            elif func.attr == "Random":
                if not node.args and not node.keywords:
                    yield self.violation(
                        path,
                        node,
                        "random.Random() without a seed; pass an explicit seed",
                    )
            else:
                yield self.violation(
                    path,
                    node,
                    f"module-level random.{func.attr}() draws from global "
                    "state; thread a seeded random.Random instead",
                )
        elif owner in ("numpy.random", "np.random"):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self.violation(
                        path,
                        node,
                        "numpy default_rng() without a seed; pass an explicit seed",
                    )
            elif func.attr not in _NUMPY_OK:
                yield self.violation(
                    path,
                    node,
                    f"{owner}.{func.attr}() uses numpy's global RNG state; "
                    "thread a seeded Generator instead",
                )

    def _check_import(self, node: ast.ImportFrom, path: str) -> Iterator[Violation]:
        if node.module == "random":
            bad = [
                a.name
                for a in node.names
                if a.name not in ("Random", "SystemRandom")
            ]
            if bad:
                yield self.violation(
                    path,
                    node,
                    f"importing {', '.join(bad)} from random invites "
                    "global-state draws; import Random and seed it",
                )
        elif node.module == "numpy.random":
            bad = [
                a.name
                for a in node.names
                if a.name not in _NUMPY_OK | {"default_rng"}
            ]
            if bad:
                yield self.violation(
                    path,
                    node,
                    f"importing {', '.join(bad)} from numpy.random invites "
                    "global-state draws; use a seeded Generator",
                )


# ----------------------------------------------------------------------
# SFS002: wall-clock reads in simulation code
# ----------------------------------------------------------------------

_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


@rule("SFS002", scopes=SIM_SCOPES)
class WallClockRule(LintRule):
    """Simulation code must never read the wall clock.

    Inside the simulator, "now" is ``machine.now`` — engine time.
    ``time.time()`` / ``datetime.now()`` smuggle host wall-clock into
    results, so identical scenarios stop producing identical output.
    (Harness code *outside* the sim scopes — e.g. the execution
    backends' ``wall_s`` measurement — may read clocks freely.)
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                owner = _dotted(func.value)
                if owner == "time" and func.attr in _WALL_CLOCK_FNS:
                    yield self.violation(
                        path,
                        node,
                        f"time.{func.attr}() reads the host clock; use "
                        "simulation time (machine.now)",
                    )
                elif (
                    func.attr in _DATETIME_NOW
                    and owner is not None
                    and (owner in ("datetime", "date") or owner.startswith("datetime."))
                ):
                    yield self.violation(
                        path,
                        node,
                        f"{owner}.{func.attr}() reads the host clock; "
                        "simulation code must be time-free",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _WALL_CLOCK_FNS]
                if bad:
                    yield self.violation(
                        path,
                        node,
                        f"importing {', '.join(bad)} from time invites "
                        "wall-clock reads in simulation code",
                    )


# ----------------------------------------------------------------------
# SFS003: hash-order leaks into ordered output
# ----------------------------------------------------------------------

#: sinks whose output order is observable (lists, rendered strings, ...)
_ORDERED_SINKS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})


@rule("SFS003")
class OrderLeakRule(LintRule):
    """Unordered sets must not feed sort-free ordered output.

    Iterating a ``set`` observes string-hash order, which varies with
    ``PYTHONHASHSEED`` — the classic source of almost-always-identical
    goldens. Flagged: ``for``-loops and list/generator/dict
    comprehensions over set expressions, and sets (or dict views)
    passed straight to ``list``/``tuple``/``enumerate``/``join``.
    Wrap the set in ``sorted(...)`` to fix. Dict iteration itself is
    insertion-ordered (deterministic here, where insertion follows
    event order) and is deliberately not flagged.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        set_names = _set_assigned_names(tree)

        def is_set(node: ast.AST) -> bool:
            return _is_set_expr(node, set_names)

        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_set(node.iter):
                yield self.violation(
                    path,
                    node.iter,
                    "iterating a set leaks hash order; wrap in sorted(...)",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if is_set(comp.iter):
                        yield self.violation(
                            path,
                            comp.iter,
                            "comprehension over a set leaks hash order; "
                            "wrap in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _ORDERED_SINKS and node.args and is_set(node.args[0]):
                    yield self.violation(
                        path,
                        node,
                        f"{name}() over a set leaks hash order; wrap in sorted(...)",
                    )
                elif (
                    name == "join"
                    and isinstance(node.func, ast.Attribute)
                    and node.args
                    and (is_set(node.args[0]) or _is_dict_view(node.args[0]))
                ):
                    yield self.violation(
                        path,
                        node,
                        "join() over an unordered/unsorted collection "
                        "renders nondeterministic text; wrap in sorted(...)",
                    )


def _set_assigned_names(tree: ast.AST) -> frozenset[str]:
    """Names only ever assigned syntactic set values (cheap inference)."""
    sets: set[str] = set()
    others: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, frozenset()):
                        sets.add(target.id)
                    else:
                        others.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                if _is_set_expr(node.value, frozenset()):
                    sets.add(node.target.id)
                else:
                    others.add(node.target.id)
    return frozenset(sets - others)


def _is_set_expr(node: ast.AST, set_names: frozenset[str]) -> bool:
    """Is ``node`` syntactically an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


def _is_dict_view(node: ast.AST) -> bool:
    """A bare ``d.values()`` / ``d.keys()`` / ``d.items()`` call?"""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys", "items")
        and not node.args
        and not node.keywords
    )


# ----------------------------------------------------------------------
# SFS004: registry hygiene
# ----------------------------------------------------------------------

#: module-level dict literals that act as registries
_REGISTRY_DICTS = frozenset(
    {"METRICS", "COST_MODELS", "BACKENDS", "CHECKS", "ARRIVALS", "DEMANDS"}
)
_REGISTER_DECORATORS = frozenset(
    {"register", "rule", "register_arrival", "register_demand"}
)
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@rule("SFS004")
class RegistryHygieneRule(LintRule):
    """Every registered entry needs a docstring and a unique, sane name.

    Covers the ``@register``-style decorators (schedulers, lint rules,
    audit checks) and the module-level registry dict literals
    (``METRICS``, ``COST_MODELS``, ``BACKENDS``, ``CHECKS``): names
    must be unique across the whole scanned file set (a duplicate
    either raises at import or, in a dict literal, silently wins),
    contain no whitespace or exotic characters, and the registered
    function/class must carry a docstring — the registry *is* the
    discovery surface (``sfs-experiment list``), so an undocumented
    entry is invisible in the place users look first.
    """

    def __init__(self) -> None:
        #: registered name -> "path:line" of first sighting (per run)
        self._seen: dict[str, str] = {}
        self._dupes: list[Violation] = []

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        module_docs = _module_level_docstrings(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._check_decorated(node, path)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in _REGISTRY_DICTS:
                        yield from self._check_dict_registry(
                            node.value, module_docs, path
                        )

    def _check_decorated(self, node, path: str) -> Iterator[Violation]:
        names = []
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            deco_name = _call_name(deco.func)
            if deco_name not in _REGISTER_DECORATORS:
                continue
            if (
                deco.args
                and isinstance(deco.args[0], ast.Constant)
                and isinstance(deco.args[0].value, str)
            ):
                names.append((deco.args[0].value, deco))
        if not names:
            return
        if not ast.get_docstring(node):
            yield self.violation(
                path,
                node,
                f"registered entry {node.name!r} has no docstring; the "
                "registry is the discovery surface",
            )
        for name, deco in names:
            yield from self._note_name(name, deco, path)

    def _check_dict_registry(
        self, dct: ast.Dict, module_docs: dict[str, bool], path: str
    ) -> Iterator[Violation]:
        for key, value in zip(dct.keys, dct.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            yield from self._note_name(key.value, key, path)
            if isinstance(value, ast.Name) and module_docs.get(value.id) is False:
                yield self.violation(
                    path,
                    key,
                    f"registry entry {key.value!r} maps to undocumented "
                    f"function {value.id!r}; add a docstring",
                )

    def _note_name(self, name: str, node: ast.AST, path: str) -> Iterator[Violation]:
        if not _NAME_RE.match(name):
            yield self.violation(
                path,
                node,
                f"registered name {name!r} is not a sane registry key "
                "(letters, digits, . _ - only)",
            )
        where = f"{path}:{getattr(node, 'lineno', 1)}"
        first = self._seen.setdefault(name, where)
        if first != where:
            self._dupes.append(
                self.violation(
                    path,
                    node,
                    f"registered name {name!r} already used at {first}; "
                    "later registration shadows or raises",
                )
            )

    def finish(self) -> Iterator[Violation]:
        return iter(self._dupes)


def _module_level_docstrings(tree: ast.AST) -> dict[str, bool]:
    """Module-level function name -> whether it has a docstring."""
    out: dict[str, bool] = {}
    for node in getattr(tree, "body", []):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = bool(ast.get_docstring(node))
    return out


# ----------------------------------------------------------------------
# SFS005: float equality on tag/surplus arithmetic
# ----------------------------------------------------------------------

#: attribute names that mean "this value is a tag/surplus quantity"
_TAG_ATTRS = frozenset(
    {
        "phi",
        "virtual_time",
        "_vtime",
        "_v_at_recompute",
        "_last_finish",
    }
)
#: callee names whose result is a tag/surplus quantity
_TAG_CALLS = frozenset({"surplus_of", "surplus", "finish_tag", "start_tag"})
#: modules where == on tags is the point (kernel fixed-point arithmetic)
_TAG_WHITELIST_SUFFIXES = ("core/fixed_point.py",)


@rule("SFS005", scopes=SIM_SCOPES)
class FloatTagEqualityRule(LintRule):
    """No float ``==``/``!=`` on tag/surplus arithmetic outside fixed-point.

    Start tags, finish tags, phis and surpluses are floats whose exact
    bit patterns depend on operation order; an equality test on them is
    either a latent epsilon bug or an intentional bit-identity check.
    The intentional ones (change detection, oracle agreement) carry a
    ``# sfs-lint: disable=SFS005`` waiver with a justifying comment;
    the kernel fixed-point module, where tags are integers and ``==``
    is exact, is whitelisted wholesale. Scoped to simulation code:
    tests asserting hand-computed exact tag values are fine.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        norm = path.replace("\\", "/")
        if any(norm.endswith(sfx) for sfx in _TAG_WHITELIST_SUFFIXES):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_tag_expr(expr) for expr in operands):
                yield self.violation(
                    path,
                    node,
                    "float ==/!= on tag/surplus arithmetic; use the tag "
                    "arithmetic strategy or an explicit tolerance (waive "
                    "intentional bit-identity checks with a comment)",
                )

    def _is_tag_expr(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Subscript):
                value = node.value
                if isinstance(value, ast.Attribute) and value.attr == "sched":
                    return True
            elif isinstance(node, ast.Attribute) and node.attr in _TAG_ATTRS:
                return True
            elif isinstance(node, ast.Call):
                if _call_name(node.func) in _TAG_CALLS:
                    return True
        return False


# ----------------------------------------------------------------------
# SFS006: pickle safety of scenario/sweep data
# ----------------------------------------------------------------------

#: constructors whose arguments must survive pickling to sweep workers
_PICKLED_CTORS = frozenset(
    {
        "Scenario",
        "TaskSpec",
        "Probe",
        "task",
        "group",
        "Sweep",
        "SweepCell",
        "ShortJobs",
        "LatCtxRing",
        "SetWeight",
        "Kill",
        "CellJob",
        "server_scenario",
        "with_",
    }
)


@rule("SFS006")
class PickleSafetyRule(LintRule):
    """Scenario/SweepCell payloads must stay pickle-safe.

    Every execution backend ships scenarios to worker processes (and,
    via the ssh worker protocol, other hosts) by pickling. Lambdas and
    nested functions pickle only by accident of never being exercised
    serially — until the first ``--backend process`` run dies. Probe
    callables and any field of the pickled dataclasses must be
    module-level.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        nested = _nested_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in _PICKLED_CTORS:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Lambda):
                        yield self.violation(
                            path,
                            sub,
                            f"lambda passed into {name}(...) will not "
                            "pickle to sweep workers; use a module-level "
                            "function",
                        )
                    elif isinstance(sub, ast.Name) and sub.id in nested:
                        yield self.violation(
                            path,
                            sub,
                            f"nested function {sub.id!r} passed into "
                            f"{name}(...) will not pickle to sweep "
                            "workers; hoist it to module level",
                        )


# ----------------------------------------------------------------------
# SFS007: example scenario configs must schema-validate
# ----------------------------------------------------------------------


@rule("SFS007")
class ScenarioConfigRule(LintRule):
    """Scenario config files must load through the schema without error.

    The ``examples/scenarios/`` library is executable documentation:
    CI runs every file, users copy them as starting points, and the
    README table links them by name. A config that stops schema-
    validating — a typoed field, a renamed arrival kind, a stale
    scheduler name — is a broken promise that only surfaces when
    someone runs it. This rule feeds each discovered ``*.yaml`` /
    ``*.yml`` / ``*.json`` config through the same
    :func:`repro.scenario.io.loads_config` pipeline the CLI uses and
    reports the first validation failure with its dotted field path.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        return iter(())

    def check_config(self, text: str, path: str) -> Iterator[Violation]:
        from repro.scenario.io import ConfigError, loads_config

        fmt = "json" if path.endswith(".json") else "yaml"
        try:
            loads_config(text, fmt=fmt)
        except ConfigError as exc:
            yield Violation(
                rule=self.id,
                path=path,
                line=1,
                col=0,
                message=f"config fails schema validation: {exc}",
            )
        except ValueError as exc:
            yield Violation(
                rule=self.id,
                path=path,
                line=1,
                col=0,
                message=f"config fails to load: {exc}",
            )


# ----------------------------------------------------------------------
# SFS008-SFS011: analyzer-produced rules (project / compiled boundary)
# ----------------------------------------------------------------------


@rule("SFS008", scopes=SIM_SCOPES)
class TransitiveNondeterminismRule(LintRule):
    """Nondeterminism must not reach simulation code through call chains.

    SFS001/SFS002 see only direct draws and clock reads; this rule's
    findings come from the interprocedural project analyzer
    (:mod:`repro.analysis.staticcheck.project`), which propagates
    RNG/wall-clock summaries over the whole-src call graph and flags
    every sim-scope call site whose out-of-scope callee transitively
    reaches one, with the full call chain in the message. Produced
    under ``lint --project``; sanctioned harness boundaries carry an
    inline ``# sfs-lint: disable=SFS008`` waiver at the call site.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        return iter(())


@rule("SFS009", scopes=SIM_SCOPES)
class UnorderedEscapeRule(LintRule):
    """Unordered iteration order must not escape into simulation code.

    The transitive companion of SFS003: a sim-scope function that
    iterates the result of an out-of-scope call whose return value is
    (transitively) a set observes hash order — invisible per-file
    because the set literal lives in the callee. Produced by the
    project analyzer under ``lint --project``; fix by sorting at the
    source or wrapping the call in ``sorted(...)``.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        return iter(())


@rule("SFS010")
class MirrorSurfaceRule(LintRule):
    """The compiled engine's mirror surface must match its manifest.

    Every method/getset/member the C extension exposes is declared in
    :mod:`repro.analysis.staticcheck.cboundary_manifest`; a dropped,
    missing or undeclared mirror is a blocking error, and the Python
    twin class must still provide every mirrored name. Produced by the
    compiled-boundary conformance checker under ``lint --cboundary``.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        return iter(())


@rule("SFS011")
class MirrorDriftRule(LintRule):
    """Compiled/pure mirror internals must not drift.

    Cross-checks the C extension's interned attribute and dict-key
    names against the actual ``__slots__``/dict-key layout of the
    Python reference, the ``alpha = phi * (S - v)`` expression shape
    against ``FloatTags.surplus`` (operand order included), env-flag
    declarations, and exception-message parity. Produced by the
    compiled-boundary conformance checker under ``lint --cboundary``.
    """

    def check(self, tree: ast.AST, source: str, path: str) -> Iterator[Violation]:
        return iter(())


def _nested_function_names(tree: ast.AST) -> frozenset[str]:
    """Names of functions defined inside other functions."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Lambda):
                visit(child, True)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return frozenset(nested)
