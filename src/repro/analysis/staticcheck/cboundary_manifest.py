"""The checked manifest of everything ``_engine.c`` mirrors.

The compiled engine (``src/repro/sim/_engine.c``) re-implements parts
of the pure-Python simulator and must stay behaviourally identical to
it (docs/ARCHITECTURE.md's compiled-boundary rules; the runtime side
is pinned by tests/test_eventq.py and the goldens). This module is the
*static* side of that contract: a declarative list of every mirrored
symbol, attribute, expression, env flag and exception message, checked
both ways by :mod:`.cboundary` (rules SFS010/SFS011).

Workflow for widening the compiled boundary (ROADMAP round 4 — e.g.
moving ``SortedTaskList`` or ``_charge`` into C):

1. Write the C code and its pure-Python twin.
2. Declare every new mirrored method/getset/member, every attribute
   name the C reads through a cached slot offset, every new env flag
   and user-facing exception message *here*.
3. ``sfs-experiment lint --cboundary`` must come back clean. An
   undeclared mirror, a dropped mirror, or a drifted name/expression
   is a blocking lint error — CI runs the check before building the
   extension, so drift is reported even where gcc is absent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ALPHA_EXPRS",
    "C_SOURCE",
    "DICT_KEY_MIRRORS",
    "ENV_FLAGS",
    "ENV_FLAG_FILES",
    "ENV_SCAN_FILES",
    "EXCEPTION_MIRRORS",
    "MODULE_FUNCTIONS",
    "MODULE_FUNCTIONS_TABLE",
    "SLOT_MIRRORS",
    "TYPE_MIRRORS",
    "DictKeyMirror",
    "ExceptionMirror",
    "ExprMirror",
    "SlotMirror",
    "TypeMirror",
]

#: the one compiled translation unit (repo-root-relative)
C_SOURCE = "src/repro/sim/_engine.c"


@dataclass(frozen=True)
class TypeMirror:
    """A C extension type mirroring a pure-Python class.

    The C tables (``*_methods``/``*_getset``/``*_members``) must
    expose exactly ``methods``/``getsets``/``members`` — nothing
    dropped, nothing undeclared — and the Python class must provide
    every one of those names (as a def, property, ``__slots__`` entry
    or instance attribute).
    """

    c_type: str
    py_file: str
    py_class: str
    methods_table: str | None
    getset_table: str | None
    members_table: str | None
    methods: tuple[str, ...]
    getsets: tuple[str, ...]
    members: tuple[str, ...] = ()


TYPE_MIRRORS: tuple[TypeMirror, ...] = (
    TypeMirror(
        c_type="Engine",
        py_file="src/repro/sim/engine.py",
        py_class="PyEngine",
        methods_table="Engine_methods",
        getset_table="Engine_getset",
        members_table=None,
        methods=("schedule_at", "schedule_after", "step", "run_until", "run"),
        getsets=("now", "events_fired", "pending", "queue_kind"),
    ),
    TypeMirror(
        c_type="EventHandle",
        py_file="src/repro/sim/engine.py",
        py_class="EventHandle",
        methods_table="Handle_methods",
        getset_table="Handle_getset",
        members_table="Handle_members",
        methods=("cancel",),
        getsets=("cancelled",),
        members=("time", "seq", "fn", "args"),
    ),
)

#: module-level functions the extension exports (its PyMethodDef table)
MODULE_FUNCTIONS: tuple[str, ...] = ("sfs_recompute",)
MODULE_FUNCTIONS_TABLE = "module_methods"


@dataclass(frozen=True)
class SlotMirror:
    """An interned attribute name the C reads via a cached slot offset.

    ``sfs_recompute`` caches ``__slots__`` member offsets per type;
    renaming the Python attribute silently degrades (or breaks) the C
    fast path, so every interned name must still be a slot/attribute
    of the declared class.
    """

    interned: str
    py_file: str
    py_class: str


SLOT_MIRRORS: tuple[SlotMirror, ...] = (
    SlotMirror("phi", "src/repro/sim/task.py", "Task"),
    SlotMirror("sched", "src/repro/sim/task.py", "Task"),
    SlotMirror("tid", "src/repro/sim/task.py", "Task"),
    SlotMirror("_keys", "src/repro/sim/runqueue.py", "SortedTaskList"),
    SlotMirror("_tasks", "src/repro/sim/runqueue.py", "SortedTaskList"),
    SlotMirror("_cached_key", "src/repro/sim/runqueue.py", "SortedTaskList"),
    SlotMirror("comparisons", "src/repro/sim/runqueue.py", "SortedTaskList"),
)


@dataclass(frozen=True)
class DictKeyMirror:
    """An interned dict key the C reads/writes in ``task.sched``.

    The Python reference must use the same literal key on the same
    receiver attribute, or the two paths stop seeing each other's
    state.
    """

    interned: str
    py_file: str
    receiver: str


DICT_KEY_MIRRORS: tuple[DictKeyMirror, ...] = (
    DictKeyMirror("S", "src/repro/core/sfs.py", "sched"),
    DictKeyMirror("alpha", "src/repro/core/sfs.py", "sched"),
)


@dataclass(frozen=True)
class ExprMirror:
    """A C arithmetic expression that must bit-match a Python one.

    ``var_map`` maps C variable names to the Python method's names.
    Operand *order* matters: IEEE-double multiplication is commutative
    in value but the contract here is "same expression, same
    evaluation order", which is what makes the bit-identity claim
    reviewable at a glance.
    """

    c_function: str
    c_var: str
    py_file: str
    py_class: str
    py_method: str
    var_map: tuple[tuple[str, str], ...]


ALPHA_EXPRS: tuple[ExprMirror, ...] = (
    ExprMirror(
        c_function="sfs_recompute",
        c_var="alpha",
        py_file="src/repro/core/fixed_point.py",
        py_class="FloatTags",
        py_method="surplus",
        var_map=(("phi", "phi"), ("S", "start"), ("v", "vtime")),
    ),
)

#: env flags both engine selections honour; each must appear as a
#: string literal in at least one of ENV_FLAG_FILES
ENV_FLAGS: tuple[str, ...] = ("SFS_ENGINE", "SFS_EVENTQ")
ENV_FLAG_FILES: tuple[str, ...] = (
    "src/repro/sim/engine.py",
    "src/repro/core/sfs.py",
)
#: sim/core modules scanned for *undeclared* ``SFS_*`` env reads
ENV_SCAN_FILES: tuple[str, ...] = (
    "src/repro/sim/engine.py",
    "src/repro/sim/eventq.py",
    "src/repro/sim/runqueue.py",
    "src/repro/core/sfs.py",
)


@dataclass(frozen=True)
class ExceptionMirror:
    """A user-facing error message both engines must raise identically.

    ``skeleton`` is the message with every interpolation slot
    (``%R``-style C directives, f-string ``{...}`` holes) normalized
    to ``{}``; it must appear verbatim on both sides.
    """

    skeleton: str
    py_file: str


EXCEPTION_MIRRORS: tuple[ExceptionMirror, ...] = (
    ExceptionMirror(
        "cannot schedule event in the past: {} < now {}",
        "src/repro/sim/engine.py",
    ),
    ExceptionMirror("delay must be >= 0, got {}", "src/repro/sim/engine.py"),
    ExceptionMirror("t_end {} is in the past (now={})", "src/repro/sim/engine.py"),
)
