"""``python -m repro.analysis.staticcheck`` — run the repo linter."""

import sys

from repro.analysis.staticcheck.engine import main

sys.exit(main())
