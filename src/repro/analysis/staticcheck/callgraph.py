"""Project-wide symbol table and call graph for the lint engine.

Parses every module of the ``repro`` package once and builds:

- a module table (import aliases, module-level functions, classes
  with single-inheritance method resolution),
- a function table keyed by qualified name
  (``repro.sim.engine.PyEngine.step``), each node carrying its
  resolved call sites and *direct effect* summaries:

  ========== ======================================================
  ``rng``    draws from interpreter-global RNG state (SFS001 logic)
  ``clock``  reads the host wall clock (SFS002 logic)
  ``global`` declares and assigns a module global
  ========== ======================================================

  plus ``returns_set`` — the function returns (or ``yield from``-s)
  a syntactic set, so its result's iteration order is hash order.

Calls are resolved conservatively: bare names via module defs and
import aliases, ``module.attr(...)`` via import aliases,
``self.m(...)``/``cls.m(...)`` through the enclosing class and its
resolvable bases. Unresolvable calls (instance methods on arbitrary
objects, ``super()``, dynamic dispatch) become no edge — the analysis
under-approximates reachability rather than guessing. Nested
functions and lambdas are merged into their enclosing function.

:mod:`.project` propagates the summaries over this graph into the
interprocedural rules SFS008/SFS009.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.staticcheck.checks import (
    _DATETIME_NOW,
    _NUMPY_OK,
    _WALL_CLOCK_FNS,
    _call_name,
    _dotted,
    _is_set_expr,
    _set_assigned_names,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassNode",
    "Effect",
    "FunctionNode",
    "ModuleNode",
    "build_callgraph",
]

#: call wrappers whose output order is observable (mirrors SFS003)
_ITER_SINKS = frozenset({"list", "tuple", "enumerate", "reversed", "iter", "join"})


@dataclass(frozen=True)
class Effect:
    """One direct nondeterminism source inside a function."""

    kind: str  # "rng" | "clock" | "global"
    detail: str
    path: str
    line: int


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with enough context for the sink rules."""

    target: str
    line: int
    col: int
    in_return: bool  # the call is the returned expression
    sink: str | None  # iteration construct consuming the result, if any


@dataclass
class FunctionNode:
    """A function or method: effects, call sites, source anchor."""

    qualname: str
    module: str
    path: str
    line: int
    returns_set: bool = False
    calls: list[CallSite] = field(default_factory=list)
    effects: list[Effect] = field(default_factory=list)


@dataclass
class ClassNode:
    """A class: raw base names plus method-name -> function qualname."""

    qualname: str
    module: str
    name: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleNode:
    """One parsed module: alias map and top-level defs."""

    name: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassNode] = field(default_factory=dict)


class CallGraph:
    """The whole-project graph; built by :func:`build_callgraph`."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleNode] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def resolve_dotted(self, dotted: str, mod: ModuleNode) -> str | None:
        """Resolve a dotted callee name in ``mod`` to a function qualname."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in mod.imports:
                expanded = ".".join([mod.imports[prefix], *parts[cut:]])
                return self._lookup_qual(expanded)
        if parts[0] in mod.functions and len(parts) == 1:
            return mod.functions[parts[0]]
        if parts[0] in mod.classes:
            cls = mod.classes[parts[0]]
            if len(parts) == 1:
                return self.lookup_method(cls, "__init__")
            if len(parts) == 2:
                return self.lookup_method(cls, parts[1])
        return None

    def _lookup_qual(self, qual: str) -> str | None:
        if qual in self.functions:
            return qual
        if qual in self.classes:
            return self.lookup_method(self.classes[qual], "__init__")
        head, _, last = qual.rpartition(".")
        if head in self.classes:
            return self.lookup_method(self.classes[head], last)
        return None

    def lookup_method(
        self, cls: ClassNode, name: str, _seen: set[str] | None = None
    ) -> str | None:
        """Find ``name`` on ``cls`` or its resolvable base classes."""
        if name in cls.methods:
            return cls.methods[name]
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        mod = self.modules.get(cls.module)
        if mod is None:
            return None
        for base in cls.bases:
            base_qual = self._resolve_class(base, mod)
            if base_qual is not None:
                found = self.lookup_method(self.classes[base_qual], name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_class(self, dotted: str, mod: ModuleNode) -> str | None:
        parts = dotted.split(".")
        if len(parts) == 1 and parts[0] in mod.classes:
            return mod.classes[parts[0]].qualname
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in mod.imports:
                qual = ".".join([mod.imports[prefix], *parts[cut:]])
                return qual if qual in self.classes else None
        return None

    def resolve_call(
        self, func: ast.AST, mod: ModuleNode, cls: ClassNode | None
    ) -> str | None:
        """Resolve one call expression's callee, or None."""
        if isinstance(func, ast.Name):
            return self.resolve_dotted(func.id, mod)
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base is None:
                return None
            if base in ("self", "cls") and cls is not None:
                return self.lookup_method(cls, func.attr)
            return self.resolve_dotted(f"{base}.{func.attr}", mod)
        return None


def build_callgraph(src_root: str | Path, package: str = "repro") -> CallGraph:
    """Parse ``src_root/package`` into a :class:`CallGraph`."""
    src_root = Path(src_root)
    graph = CallGraph()
    pending: list[tuple[FunctionNode, ast.AST, ClassNode | None, ModuleNode]] = []
    for file in sorted((src_root / package).rglob("*.py")):
        if "__pycache__" in file.parts:
            continue
        rel = file.relative_to(src_root)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modname = ".".join(parts)
        try:
            tree = ast.parse(file.read_text(encoding="utf-8"), filename=str(file))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue  # SFS000 reports unparsable files; no graph node
        mod = ModuleNode(name=modname, path=(Path(src_root.name) / rel).as_posix())
        _collect_imports(tree, mod)
        _collect_defs(tree, mod, graph, pending)
        graph.modules[modname] = mod
    for fn, node, cls, mod in pending:
        _scan_function(fn, node, cls, mod, graph)
    return graph


def _collect_imports(tree: ast.Module, mod: ModuleNode) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mod.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mod.imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                mod.imports[bound] = f"{node.module}.{alias.name}"


def _collect_defs(
    tree: ast.Module,
    mod: ModuleNode,
    graph: CallGraph,
    pending: list[tuple[FunctionNode, ast.AST, ClassNode | None, ModuleNode]],
) -> None:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{mod.name}.{node.name}"
            fn = FunctionNode(qual, mod.name, mod.path, node.lineno)
            graph.functions[qual] = fn
            mod.functions[node.name] = qual
            pending.append((fn, node, None, mod))
        elif isinstance(node, ast.ClassDef):
            cls = ClassNode(
                qualname=f"{mod.name}.{node.name}",
                module=mod.name,
                name=node.name,
                bases=tuple(
                    b for b in (_dotted(base) for base in node.bases) if b
                ),
            )
            graph.classes[cls.qualname] = cls
            mod.classes[node.name] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls.qualname}.{item.name}"
                    fn = FunctionNode(qual, mod.name, mod.path, item.lineno)
                    graph.functions[qual] = fn
                    cls.methods[item.name] = qual
                    pending.append((fn, item, cls, mod))


def _direct_effect(node: ast.Call) -> tuple[str, str] | None:
    """(kind, detail) when the call is itself an RNG/clock source."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    owner = _dotted(func.value)
    if owner is None:
        return None
    attr = func.attr
    if owner == "random":
        if attr == "SystemRandom":
            return ("rng", "random.SystemRandom()")
        if attr == "Random":
            if not node.args and not node.keywords:
                return ("rng", "random.Random() without a seed")
            return None
        return ("rng", f"random.{attr}()")
    if owner in ("numpy.random", "np.random"):
        if attr == "default_rng":
            if not node.args and not node.keywords:
                return ("rng", "numpy default_rng() without a seed")
            return None
        if attr not in _NUMPY_OK:
            return ("rng", f"{owner}.{attr}()")
        return None
    if owner == "time" and attr in _WALL_CLOCK_FNS:
        return ("clock", f"time.{attr}()")
    if attr in _DATETIME_NOW and (
        owner in ("datetime", "date") or owner.startswith("datetime.")
    ):
        return ("clock", f"{owner}.{attr}()")
    return None


def _scan_function(
    fn: FunctionNode,
    node: ast.AST,
    cls: ClassNode | None,
    mod: ModuleNode,
    graph: CallGraph,
) -> None:
    """Fill one function node's effects and call sites (nested defs merged)."""
    set_names = _set_assigned_names(node)
    iterated: dict[int, str] = {}  # id(call node) -> sink description
    returning: set[int] = set()
    global_decls: dict[str, int] = {}
    assigned: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            if isinstance(sub.iter, ast.Call):
                iterated[id(sub.iter)] = "a for loop"
        elif isinstance(sub, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in sub.generators:
                if isinstance(comp.iter, ast.Call):
                    iterated[id(comp.iter)] = "a comprehension"
        elif isinstance(sub, ast.Call):
            name = _call_name(sub.func)
            if name in _ITER_SINKS and sub.args and isinstance(sub.args[0], ast.Call):
                iterated[id(sub.args[0])] = f"{name}()"
        elif isinstance(sub, ast.Return) and sub.value is not None:
            if isinstance(sub.value, ast.Call):
                returning.add(id(sub.value))
            if _is_set_expr(sub.value, set_names):
                fn.returns_set = True
        elif isinstance(sub, ast.YieldFrom):
            if _is_set_expr(sub.value, set_names):
                fn.returns_set = True
        elif isinstance(sub, ast.Global):
            for name in sub.names:
                global_decls.setdefault(name, sub.lineno)
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
    for name in sorted(set(global_decls) & assigned):
        fn.effects.append(
            Effect(
                "global",
                f"mutates module global {name!r}",
                fn.path,
                global_decls[name],
            )
        )
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        effect = _direct_effect(sub)
        if effect is not None:
            fn.effects.append(Effect(effect[0], effect[1], fn.path, sub.lineno))
        target = graph.resolve_call(sub.func, mod, cls)
        if target is not None:
            fn.calls.append(
                CallSite(
                    target=target,
                    line=sub.lineno,
                    col=sub.col_offset,
                    in_return=id(sub) in returning,
                    sink=iterated.get(id(sub)),
                )
            )
