"""Repo-specific AST linter for determinism and soundness conventions.

Eleven rules, registered like schedulers (``@rule`` mirrors
``@register``), runnable as ``sfs-experiment lint`` or
``python -m repro.analysis.staticcheck``:

======  ==============================================================
SFS001  no module-level / unseeded RNG draws in simulation code
SFS002  no wall-clock reads in simulation code
SFS003  no set iteration feeding sort-free ordered output
SFS004  registry hygiene: docstring + unique sane name per entry
SFS005  no float ``==``/``!=`` on tag/surplus arithmetic
SFS006  Scenario/SweepCell payloads must stay pickle-safe
SFS007  example scenario configs must pass schema validation
SFS008  no call chain from sim code to unseeded RNG / wall clock
SFS009  no unordered iteration order escaping into sim code
SFS010  compiled engine mirror surface matches the manifest
SFS011  compiled engine internals (slots, keys, exprs) match Python
======  ==============================================================

SFS001-SFS007 run per file; SFS008/SFS009 need the whole project call
graph (``lint --project``, :mod:`.project`); SFS010/SFS011 cross-check
``_engine.c`` against its Python reference (``lint --cboundary``,
:mod:`.cboundary`). Waive a single finding inline with
``# sfs-lint: disable=SFSnnn``, or freeze a legacy set with
``lint --write-baseline`` / ``--baseline``. See docs/CORRECTNESS.md.
"""

from repro.analysis.staticcheck.rules import (
    RULES,
    SIM_SCOPES,
    LintRule,
    Violation,
    disabled_ids_by_line,
    make_rules,
    rule,
    rule_ids,
)
from repro.analysis.staticcheck import checks  # noqa: F401  (registers rules)
from repro.analysis.staticcheck.cboundary import check_cboundary
from repro.analysis.staticcheck.engine import (
    DEFAULT_ROOTS,
    discover_files,
    find_repo_root,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)
from repro.analysis.staticcheck.project import project_violations

__all__ = [
    "RULES",
    "SIM_SCOPES",
    "LintRule",
    "Violation",
    "DEFAULT_ROOTS",
    "check_cboundary",
    "disabled_ids_by_line",
    "discover_files",
    "find_repo_root",
    "lint_paths",
    "lint_source",
    "main",
    "make_rules",
    "project_violations",
    "render_json",
    "render_text",
    "rule",
    "rule_ids",
]
