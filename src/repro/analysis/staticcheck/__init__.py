"""Repo-specific AST linter for determinism and soundness conventions.

Seven rules, registered like schedulers (``@rule`` mirrors
``@register``), runnable as ``sfs-experiment lint`` or
``python -m repro.analysis.staticcheck``:

======  ==============================================================
SFS001  no module-level / unseeded RNG draws in simulation code
SFS002  no wall-clock reads in simulation code
SFS003  no set iteration feeding sort-free ordered output
SFS004  registry hygiene: docstring + unique sane name per entry
SFS005  no float ``==``/``!=`` on tag/surplus arithmetic
SFS006  Scenario/SweepCell payloads must stay pickle-safe
SFS007  example scenario configs must pass schema validation
======  ==============================================================

Waive a single finding inline with ``# sfs-lint: disable=SFSnnn``.
"""

from repro.analysis.staticcheck.rules import (
    RULES,
    SIM_SCOPES,
    LintRule,
    Violation,
    disabled_ids_by_line,
    make_rules,
    rule,
    rule_ids,
)
from repro.analysis.staticcheck import checks  # noqa: F401  (registers rules)
from repro.analysis.staticcheck.engine import (
    DEFAULT_ROOTS,
    discover_files,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)

__all__ = [
    "RULES",
    "SIM_SCOPES",
    "LintRule",
    "Violation",
    "DEFAULT_ROOTS",
    "disabled_ids_by_line",
    "discover_files",
    "lint_paths",
    "lint_source",
    "main",
    "make_rules",
    "render_json",
    "render_text",
    "rule",
    "rule_ids",
]
