"""Perf-trend comparison for the CI scale benchmark.

``benchmarks/test_bench_scale.py`` records simulator throughput
(events/sec) per (scheduler, N) cell into a pytest-benchmark JSON
report. This module diffs a fresh report against a committed baseline
(``benchmarks/baseline_scale.json``) and flags any cell whose
throughput regressed by more than a threshold factor (default 2x) —
the CI job turns red so hot-path wins can't silently rot, without
blocking merges (wall-clock noise across runner generations is real;
the baseline is refreshed with ``--update-baseline`` when it drifts).

Two signals per cell:

- ``events_per_sec`` — the wall-clock metric the gate thresholds;
- ``events`` — the *simulated* event count, which is deterministic for
  a given scenario. A change there is not noise but a behavior change,
  and is reported separately as drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BASELINE_VERSION",
    "MIN_GATED_SECONDS",
    "Cell",
    "Row",
    "TrendReport",
    "extract_cells",
    "load_baseline",
    "dump_baseline",
    "compare",
    "to_markdown",
]

BASELINE_VERSION = 1

#: extra_info keys that identify and describe one grid cell
_KEY_FIELDS = ("scheduler", "n_tasks")

#: cells whose baseline wall time (events / events_per_sec) is below
#: this many seconds are reported but never *gated*: a couple of
#: milliseconds of run measures scheduler hiccups, not the simulator,
#: and a 2x ratio there is indistinguishable from noise even with the
#: bench's best-of-N walls.
MIN_GATED_SECONDS = 0.025


@dataclass(frozen=True)
class Cell:
    """One (scheduler, N) measurement from the scale benchmark."""

    scheduler: str
    n_tasks: int
    events_per_sec: float
    events: int | None = None

    @property
    def key(self) -> tuple[str, int]:
        return (self.scheduler, self.n_tasks)


@dataclass(frozen=True)
class Row:
    """One compared cell: baseline vs fresh plus the verdict."""

    key: tuple[str, int]
    baseline: Cell | None
    fresh: Cell | None
    #: baseline/fresh throughput ratio (> 1 means slower now)
    ratio: float | None
    #: "ok" | "regression" | "improved" | "new" | "missing" | "too-small"
    status: str
    #: deterministic simulated-event count changed (behavior drift)
    events_drift: bool = False


@dataclass
class TrendReport:
    rows: list[Row]
    threshold: float

    @property
    def regressions(self) -> list[Row]:
        return [r for r in self.rows if r.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions


def extract_cells(bench_json: dict) -> dict[tuple[str, int], Cell]:
    """Pull the (scheduler, N) cells out of a pytest-benchmark report.

    Only benchmarks that recorded every ``_KEY_FIELDS`` entry plus
    ``events_per_sec`` in ``extra_info`` participate (i.e. the scale
    grid; the figure-regeneration benches are ignored).
    """
    cells: dict[tuple[str, int], Cell] = {}
    for bench in bench_json.get("benchmarks", []):
        info = bench.get("extra_info", {})
        if any(field not in info for field in _KEY_FIELDS):
            continue
        if "events_per_sec" not in info:
            continue
        cell = Cell(
            scheduler=str(info["scheduler"]),
            n_tasks=int(info["n_tasks"]),
            events_per_sec=float(info["events_per_sec"]),
            events=int(info["events"]) if "events" in info else None,
        )
        cells[cell.key] = cell
    return cells


def load_baseline(path: str | Path) -> dict[tuple[str, int], Cell]:
    """Read the committed compact baseline file."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION}); regenerate with "
            "--update-baseline"
        )
    cells: dict[tuple[str, int], Cell] = {}
    for entry in data["cells"]:
        cell = Cell(
            scheduler=str(entry["scheduler"]),
            n_tasks=int(entry["n_tasks"]),
            events_per_sec=float(entry["events_per_sec"]),
            events=entry.get("events"),
        )
        cells[cell.key] = cell
    return cells


def dump_baseline(
    cells: dict[tuple[str, int], Cell], path: str | Path, note: str = ""
) -> None:
    """Write the compact, diff-friendly baseline file."""
    payload = {
        "version": BASELINE_VERSION,
        "metric": "events_per_sec",
        "note": note,
        "cells": [
            {
                "scheduler": cell.scheduler,
                "n_tasks": cell.n_tasks,
                "events_per_sec": cell.events_per_sec,
                "events": cell.events,
            }
            for _, cell in sorted(cells.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def compare(
    baseline: dict[tuple[str, int], Cell],
    fresh: dict[tuple[str, int], Cell],
    threshold: float = 2.0,
) -> TrendReport:
    """Diff fresh cells against the baseline.

    A cell regresses when its throughput dropped by more than
    ``threshold``x (ratio = baseline/fresh). Cells present in the
    baseline but absent from the fresh run count as regressions too
    (``missing`` — a silently vanished measurement must not pass);
    brand-new cells are informational, as are cells too fast to gate
    honestly (baseline wall below :data:`MIN_GATED_SECONDS`).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    rows: list[Row] = []
    for key in sorted(set(baseline) | set(fresh)):
        base, now = baseline.get(key), fresh.get(key)
        if base is None:
            rows.append(Row(key, None, now, None, "new"))
            continue
        if now is None:
            rows.append(Row(key, base, None, None, "missing"))
            continue
        ratio = base.events_per_sec / now.events_per_sec
        gated = (
            base.events is None
            or base.events / base.events_per_sec >= MIN_GATED_SECONDS
        )
        if ratio > threshold:
            status = "regression" if gated else "too-small"
        elif ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        drift = (
            base.events is not None
            and now.events is not None
            and base.events != now.events
        )
        rows.append(Row(key, base, now, ratio, status, events_drift=drift))
    return TrendReport(rows=rows, threshold=threshold)


_STATUS_MARK = {
    "ok": "✅",
    "improved": "🚀",
    "regression": "❌",
    "missing": "❌ missing",
    "new": "🆕",
    "too-small": "⚪ slower, below gating floor",
}


def to_markdown(report: TrendReport) -> str:
    """Render the comparison as the GitHub step-summary table."""
    lines = [
        f"### Scale-benchmark trend (threshold {report.threshold:g}x)",
        "",
        "| scheduler | N | baseline ev/s | fresh ev/s | ratio | status |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for row in report.rows:
        scheduler, n_tasks = row.key
        base = f"{row.baseline.events_per_sec:,.0f}" if row.baseline else "—"
        now = f"{row.fresh.events_per_sec:,.0f}" if row.fresh else "—"
        ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "—"
        status = _STATUS_MARK.get(row.status, row.status)
        if row.events_drift:
            status += " ⚠️ event-count drift"
        lines.append(
            f"| {scheduler} | {n_tasks} | {base} | {now} | {ratio} | {status} |"
        )
    lines.append("")
    if report.ok:
        lines.append("No cell regressed beyond the threshold.")
    else:
        keys = ", ".join(f"{s}@N={n}" for (s, n) in (r.key for r in report.regressions))
        lines.append(f"**Regressed cells:** {keys}")
    return "\n".join(lines)
