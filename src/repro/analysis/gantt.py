"""ASCII Gantt rendering of a simulated schedule.

Turns the machine's recorded CPU occupancy intervals into a per-CPU
timeline — the quickest way to *see* scheduling behaviour such as
SFQ's "spurts" (§4.3) or SFS's fine interleaving::

    cpu0 |AAAA BBBB AAAA BBBB ...
    cpu1 |CCCCCCCCCCCCCCCCCCC ...

Each column is one time bucket; the glyph is the task that occupied
the CPU for the majority of the bucket ('.' = idle).
"""

from __future__ import annotations

from repro.sim.machine import Machine

__all__ = ["gantt_chart", "occupancy"]

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def occupancy(
    machine: Machine, t0: float, t1: float, buckets: int
) -> dict[int, list[int | None]]:
    """Majority-occupant tid per (cpu, time bucket), None = idle."""
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    if buckets < 1:
        raise ValueError(f"need at least one bucket, got {buckets}")
    width = (t1 - t0) / buckets
    # accumulate per-bucket occupancy time per tid
    grids: dict[int, list[dict[int, float]]] = {
        p.cpu_id: [dict() for _ in range(buckets)] for p in machine.processors
    }
    for iv in machine.trace.run_intervals:
        if iv.end <= t0 or iv.start >= t1:
            continue
        start = max(iv.start, t0)
        end = min(iv.end, t1)
        first = int((start - t0) / width)
        last = min(buckets - 1, int((end - t0) / width))
        for b in range(first, last + 1):
            b_start = t0 + b * width
            b_end = b_start + width
            overlap = min(end, b_end) - max(start, b_start)
            if overlap > 0:
                bucket = grids[iv.cpu][b]
                bucket[iv.tid] = bucket.get(iv.tid, 0.0) + overlap
    out: dict[int, list[int | None]] = {}
    for cpu, row in grids.items():
        cells: list[int | None] = []
        for bucket in row:
            if not bucket:
                cells.append(None)
            else:
                cells.append(max(bucket.items(), key=lambda kv: kv[1])[0])
        out[cpu] = cells
    return out


def gantt_chart(
    machine: Machine,
    t0: float | None = None,
    t1: float | None = None,
    width: int = 72,
) -> str:
    """Render the schedule of ``[t0, t1)`` as an ASCII Gantt chart.

    Requires the machine to have been created with
    ``record_events=True`` (the default). Tasks are assigned glyphs in
    tid order; a legend maps glyphs to task names.
    """
    if not machine.trace.run_intervals:
        return "(no schedule recorded)"
    lo = t0 if t0 is not None else min(iv.start for iv in machine.trace.run_intervals)
    hi = t1 if t1 is not None else max(iv.end for iv in machine.trace.run_intervals)
    cells = occupancy(machine, lo, hi, width)
    tids = sorted({iv.tid for iv in machine.trace.run_intervals})
    glyph = {tid: _GLYPHS[i % len(_GLYPHS)] for i, tid in enumerate(tids)}
    names = {t.tid: t.name for t in machine.tasks}
    lines = [f"schedule [{lo:.3f}s, {hi:.3f}s), {width} buckets:"]
    for cpu in sorted(cells):
        row = "".join(glyph[tid] if tid is not None else "." for tid in cells[cpu])
        lines.append(f"cpu{cpu} |{row}")
    legend = "  ".join(
        f"{glyph[tid]}={names.get(tid, tid)}" for tid in tids[: min(len(tids), 12)]
    )
    if len(tids) > 12:
        legend += f"  (+{len(tids) - 12} more)"
    lines.append(legend)
    return "\n".join(lines)
