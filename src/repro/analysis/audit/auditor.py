"""The :class:`Auditor`: wires checks to a machine and builds the report.

Usage (what :func:`repro.scenario.runner.run_scenario` does under
``Scenario.audit``)::

    auditor = Auditor(machine, params=scenario.audit_params)
    auditor.install()
    machine.run_until(duration)
    report = auditor.finalize(machine.now)

Overhead discipline: each check is subscribed only to the hooks it
actually overrides, and the three streaming checks don't subscribe
hooks at all — their per-dispatch work (a compare-and-store and two
countdowns) is inlined into the single fused observer built by
:func:`~repro.analysis.audit.checks._make_dispatch_probe`, with
anything rarer than once per dispatch (the surplus-order brute force,
the starvation sweep) called back into the owning check. The hot hooks
are plain observer lists guarded by emptiness checks inside
:class:`~repro.sim.machine.Machine` / :class:`~repro.sim.tracing.Trace`
— together this keeps the audited N=5000 server cell within ~10% of
the unaudited run.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.analysis.audit.checks import (
    CHECKS,
    KNOWN_PARAMS,
    PROBE_CHECKS,
    AuditCheck,
    _make_dispatch_probe,
)
from repro.analysis.audit.report import AuditReport, AuditViolation

__all__ = ["Auditor", "DEFAULT_MAX_VIOLATIONS"]

#: per-check stored-violation cap; counts keep incrementing past it
DEFAULT_MAX_VIOLATIONS = 100


class Auditor:
    """Attach registered invariant checks to one machine run."""

    def __init__(
        self,
        machine,
        checks: Iterable[str] | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        self.machine = machine
        self.params = dict(params or {})
        unknown = set(self.params) - KNOWN_PARAMS - {"max_violations"}
        if unknown:
            known = ", ".join(sorted(KNOWN_PARAMS | {"max_violations"}))
            raise ValueError(
                f"unknown audit param(s) {sorted(unknown)!r}; known: {known}"
            )
        self.max_violations = int(
            self.params.get("max_violations", DEFAULT_MAX_VIOLATIONS)
        )
        names = sorted(CHECKS) if checks is None else list(checks)
        unknown_checks = [n for n in names if n not in CHECKS]
        if unknown_checks:
            raise ValueError(
                f"unknown audit check(s) {unknown_checks!r}; "
                f"known: {', '.join(sorted(CHECKS))}"
            )
        self.counts: dict[str, int] = {}
        self.skipped: dict[str, str] = {}
        #: per-check storage, so one flooding check cannot evict the
        #: (possibly single) example of another invariant breaking
        self._stored: dict[str, list[AuditViolation]] = {}
        self._truncated = 0
        self._installed = False
        self.checks: list[AuditCheck] = []
        for name in names:
            cls = CHECKS[name]
            reason = cls.applies(machine)
            if reason is not None:
                self.skipped[name] = reason
                continue
            self.counts[name] = 0
            self.checks.append(cls(machine, self._emitter(name), self.params))

    def _emitter(self, name: str):
        """The bound emit callback for one check."""

        def emit(time: float, message: str) -> None:
            self.counts[name] += 1
            stored = self._stored.setdefault(name, [])
            if len(stored) < self.max_violations:
                stored.append(AuditViolation(name, time, message))
            else:
                self._truncated += 1

        return emit

    def install(self) -> "Auditor":
        """Subscribe the checks: overridden hooks, plus the fused probe.

        The streaming trio (:data:`~repro.analysis.audit.checks.
        PROBE_CHECKS`) shares one fused on-dispatch observer instead of
        subscribing individually; every other check is wired to exactly
        the hooks it overrides.
        """
        if self._installed:
            raise RuntimeError("auditor already installed")
        self._installed = True
        machine = self.machine
        probe_targets: dict[str, AuditCheck] = {}
        for check in self.checks:
            cls = type(check)
            if cls.name in PROBE_CHECKS:
                probe_targets[cls.name] = check
            if cls.on_event is not AuditCheck.on_event:
                machine.trace.on_event.append(check.on_event)
            if cls.on_dispatch is not AuditCheck.on_dispatch:
                machine.on_dispatch.append(check.on_dispatch)
            if cls.on_requeue is not AuditCheck.on_requeue:
                machine.on_requeue.append(check.on_requeue)
        if probe_targets:
            machine.on_dispatch.append(
                _make_dispatch_probe(
                    probe_targets.get("monotone_vtime"),
                    probe_targets.get("surplus_order"),
                    probe_targets.get("no_starvation"),
                )
            )
        return self

    def finalize(self, t_end: float) -> AuditReport:
        """Run end-of-run checks and assemble the report."""
        for check in self.checks:
            check.finalize(self.machine, t_end)
        trace = self.machine.trace
        merged = sorted(
            (v for stored in self._stored.values() for v in stored),
            key=lambda v: (v.time, v.check),
        )
        return AuditReport(
            scheduler=self.machine.scheduler.name,
            events_seen=trace.event_count if trace.record_events else 0,
            dispatches_seen=trace.dispatches,
            counts=dict(self.counts),
            skipped=dict(self.skipped),
            violations=tuple(merged),
            truncated=self._truncated,
        )
