"""The streaming invariant checks and their registry.

Each check encodes one property the paper guarantees (or the simulator
promises by construction) and watches for it continuously:

- ``service_conservation`` — delivered service must equal busy CPU
  capacity exactly (the simulator's accounting identity);
- ``resource_conservation`` — with per-task demand vectors declared
  (the flow domain's multi-resource accounting), derived per-resource
  consumption stays within the delivered busy-time ceiling; skipped
  with a reason when a run declares no vectors;
- ``bounded_lag`` — every thread's service stays within a
  weight-derived constant of the fluid GMS ideal (Theorems 2/3 are
  *about* this bound breaking for SFQ; SFS exists to restore it);
- ``no_starvation`` — every runnable thread is dispatched within the
  fairness-implied wait bound ``quantum * (W/p) * (1/w_i + 1/w_min)``
  (Eq. 2 turns a zero-service window into a normalized-service gap);
- ``surplus_order`` — each SFS decision really picked a
  minimum-surplus thread (Eq. 4 / §3.1's sorted-queue invariant);
- ``monotone_vtime`` — virtual time ``v = min S_i`` never moves
  backwards except at an explicit §3.2 wrap-around rebase.

Checks register with :func:`audit_check`, mirroring the scheduler
registry's ``@register`` pattern; :class:`~repro.analysis.audit.auditor.
Auditor` subscribes each check only to the hooks it overrides, so a
check that never fires costs nothing per event. The three streaming
checks above are special-cased further: their per-dispatch work is a
handful of comparisons and countdowns, small enough that the Python
call into each observer would dominate it, so the auditor funnels all
of them through the single fused observer built by
:func:`_make_dispatch_probe` and the check classes keep only the cold
paths (brute-force verification, sweeps, violation rendering).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.task import TaskState
from repro.sim.tracing import WAKE

if TYPE_CHECKING:
    from repro.sim.machine import Machine
    from repro.sim.processor import Processor
    from repro.sim.task import Task

__all__ = ["AuditCheck", "CHECKS", "audit_check", "check_names", "KNOWN_PARAMS"]

#: the emit callback signature: (time, message)
Emit = Callable[[float, str], None]


class AuditCheck:
    """Base class for one registered invariant check.

    Subclasses override the hooks they need; the auditor only wires a
    hook whose method differs from the base class, so unused hooks add
    zero per-event overhead. :meth:`applies` (classmethod) returns a
    skip reason when the check is meaningless for the given run (wrong
    scheduler family, event recording off); ``None`` means "run it".
    """

    #: registry name; set by the decorator
    name: str = ""
    #: one-line summary (first docstring line); set by the decorator
    title: str = ""
    #: parameter names (from audit_params) this check consumes
    params: tuple[str, ...] = ()

    def __init__(self, machine: "Machine", emit: Emit, params: dict[str, Any]):
        self.machine = machine
        self.emit = emit

    @classmethod
    def applies(cls, machine: "Machine") -> str | None:
        """Why this check must be skipped for ``machine`` (None = run)."""
        return None

    # -- hooks (override only what the check needs) --------------------

    def on_event(self, time: float, kind: str, task: "Task") -> None:
        """Runnable-set event (arrive/wake/block/exit/weight)."""

    def on_dispatch(self, machine: "Machine", proc: "Processor", task: "Task") -> None:
        """A task was just placed on a CPU."""

    def on_requeue(self, machine: "Machine", task: "Task") -> None:
        """A preempted task went back to the runnable queue."""

    def finalize(self, machine: "Machine", t_end: float) -> None:
        """End of run; emit any whole-run violations."""


#: check name -> check class (populated by @audit_check)
CHECKS: dict[str, type[AuditCheck]] = {}


def audit_check(name: str):
    """Register an :class:`AuditCheck` subclass under ``name``.

    Mirrors :func:`repro.schedulers.registry.register`: duplicate names
    are rejected and a docstring is mandatory (the check list is user
    documentation).
    """

    def decorator(cls: type[AuditCheck]) -> type[AuditCheck]:
        if name in CHECKS:
            raise ValueError(f"audit check {name!r} is already registered")
        if not (cls.__doc__ or "").strip():
            raise ValueError(f"audit check {name!r} needs a docstring")
        cls.name = name
        cls.title = cls.__doc__.strip().splitlines()[0]
        CHECKS[name] = cls
        return cls

    return decorator


def check_names() -> list[str]:
    """All registered check names, sorted."""
    return sorted(CHECKS)


def _is_exact_sfs(machine: "Machine") -> bool:
    """Is the scheduler plain SFS (no heuristic, no affinity tilt)?"""
    from repro.core.sfs import SurplusFairScheduler

    sched = machine.scheduler
    return (
        type(sched) is SurplusFairScheduler
        and getattr(sched, "affinity_bonus", 0.0) == 0.0
    )


@audit_check("service_conservation")
class ServiceConservationCheck(AuditCheck):
    """Total delivered service equals total busy CPU capacity.

    ``machine._charge`` adds every service delta to both the task and
    the processor; a dropped or double charge anywhere breaks the
    identity Σ service_i == Σ busy_time_p. Checked at finalize with a
    relative tolerance (pure float summation noise). Runs with
    per-resource demand vectors get the derived per-resource totals
    checked too, by ``resource_conservation``.
    """

    params = ("conservation_tol",)

    def __init__(self, machine, emit, params):
        super().__init__(machine, emit, params)
        self.tol = float(params.get("conservation_tol", 1e-6))

    def finalize(self, machine: "Machine", t_end: float) -> None:
        total_service = sum(t.service for t in machine.tasks)
        busy = sum(p.busy_time for p in machine.processors)
        if abs(total_service - busy) > self.tol * max(1.0, busy):
            self.emit(
                t_end,
                f"service conservation broken: sum(service)={total_service!r}"
                f" != sum(busy_time)={busy!r}",
            )


@audit_check("bounded_lag")
class BoundedLagCheck(AuditCheck):
    """Every thread's service stays within a bound of the GMS ideal.

    The paper's premise (§2) is that SFS keeps each thread's allocation
    within a constant number of quanta of generalized multiprocessor
    sharing, while SFQ's bounds break on multiprocessors. At finalize
    the recorded event timeline is replayed through the fluid GMS
    oracle and each thread's |service - ideal| is compared against
    ``lag_factor * quantum * cpus`` seconds. For threads that exited,
    only the surplus direction is checked: the oracle replays their
    whole discrete runnable window and can grant more than their
    finite demand, so a completed thread showing ``ideal > service``
    is an oracle artifact, not starvation — a thread that received
    everything it asked for cannot be lagging. The constant bound
    assumes a continuously-backlogged population; intermittently
    blocking workloads (packet flows draining their queues) earn extra
    slack per recorded wakeup — one quantum for the waker plus a
    weight-share of a quantum for everyone it re-enters the queue
    against — since every fresh runnable window restarts the
    discretization error. Requires event recording and exact SFS with
    readjustment (the heuristic and affinity variants trade the bound
    away by design, and readjustment is what makes it hold under
    infeasible weights).
    """

    params = ("lag_factor",)

    def __init__(self, machine, emit, params):
        super().__init__(machine, emit, params)
        self.lag_factor = float(params.get("lag_factor", 8.0))

    @classmethod
    def applies(cls, machine: "Machine") -> str | None:
        if not machine.trace.record_events:
            return "needs record_events=True for GMS replay"
        if not _is_exact_sfs(machine) or not machine.scheduler.readjust:
            return "lag bound holds for exact SFS with readjustment only"
        return None

    def finalize(self, machine: "Machine", t_end: float) -> None:
        import gc

        from repro.core.gms import replay_trace

        # The replay allocates a burst of flat scalar dicts and heap
        # tuples (no cycles); with collection enabled, that burst
        # triggers sweeps over the whole simulation heap (thousands of
        # live tasks) and can cost more than the replay itself.
        enabled = gc.isenabled()
        gc.disable()
        try:
            ideal = replay_trace(
                machine.trace.event_tuples(),
                machine.num_cpus,
                t_end,
                assume_sorted=True,  # recorded traces are in time order
            )
        finally:
            if enabled:
                gc.enable()
        # The constant-quanta bound holds for a population that stays
        # backlogged; every block/wake cycle restarts the
        # discretization error. A waking thread re-enters the queue
        # with a fresh start tag (up to one quantum of rounding for
        # itself), and its re-insertion perturbs every *other* thread
        # by up to a weight-share of a quantum — so thread i earns
        # ``quantum * (own_wakes + total_wakes * w_i / W)`` of extra
        # slack. Always-runnable populations (the CPU server family)
        # record zero wakes and keep the paper's constant bound.
        wakes: dict[int, int] = {}
        total_wakes = 0
        for _, kind, tid, _ in machine.trace.event_tuples():
            if kind == WAKE:
                wakes[tid] = wakes.get(tid, 0) + 1
                total_wakes += 1
        total_weight = sum(t.weight for t in machine.tasks) or 1.0
        base = self.lag_factor * machine.quantum * machine.num_cpus
        for task in machine.tasks:
            lag = task.service - ideal.get(task.tid, 0.0)
            if lag < 0 and task.state is TaskState.EXITED:
                continue  # completed: the deficit is oracle overshoot
            bound = base + machine.quantum * (
                wakes.get(task.tid, 0)
                + total_wakes * task.weight / total_weight
            )
            if abs(lag) > bound:
                self.emit(
                    t_end,
                    f"{task.name}: |lag| {abs(lag):.6g} exceeds bound "
                    f"{bound:.6g} (service {task.service:.6g}, "
                    f"ideal {ideal.get(task.tid, 0.0):.6g})",
                )


@audit_check("no_starvation")
class NoStarvationCheck(AuditCheck):
    """Every runnable thread is dispatched within its fair-wait horizon.

    A thread receiving zero service for ``D`` seconds falls behind by
    ``p * D / W`` in normalized service, and pairwise fairness (Eq. 2)
    bounds that gap by ``O(quantum * (1/phi_i + 1/phi_min))`` — so the
    dispatch-latency bound is ``quantum * (W/p) * (1/w_i + 1/w_min)``,
    roughly *weight-independent* (dominated by the lightest thread's
    term). Under overload SFS's surplus ``phi * (S - v)`` amplifies a
    heavy waiter's surplus, so heavy threads are *not* dispatched
    every ``quantum * W / (w_i * p)`` the way a per-weight fair-share
    interval would suggest. Waiting longer than ``starvation_factor``
    times the bound is flagged. The check stays entirely off the hot
    path: the auditor's fused dispatch probe triggers a *sweep* every
    ``_SWEEP_EVERY`` dispatches — ramping up geometrically over the
    first few dispatches so t=0 starvers register early, plus once at
    finalize — and each
    sweep snapshots the runnable set with every task's current
    ``dispatch_count``. A task whose count is unchanged across
    consecutive sweeps (and is not on a CPU right now) ages from the
    first sweep that saw it waiting — any dispatch in the window
    re-arms the wait, so only a thread that truly never reached a CPU
    can age past the horizon (a waiter's age is undercounted by at
    most one sweep interval, which only loosens the test). The
    horizon is derived from the runnable weights observed at the
    sweep, so a population burst legitimately stretching everyone's
    wait does not false-positive. A run whose scheduler dispatches
    nothing at all never fires the probe; the finalize sweep still
    catches that case at end of run.
    """

    params = ("starvation_factor",)

    #: dispatches between waiting-set sweeps (zero cost in between —
    #: the fused probe just counts down)
    _SWEEP_EVERY = 64

    def __init__(self, machine, emit, params):
        super().__init__(machine, emit, params)
        self.factor = float(params.get("starvation_factor", 10.0))
        #: lightest weight seen runnable at any sweep; a lower bound
        #: on the current minimum, which only loosens (never
        #: tightens) the horizon
        self._min_weight = math.inf
        #: tid -> earliest sweep time at which the thread was seen
        #: waiting with its current dispatch_count (parallel dicts)
        self._seen_t: dict[int, float] = {}
        self._seen_n: dict[int, int] = {}

    def _sweep(self, now: float) -> None:
        machine = self.machine
        runnable = machine._runnable
        total_w = 0.0
        min_w = self._min_weight
        for task in runnable.values():
            w = task.weight
            total_w += w
            if w < min_w:
                min_w = w
        self._min_weight = min_w
        per_cpu_w = total_w / machine.num_cpus
        inv_min = 1.0 / max(min_w, 1e-12)
        base = self.factor * machine.quantum
        seen_t, seen_n = self._seen_t, self._seen_n
        new_t: dict[int, float] = {}
        new_n: dict[int, int] = {}
        for tid, task in runnable.items():
            if task.state is TaskState.RUNNING:
                continue  # on a CPU right now — not waiting
            count = task.dispatch_count
            since = seen_t.get(tid)
            if since is None or seen_n[tid] != count:
                # First time seen waiting, or the thread reached a CPU
                # during the window — its wait starts at this sweep.
                new_t[tid] = now
                new_n[tid] = count
                continue
            wait = per_cpu_w * (1.0 / max(task.weight, 1e-12) + inv_min)
            horizon = base * max(1.0, wait)
            if now - since > horizon:
                self.emit(
                    now,
                    f"{task.name} runnable since t={since:.6g} without "
                    f"dispatch (horizon {horizon:.6g}s)",
                )
                # Restart the wait so continued starvation re-flags on
                # a later sweep instead of flooding every sweep.
                new_t[tid] = now
            else:
                new_t[tid] = since
            new_n[tid] = count
        self._seen_t = new_t
        self._seen_n = new_n

    def finalize(self, machine: "Machine", t_end: float) -> None:
        self._sweep(t_end)


@audit_check("surplus_order")
class SurplusOrderCheck(AuditCheck):
    """Each SFS decision dispatched a minimum-surplus thread (Eq. 4).

    Start tags only advance at quantum end, so immediately after a
    dispatch the chosen thread's surplus is still the value the
    decision saw; comparing it against a brute-force fresh minimum over
    the still-queued threads catches stale queue keys and ordering
    corruption. The auditor's fused dispatch probe calls
    :meth:`check_now` every ``surplus_check_every``-th dispatch (brute
    force is O(n)); only exact SFS without affinity tilt claims this
    invariant.
    """

    params = ("surplus_check_every", "surplus_tol")

    def __init__(self, machine, emit, params):
        super().__init__(machine, emit, params)
        self.check_every = max(1, int(params.get("surplus_check_every", 16)))
        self.tol = float(params.get("surplus_tol", 1e-9))

    @classmethod
    def applies(cls, machine: "Machine") -> str | None:
        if not _is_exact_sfs(machine):
            return "surplus order is exact-SFS-only (no heuristic/affinity)"
        return None

    def check_now(self, machine: "Machine", task: "Task") -> None:
        """Brute-force verify the dispatch that just happened."""
        sched = machine.scheduler
        queued_min = sched.exact_minimum_surplus_task()
        if queued_min is None:
            return
        v = sched.virtual_time
        picked = sched.surplus_of(task, v)
        best = sched.surplus_of(queued_min, v)
        if picked > best + self.tol:
            self.emit(
                machine.now,
                f"dispatched {task.name} with surplus {picked!r} while "
                f"{queued_min.name} waits with smaller surplus {best!r}",
            )


@audit_check("monotone_vtime")
class MonotoneVtimeCheck(AuditCheck):
    """Virtual time never decreases except at a §3.2 wrap-around rebase.

    ``v = min S_i`` is the progress measure every tag comparison relies
    on; outside an explicit rebase (which shifts all tags and ``v``
    together, counted in ``rebase_count``), a backwards step means tag
    corruption. Observed at every dispatch — the compare-and-store
    lives inline in the auditor's fused dispatch probe, and this class
    keeps only the applicability test and the violation rendering.
    """

    @classmethod
    def applies(cls, machine: "Machine") -> str | None:
        sched = machine.scheduler
        if not hasattr(sched, "virtual_time") or not hasattr(sched, "rebase_count"):
            return "scheduler has no virtual time"
        return None

    def flag_backwards(self, now: float, old: float, new: float) -> None:
        """Emit the violation the probe detected (cold path)."""
        self.emit(
            now,
            f"virtual time moved backwards: {old!r} -> {new!r} "
            "with no rebase",
        )


@audit_check("resource_conservation")
class ResourceConservationCheck(AuditCheck):
    """Derived per-resource consumption respects the busy-time ceiling.

    The flow domain (:mod:`repro.flows`) declares per-task demand
    vectors — units of {cpu, memory, bandwidth} consumed per second of
    service — which ride along as ``machine.resource_vectors``. A
    task's resource-``r`` consumption is ``service_i * vec_i[r]``
    exactly (vectors are constant for the life of a run), so the
    machine-wide total is bounded by the largest declared per-second
    rate times total delivered busy time::

        sum_i service_i * vec_i[r]  <=  max_i vec_i[r] * sum_p busy_p

    A violation means the service accounting broke (see
    ``service_conservation``), a vector was mutated mid-run, or a
    vector names a task the machine never saw. Skipped, with the
    reason recorded, on runs that declare no vectors — the check is
    about the multi-resource accounting layer, not plain CPU runs.
    """

    params = ("resource_tol",)

    def __init__(self, machine, emit, params):
        super().__init__(machine, emit, params)
        self.tol = float(params.get("resource_tol", 1e-6))

    @classmethod
    def applies(cls, machine: "Machine") -> str | None:
        if not getattr(machine, "resource_vectors", None):
            return "no per-resource demand vectors declared"
        return None

    def finalize(self, machine: "Machine", t_end: float) -> None:
        vectors = machine.resource_vectors
        service = {t.name: t.service for t in machine.tasks}
        busy = sum(p.busy_time for p in machine.processors)
        totals: dict[str, float] = {}
        ceilings: dict[str, float] = {}
        for name in sorted(vectors):
            if name not in service:
                self.emit(
                    t_end,
                    f"resource vector declared for unknown task {name!r}",
                )
                continue
            for resource, rate in vectors[name].items():
                totals[resource] = totals.get(resource, 0.0) + service[name] * rate
                if rate > ceilings.get(resource, 0.0):
                    ceilings[resource] = rate
        for resource in sorted(totals):
            cap = ceilings[resource] * busy
            if totals[resource] > cap + self.tol * max(1.0, cap):
                self.emit(
                    t_end,
                    f"resource {resource!r} over-delivered: consumed "
                    f"{totals[resource]!r} exceeds ceiling {cap!r} "
                    f"(max rate {ceilings[resource]!r} x busy {busy!r})",
                )


#: checks whose per-dispatch hot path is inlined into the fused probe
PROBE_CHECKS = ("monotone_vtime", "surplus_order", "no_starvation")


def _make_dispatch_probe(
    vtime: MonotoneVtimeCheck | None,
    surplus: SurplusOrderCheck | None,
    starve: NoStarvationCheck | None,
) -> Callable[["Machine", "Processor", "Task"], None]:
    """Build the one fused on-dispatch observer for the streaming checks.

    A Python observer call costs about as much as the fast-path work of
    all three streaming checks combined, so instead of subscribing each
    check separately the auditor funnels their per-dispatch work — the
    monotone_vtime compare-and-store, the surplus_order sample
    countdown, and the no_starvation sweep countdown — through this
    single closure. Hot state lives in closure cells (cheaper than
    attribute access); anything rarer than once per dispatch calls back
    into the owning check.
    """
    # The machine's scheduler is fixed for the life of a run, so the
    # vtime branch reads it from a closure cell instead of chasing
    # machine.scheduler on every dispatch.
    sched = vtime.machine.scheduler if vtime is not None else None
    so_every = surplus.check_every if surplus is not None else 0
    ns_every = starve._SWEEP_EVERY if starve is not None else 0
    # -inf / -1 sentinels keep the probe branch-lean: the first
    # dispatch can never compare below -inf, and rebase_count starts
    # at 0 so it can never equal -1.
    last_v = -math.inf
    last_rebase = -1
    # Both sampled checks fire on the very first dispatch: surplus so
    # an ordering bug present from t=0 is caught immediately, and the
    # sweep so the initial waiting population registers its wait start
    # near t=0 instead of one full sweep interval in. The sweep
    # interval then ramps geometrically (1, 2, 4, ... up to
    # ``_SWEEP_EVERY``): the very first dispatch can precede most of
    # the t=0 arrivals, so a single early sweep would miss threads
    # that starve from the start — the ramp re-sweeps while the
    # dispatch count (and clock) are still near zero, at a one-off
    # cost of ~log2(_SWEEP_EVERY) extra sweeps per run.
    so_count = 1 if so_every else 0
    ns_count = 1 if ns_every else 0
    ns_interval = 1

    def probe(machine: "Machine", proc: "Processor", task: "Task") -> None:
        nonlocal last_v, last_rebase, so_count, ns_count, ns_interval
        if sched is not None:
            v = sched.virtual_time
            rebase = sched.rebase_count
            if v < last_v and rebase == last_rebase:
                vtime.flag_backwards(machine.now, last_v, v)
            last_v = v
            last_rebase = rebase
        if so_count:
            so_count -= 1
            if not so_count:
                so_count = so_every
                surplus.check_now(machine, task)
        if ns_count:
            ns_count -= 1
            if not ns_count:
                if ns_interval < ns_every:
                    ns_interval *= 2
                ns_count = min(ns_interval, ns_every)
                starve._sweep(machine.now)

    return probe


#: every parameter name any registered check consumes (for validation)
KNOWN_PARAMS: frozenset[str] = frozenset(
    name for cls in CHECKS.values() for name in cls.params
)
