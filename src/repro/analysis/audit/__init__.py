"""Online invariant auditor for simulated runs.

Streaming observers hooked to the machine's event/dispatch stream check
the paper's guarantees while a simulation runs:

====================  ================================================
service_conservation  Σ service == Σ busy CPU time (accounting identity)
bounded_lag           |service - GMS ideal| within a weight-derived
                      bound (the §2 premise SFS exists to restore)
no_starvation         every runnable thread dispatched within its
                      fair-wait horizon
surplus_order         each SFS decision picked a minimum-surplus
                      thread (Eq. 4)
monotone_vtime        v = min S_i only moves forward, except at a
                      §3.2 wrap-around rebase
====================  ================================================

Enable per scenario with ``Scenario(audit=True, ...)`` or on the CLI
with ``--audit``; the :class:`AuditReport` lands on
``result.audit_report`` and, as the canned ``"audit"`` metric, inside
``cell.metrics`` of sweeps.
"""

from repro.analysis.audit.auditor import DEFAULT_MAX_VIOLATIONS, Auditor
from repro.analysis.audit.checks import (
    CHECKS,
    AuditCheck,
    audit_check,
    check_names,
)
from repro.analysis.audit.report import AuditReport, AuditViolation

__all__ = [
    "AuditCheck",
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "CHECKS",
    "DEFAULT_MAX_VIOLATIONS",
    "audit_check",
    "check_names",
]
