"""Online invariant auditor for simulated runs.

Streaming observers hooked to the machine's event/dispatch stream check
the paper's guarantees while a simulation runs:

====================  ================================================
service_conservation  Σ service == Σ busy CPU time (accounting identity)
bounded_lag           |service - GMS ideal| within a weight-derived
                      bound (the §2 premise SFS exists to restore)
no_starvation         every runnable thread dispatched within its
                      fair-wait horizon
surplus_order         each SFS decision picked a minimum-surplus
                      thread (Eq. 4)
monotone_vtime        v = min S_i only moves forward, except at a
                      §3.2 wrap-around rebase
====================  ================================================

Enable per scenario with ``Scenario(audit=True, ...)`` or on the CLI
with ``--audit``; the :class:`AuditReport` lands on
``result.audit_report`` and, as the canned ``"audit"`` metric, inside
``cell.metrics`` of sweeps.

Tolerances thread through ``Scenario(audit_params={...})``:
``conservation_tol`` (service_conservation), ``lag_factor``
(bounded_lag), ``starvation_factor`` (no_starvation),
``surplus_check_every``/``surplus_tol`` (surplus_order), and a
``"checks"`` entry selects a subset by name. Checks that are
meaningless for a run — ``surplus_order`` under ``round-robin``,
``bounded_lag`` without an event timeline — skip with a recorded
reason instead of false-positive. The streaming checks share one fused
dispatch observer and defer expensive work (GMS replay, brute-force
surplus minima, starvation sweeps) to finalize or sampled cadences, so
a fully audited N=5000 server cell costs ≈9% extra wall time. Every
check is proven by fault injection: ``tests/test_audit_mutations.py``
plants each check's target bug and asserts it gets flagged.
"""

from repro.analysis.audit.auditor import DEFAULT_MAX_VIOLATIONS, Auditor
from repro.analysis.audit.checks import (
    CHECKS,
    AuditCheck,
    audit_check,
    check_names,
)
from repro.analysis.audit.report import AuditReport, AuditViolation

__all__ = [
    "AuditCheck",
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "CHECKS",
    "DEFAULT_MAX_VIOLATIONS",
    "audit_check",
    "check_names",
]
