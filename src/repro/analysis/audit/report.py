"""Audit results: violations and the per-run :class:`AuditReport`.

The report travels two ways: attached to a
:class:`~repro.scenario.result.SimulationResult` as ``audit_report``
for in-process callers, and flattened via :meth:`AuditReport.summary`
into the canned ``"audit"`` sweep metric — a plain JSON-safe dict that
survives process pools, the JSONL checkpoint, and the ssh worker
protocol unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["AuditViolation", "AuditReport"]


@dataclass(frozen=True)
class AuditViolation:
    """One invariant breach: which check, when, and what happened."""

    check: str
    time: float
    message: str

    def render(self) -> str:
        """One-line ``[check] t=...: message`` form."""
        return f"[{self.check}] t={self.time:.6g}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of auditing one simulation run.

    ``counts`` has one entry per executed check (zero when the
    invariant held); ``skipped`` maps each non-executed check to the
    reason (e.g. the lag bound needs event recording, surplus-order
    sanity only applies to exact SFS). Stored violations are capped —
    ``truncated`` counts the overflow — so a badly broken run cannot
    exhaust memory; ``counts`` always reflects every violation.
    """

    scheduler: str
    events_seen: int = 0
    dispatches_seen: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    violations: tuple[AuditViolation, ...] = ()
    truncated: int = 0

    @property
    def total_violations(self) -> int:
        """Violations across all checks (including unstored ones)."""
        return sum(self.counts.values())

    @property
    def ok(self) -> bool:
        """Did every executed check hold?"""
        return self.total_violations == 0

    def summary(self) -> dict[str, Any]:
        """Flat JSON-safe form (the canned ``"audit"`` sweep metric)."""
        return {
            "ok": self.ok,
            "scheduler": self.scheduler,
            "total_violations": self.total_violations,
            "events_seen": self.events_seen,
            "dispatches_seen": self.dispatches_seen,
            "counts": dict(self.counts),
            "skipped": dict(self.skipped),
            "examples": [v.render() for v in self.violations[:5]],
        }

    def render(self) -> str:
        """Multi-line human-readable report."""
        status = "OK" if self.ok else f"{self.total_violations} VIOLATION(S)"
        lines = [
            f"audit [{self.scheduler}]: {status} "
            f"({self.events_seen} events, {self.dispatches_seen} dispatches)"
        ]
        for check in sorted(self.counts):
            lines.append(f"  {check}: {self.counts[check]} violation(s)")
        for check in sorted(self.skipped):
            lines.append(f"  {check}: skipped ({self.skipped[check]})")
        for violation in self.violations:
            lines.append(f"  {violation.render()}")
        if self.truncated:
            lines.append(f"  ... {self.truncated} further violation(s) not stored")
        return "\n".join(lines)
