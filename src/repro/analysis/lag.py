"""Service lag: windowed deviation from the GMS fluid ideal.

Eq. 2 bounds hold *per interval*, so a scalar end-of-run deviation can
hide transient unfairness (a thread starved for 10 s then repaid looks
fine at the end). These helpers compute the **lag curve** — actual
minus fluid-GMS service as a function of time — and its extremes, which
is how the fairness of a practical scheduler is normally characterized
against its fluid reference.
"""

from __future__ import annotations

from repro.core.gms import FluidGMS
from repro.sim import tracing
from repro.sim.machine import Machine
from repro.sim.metrics import service_at
from repro.sim.task import Task

__all__ = ["lag_curve", "max_absolute_lag", "lag_report"]


def lag_curve(
    machine: Machine, task: Task, t0: float, t1: float, step: float = 0.1
) -> list[tuple[float, float]]:
    """(time, actual - GMS service) for one task, sampled every ``step``.

    Requires event recording and service sampling (machine defaults).
    Positive lag = the task is ahead of its fluid entitlement.
    """
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    gms = FluidGMS(machine.num_cpus)
    events = sorted(machine.trace.events, key=lambda e: e.time)
    out: list[tuple[float, float]] = []
    idx = 0
    t = t0
    while t <= t1 + 1e-9:
        while idx < len(events) and events[idx].time <= t:
            ev = events[idx]
            if ev.kind in (tracing.ARRIVE, tracing.WAKE):
                gms.arrive(ev.tid, ev.weight, ev.time)
            elif ev.kind in (tracing.BLOCK, tracing.EXIT):
                gms.depart(ev.tid, ev.time)
            elif ev.kind == tracing.WEIGHT:
                gms.set_weight(ev.tid, ev.weight, ev.time)
            idx += 1
        gms.advance_to(min(t, t1))
        out.append((t, service_at(task, t) - gms.service_of(task.tid)))
        t += step
    return out


def max_absolute_lag(
    machine: Machine, task: Task, t0: float, t1: float, step: float = 0.1
) -> float:
    """Worst |lag| of ``task`` over the window — the fairness bound."""
    curve = lag_curve(machine, task, t0, t1, step)
    return max((abs(v) for _, v in curve), default=0.0)


def lag_report(
    machine: Machine, t0: float, t1: float, step: float = 0.1
) -> dict[str, float]:
    """Max |lag| per task name over the window, for every task."""
    return {
        task.name: max_absolute_lag(machine, task, t0, t1, step)
        for task in machine.tasks
    }
