"""ASCII rendering of the paper's figures.

The evaluation figures are line charts (cumulative iterations vs time,
frame rate vs load, ...) and one bar chart (Fig. 6(a)). matplotlib is
unavailable offline, so the experiment modules render Unicode text
charts good enough to eyeball the *shape* the paper reports, and write
CSV next to them for external plotting.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart", "sparkline"]

_MARKS = "*o+x#@%&"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.2e}"
    return f"{v:,.3g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    Each series gets a distinct mark; overlapping points show the mark
    of the later series. Axes are annotated with min/max values.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in data:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    y_hi, y_lo = _fmt(y_max), _fmt(y_min)
    label_w = max(len(y_hi), len(y_lo)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi.rjust(label_w)
        elif i == height - 1:
            prefix = y_lo.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_lo, x_hi = _fmt(x_min), _fmt(x_max)
    pad = width - len(x_lo) - len(x_hi)
    lines.append(" " * (label_w + 2) + x_lo + " " * max(1, pad) + x_hi)
    if xlabel or ylabel:
        lines.append(f"   x: {xlabel}    y: {ylabel}".rstrip())
    return "\n".join(lines)


def bar_chart(
    bars: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    if not bars:
        return f"{title}\n(no data)"
    peak = max(abs(v) for v in bars.values()) or 1.0
    label_w = max(len(k) for k in bars)
    lines = [title] if title else []
    for name, value in bars.items():
        n = int(abs(value) / peak * width)
        lines.append(f"{name.rjust(label_w)} | {'#' * n} {_fmt(value)}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a numeric sequence (8-level block glyphs)."""
    glyphs = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return glyphs[0] * len(values)
    return "".join(
        glyphs[int((v - lo) / (hi - lo) * (len(glyphs) - 1))] for v in values
    )
