"""Plain-text table rendering for experiment results.

Used for Table 1 and for the per-figure summary rows the benchmark
harness prints (paper value vs measured value).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_seconds"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.4g}"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Human units for latencies: us / ms / s, like lmbench output."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
