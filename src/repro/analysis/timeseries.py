"""Time-series helpers for figure regeneration.

The paper samples cumulative iteration counts at regular intervals;
these utilities turn the machine's per-charge service samples into
evenly spaced series, difference them into rates, and window them.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.metrics import service_at
from repro.sim.task import Task

__all__ = ["regular_times", "cumulative_series", "rate_series", "window"]


def regular_times(t0: float, t1: float, step: float) -> list[float]:
    """Evenly spaced sample times [t0, t0+step, ..., <= t1]."""
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    out: list[float] = []
    t = t0
    # Guard against float drift producing an extra point.
    while t <= t1 + 1e-9:
        out.append(min(t, t1))
        t += step
    return out


def cumulative_series(
    task: Task, times: Sequence[float], scale: float = 1.0
) -> list[tuple[float, float]]:
    """(time, cumulative service * scale) at the given times."""
    return [(t, service_at(task, t) * scale) for t in times]


def rate_series(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Difference a cumulative series into a per-interval rate series."""
    out: list[tuple[float, float]] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt > 0:
            out.append((t1, (v1 - v0) / dt))
    return out


def window(
    points: Sequence[tuple[float, float]], t0: float, t1: float
) -> list[tuple[float, float]]:
    """Points with t0 <= time < t1."""
    return [(t, v) for t, v in points if t0 <= t < t1]
