"""Fairness metrics against the GMS ideal.

The paper's yardstick for a multiprocessor proportional-share scheduler
is Eq. 3: the *surplus* of a thread is its service minus what GMS would
have granted it. These helpers quantify how far a simulated run strays
from the fluid ideal and detect the pathologies of §1.2:

- :func:`gms_deviation` — per-thread ``A_i - A_i^GMS`` via trace replay;
- :func:`max_relative_unfairness` — the worst pairwise violation of
  Eq. 2 over a window, normalized per second;
- :func:`starvation_intervals` — maximal intervals during which a
  continuously runnable thread received no service (Example 1's
  symptom: thread 1 starves for 900 quanta);
- :func:`jains_index` — Jain's fairness index over weighted service.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.gms import replay_trace
from repro.sim.machine import Machine
from repro.sim.metrics import service_between
from repro.sim.task import Task

__all__ = [
    "gms_deviation",
    "max_relative_unfairness",
    "starvation_intervals",
    "longest_starvation",
    "jains_index",
]


def gms_deviation(machine: Machine, t_end: float | None = None) -> dict[int, float]:
    """Per-tid Eq. 3 surplus: actual service minus GMS-replay service.

    Positive values mean the thread got more than its fluid share;
    ideally every magnitude stays within a few quanta.
    """
    t = machine.now if t_end is None else t_end
    ideal = replay_trace(machine.trace.events, machine.num_cpus, t)
    out: dict[int, float] = {}
    for task in machine.tasks:
        out[task.tid] = task.service - ideal.get(task.tid, 0.0)
    return out


def max_relative_unfairness(tasks: Sequence[Task], t0: float, t1: float) -> float:
    """Worst pairwise |A_i/phi_i - A_j/phi_j| over [t0, t1), per second.

    Eq. 2 says this should approach zero for continuously runnable
    threads with fixed instantaneous weights; finite quanta make it
    O(quantum) instead. Uses each task's *current* phi, so callers
    should restrict the window to an interval of fixed weights.
    """
    if t1 <= t0:
        return 0.0
    normalized = [service_between(t, t0, t1) / t.phi for t in tasks]
    if not normalized:
        return 0.0
    return (max(normalized) - min(normalized)) / (t1 - t0)


def starvation_intervals(
    task: Task, t0: float, t1: float, resolution: float = 0.1
) -> list[tuple[float, float]]:
    """Maximal sub-intervals of [t0, t1) in which the task made no
    progress (service flat), sampled at ``resolution``.

    Only meaningful for tasks that are continuously runnable over the
    window (the caller's responsibility — e.g. the Inf apps of Fig. 4).
    """
    if t1 <= t0:
        return []
    from repro.sim.metrics import service_at

    intervals: list[tuple[float, float]] = []
    start: float | None = None
    steps = int((t1 - t0) / resolution)
    prev_service = service_at(task, t0)
    for i in range(1, steps + 1):
        t = t0 + i * resolution
        s = service_at(task, t)
        if s - prev_service <= 1e-12:
            if start is None:
                start = t - resolution
        else:
            if start is not None:
                intervals.append((start, t - resolution))
                start = None
        prev_service = s
    if start is not None:
        intervals.append((start, t0 + steps * resolution))
    return intervals


def longest_starvation(
    task: Task, t0: float, t1: float, resolution: float = 0.1
) -> float:
    """Length of the longest no-progress interval in [t0, t1)."""
    intervals = starvation_intervals(task, t0, t1, resolution)
    if not intervals:
        return 0.0
    return max(b - a for a, b in intervals)


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 is fair.

    Apply to weighted services ``A_i / phi_i`` to measure proportional
    fairness across threads.
    """
    xs = [max(0.0, v) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return (total * total) / (len(xs) * squares)
