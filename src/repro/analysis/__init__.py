"""Analysis utilities: fairness metrics, charts, tables, CSV output."""

from repro.analysis.charts import bar_chart, line_chart, sparkline
from repro.analysis.csvout import write_rows, write_series
from repro.analysis.gantt import gantt_chart, occupancy
from repro.analysis.lag import lag_curve, lag_report, max_absolute_lag
from repro.analysis.fairness import (
    gms_deviation,
    jains_index,
    longest_starvation,
    max_relative_unfairness,
    starvation_intervals,
)
from repro.analysis.tables import format_seconds, render_table
from repro.analysis.timeseries import (
    cumulative_series,
    rate_series,
    regular_times,
    window,
)

__all__ = [
    "bar_chart",
    "cumulative_series",
    "format_seconds",
    "gantt_chart",
    "gms_deviation",
    "jains_index",
    "lag_curve",
    "lag_report",
    "line_chart",
    "max_absolute_lag",
    "occupancy",
    "longest_starvation",
    "max_relative_unfairness",
    "rate_series",
    "regular_times",
    "render_table",
    "sparkline",
    "starvation_intervals",
    "window",
    "write_rows",
    "write_series",
]
