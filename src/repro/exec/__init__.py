"""Pluggable execution backends for scenario grids.

One small protocol — :class:`~repro.exec.base.ExecutionBackend`:
``submit(jobs) -> iterator of SweepCell in completion order``, plus
``cancel``/``close`` — with four shipped implementations:

- :class:`~repro.exec.serial.SerialBackend` — in-process, in-order;
  the reference every other backend must match cell-for-cell;
- :class:`~repro.exec.pool.ProcessPoolBackend` — the classic local
  process pool, now resuming only *unfinished* cells when the pool
  breaks mid-grid;
- :class:`~repro.exec.chunked.ChunkedBackend` — bounded-memory
  chunked streaming with a JSONL checkpoint file, making 10^4-cell
  grids survivable (kill it, re-run it, completed cells replay from
  the file);
- :class:`~repro.exec.sshexec.SSHBackend` — shards cells across
  ``sfs-experiment worker`` subprocesses (local or over ssh) speaking
  a line-JSON protocol on stdio.

:func:`make_backend` resolves the ``--backend`` names the CLI and
``run_cells`` accept. Whatever the backend, ``run_sweep``/``run_cells``
return cell lists identical to the serial reference — the equivalence
is pinned by hypothesis model tests.

**Checkpoint/resume** (:class:`~repro.exec.chunked.ChunkedBackend`).
Every finished cell is one flushed JSON line — ``index``, coordinates,
metrics, ``wall_s``, plus a scenario fingerprint. On resume the file is
validated against the grid: a checkpoint from a *different* grid fails
loudly, even one whose (scheduler, cpus, quantum) coordinates coincide
but whose duration/population/seed/metrics differ, and a torn final
line (kill mid-write) is dropped with a warning. Completed cells replay
from the file bit-for-bit (JSON round-trips floats exactly); only the
remainder executes.

**Worker protocol** (:class:`~repro.exec.sshexec.SSHBackend` ↔
``sfs-experiment worker``). One request/response JSON line per cell
(``{"op": "run", "index": ..., "scenario": <b64>, "metrics": [...]}``
→ ``{"op": "result", ...}``), ``ping``/``pong``, ``shutdown``/``bye``,
and a ``hello`` banner on connect. Scenarios travel as
base64(zlib(pickle)) — run workers only on hosts you trust with code
execution (i.e. your own ssh fleet).
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.base import (
    BackendBase,
    CellJob,
    ExecutionBackend,
    cell_from_json,
    cell_to_json,
    execute_job,
)
from repro.exec.chunked import (
    DEFAULT_CHUNK_SIZE,
    ChunkedBackend,
    job_fingerprint,
    load_checkpoint,
)
from repro.exec.pool import ProcessPoolBackend
from repro.exec.serial import SerialBackend
from repro.exec.sshexec import SSHBackend
from repro.exec.worker import serve as serve_worker

__all__ = [
    "BACKENDS",
    "BackendBase",
    "CellJob",
    "ChunkedBackend",
    "DEFAULT_CHUNK_SIZE",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SSHBackend",
    "SerialBackend",
    "cell_from_json",
    "cell_to_json",
    "execute_job",
    "job_fingerprint",
    "load_checkpoint",
    "make_backend",
    "serve_worker",
]

#: the ``--backend`` names (see :func:`make_backend`)
BACKENDS = ("serial", "process", "chunked", "ssh")


def make_backend(
    name: str,
    workers: int | None = None,
    checkpoint: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    hosts: Sequence[str] = (),
) -> ExecutionBackend:
    """Build a backend from its CLI name.

    ``checkpoint`` with a non-chunked name wraps the request into a
    :class:`ChunkedBackend` for ``"serial"``/``"process"`` (chunked
    *is* the checkpointing pool runner; serial checkpointing is
    ``workers=0``). ``hosts`` only applies to ``"ssh"``.
    """
    if name == "serial":
        if checkpoint is not None:
            return ChunkedBackend(
                workers=0, chunk_size=chunk_size, checkpoint=checkpoint
            )
        return SerialBackend()
    if name == "process":
        if checkpoint is not None:
            return ChunkedBackend(
                workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
            )
        return ProcessPoolBackend(workers=workers)
    if name == "chunked":
        return ChunkedBackend(
            workers=workers, chunk_size=chunk_size, checkpoint=checkpoint
        )
    if name == "ssh":
        if not hosts:
            raise ValueError("backend 'ssh' needs at least one --host")
        if checkpoint is not None:
            # Checkpointing composes: chunked streaming over the
            # ssh-sharded executor.
            return ChunkedBackend(
                chunk_size=chunk_size,
                checkpoint=checkpoint,
                inner=SSHBackend(hosts),
            )
        return SSHBackend(hosts)
    raise ValueError(f"unknown backend {name!r}; known: {', '.join(BACKENDS)}")
