"""Multi-host sharding over ``sfs-experiment worker`` subprocesses.

:class:`SSHBackend` is the "second machine" step of the execution
stack: one worker subprocess per host, each speaking the line-JSON
protocol of :mod:`repro.exec.worker` over stdio. Hosts named
``"local"``/``"localhost"`` run the worker as a direct child of this
interpreter (no ssh, no network — which is also how the tests exercise
the full wire protocol); anything else is reached via
``ssh -o BatchMode=yes <host> sfs-experiment worker``, so a host is
usable the moment the package is installed there and key-based ssh
works.

Scheduling is pull-based: each host thread pops the next job off a
shared queue, ships it, and blocks for the result — so fast hosts
naturally take more cells and a heterogeneous fleet needs no static
partitioning. A host whose worker dies (connection drop, crash,
missing install) simply stops pulling; its in-flight job goes back on
the queue, and if every host dies the remaining cells finish serially
in-process — same degrade-loudly semantics as the pooled backends.

This backend is deliberately a *stub* of a distributed runner: no
retries-with-backoff, no host weighting, no result caching. Compose it
with a :class:`~repro.exec.chunked.ChunkedBackend` checkpoint file
(``run_cells(..., backend=SSHBackend(...), checkpoint=...)`` wires
that up) to make multi-host runs resumable.
"""

from __future__ import annotations

import json
import queue
import subprocess
import sys
import threading
import warnings
from typing import Any, Iterator, Sequence

from repro.exec.base import BackendBase, CellJob, cell_from_json, execute_job
from repro.exec.worker import PROTOCOL_VERSION, encode_scenario

__all__ = ["SSHBackend", "LOCAL_HOSTS"]

#: host aliases that mean "spawn the worker as a local child process"
LOCAL_HOSTS = frozenset({"local", "localhost"})


class _WorkerDied(Exception):
    """The host's worker process went away mid-conversation."""


class SSHBackend(BackendBase):
    """Shard a grid across per-host worker subprocesses.

    Parameters
    ----------
    hosts:
        One entry per worker: ``"local"``/``"localhost"`` for a child
        process of this interpreter, any other string for an ssh host.
        Repeating a host runs that many workers on it.
    remote_command:
        The command that starts the worker on a remote host (default
        ``sfs-experiment``, i.e. the installed console script).
    """

    def __init__(
        self,
        hosts: Sequence[str],
        remote_command: str = "sfs-experiment",
    ) -> None:
        super().__init__()
        if not hosts:
            raise ValueError("SSHBackend needs at least one host")
        self.hosts = tuple(hosts)
        self.remote_command = remote_command
        self._procs: list[subprocess.Popen] = []
        self._lock = threading.Lock()

    # -- worker process plumbing ---------------------------------------

    def _spawn(self, host: str) -> subprocess.Popen:
        if host in LOCAL_HOSTS:
            argv = [sys.executable, "-m", "repro.experiments.cli", "worker"]
        else:
            argv = [
                "ssh",
                "-o",
                "BatchMode=yes",
                host,
                self.remote_command,
                "worker",
            ]
        proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,  # line buffered
        )
        with self._lock:
            self._procs.append(proc)
        return proc

    @staticmethod
    def _read_message(proc: subprocess.Popen) -> dict[str, Any]:
        """Next protocol line from the worker; skip ssh banner noise."""
        assert proc.stdout is not None
        while True:
            line = proc.stdout.readline()
            if not line:
                raise _WorkerDied("worker closed its stdout")
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue  # motd / banner chatter before the hello line
            if isinstance(message, dict) and "op" in message:
                return message

    def _host_loop(
        self,
        host: str,
        jobs: "queue.SimpleQueue[CellJob]",
        results: "queue.Queue[tuple[str, Any]]",
    ) -> None:
        """One host's pull-execute-report loop (runs in a thread)."""
        proc = None
        current: CellJob | None = None
        try:
            proc = self._spawn(host)
            hello = self._read_message(proc)
            if hello.get("op") != "hello" or hello.get("version") != PROTOCOL_VERSION:
                raise _WorkerDied(f"bad handshake {hello!r}")
            assert proc.stdin is not None
            while not self._cancelled:
                try:
                    current = jobs.get_nowait()
                except queue.Empty:
                    break
                request = {
                    "op": "run",
                    "index": current.index,
                    "scenario": encode_scenario(current.scenario),
                    "metrics": list(current.metrics),
                }
                proc.stdin.write(json.dumps(request) + "\n")
                proc.stdin.flush()
                reply = self._read_message(proc)
                if reply.get("op") == "result":
                    results.put(("cell", cell_from_json(reply["cell"])))
                    current = None
                elif reply.get("op") == "error":
                    # The cell itself raised on the worker: a real
                    # failure of the job, not of the host.
                    failure = RuntimeError(
                        f"cell {reply.get('index')} failed on "
                        f"{host}: {reply.get('error')}"
                    )
                    results.put(("raise", failure))
                    current = None
                else:
                    raise _WorkerDied(f"unexpected reply {reply!r}")
            if proc.stdin is not None and proc.poll() is None:
                proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
                proc.stdin.flush()
        except (_WorkerDied, OSError, ValueError) as exc:
            if current is not None:
                jobs.put(current)  # hand the in-flight cell back
            results.put(("lost", (host, repr(exc))))
        finally:
            if proc is not None:
                self._reap(proc)
            results.put(("exit", host))

    def _reap(self, proc: subprocess.Popen) -> None:
        """Terminate and wait a worker so it never lingers as a zombie."""
        if proc.poll() is None:
            proc.terminate()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            proc.kill()
            proc.wait(timeout=5.0)
        with self._lock:
            if proc in self._procs:
                self._procs.remove(proc)

    # -- the backend surface -------------------------------------------

    def submit(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        jobs = list(jobs)
        if not jobs:
            return
        todo: "queue.SimpleQueue[CellJob]" = queue.SimpleQueue()
        for job in jobs:
            todo.put(job)
        results: "queue.Queue[tuple[str, Any]]" = queue.Queue()
        threads = [
            threading.Thread(
                target=self._host_loop,
                args=(host, todo, results),
                name=f"sfs-ssh-{host}-{i}",
                daemon=True,
            )
            for i, host in enumerate(self.hosts)
        ]
        for thread in threads:
            thread.start()
        live = len(threads)
        finished: set[int] = set()
        try:
            while live > 0:
                kind, payload = results.get()
                if kind == "cell":
                    finished.add(payload.index)
                    yield payload
                elif kind == "raise":
                    self.cancel()
                    raise payload
                elif kind == "lost":
                    host, why = payload
                    warnings.warn(
                        f"worker on {host} died ({why}); its cells go "
                        "back on the queue",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                elif kind == "exit":
                    live -= 1
        finally:
            for thread in threads:
                thread.join(timeout=5.0)
        if self._cancelled:
            return
        leftover = [job for job in jobs if job.index not in finished]
        if leftover:
            # Every host is gone and work remains: same degrade-loudly
            # fallback as the pooled backends.
            warnings.warn(
                f"all {len(self.hosts)} host worker(s) gone; running the "
                f"remaining {len(leftover)} cells serially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            for job in leftover:
                if self._cancelled:
                    return
                yield execute_job(job)

    def close(self) -> None:
        with self._lock:
            procs = list(self._procs)
        for proc in procs:
            self._reap(proc)
