"""The ``sfs-experiment worker`` wire protocol: line-JSON over stdio.

One worker process serves one connection: it reads newline-delimited
JSON requests on stdin and writes one JSON response line (flushed) per
request to stdout. This is the substrate
:class:`~repro.exec.sshexec.SSHBackend` shards sweep chunks over —
locally via a plain subprocess, remotely via ``ssh <host>
sfs-experiment worker`` — and it is deliberately dumb: no framing
beyond newlines, no concurrency inside the worker, no state between
requests.

Requests / responses (all single lines)::

    -> {"op": "ping"}
    <- {"op": "pong", "version": 1}

    -> {"op": "run", "index": 7, "scenario": "<b64>", "metrics": [...]}
    <- {"op": "result", "index": 7, "cell": {...}}          # success
    <- {"op": "error", "index": 7, "error": "<repr>"}       # cell raised

    -> {"op": "shutdown"}
    <- {"op": "bye"}

The worker also announces itself with ``{"op": "hello", "version": 1}``
on startup so the backend can tell "connected" from "ssh printed a
motd". Scenarios travel as base64(zlib(pickle)) — they are arbitrary
plain-data dataclasses, which JSON cannot carry — so **only run
workers on hosts you trust with code execution**; that is already true
of any box you'd ``ssh`` a sweep to. EOF on stdin ends the worker.
"""

from __future__ import annotations

import base64
import json
import pickle
import sys
import zlib
from typing import Any, TextIO

from repro.exec.base import CellJob, cell_to_json, execute_job

__all__ = [
    "PROTOCOL_VERSION",
    "encode_scenario",
    "decode_scenario",
    "serve",
]

PROTOCOL_VERSION = 1


def encode_scenario(scenario: Any) -> str:
    """Scenario -> compact single-line ASCII payload."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(scenario, pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_scenario(payload: str) -> Any:
    """Inverse of :func:`encode_scenario` (trusted input only)."""
    return pickle.loads(zlib.decompress(base64.b64decode(payload)))


def _reply(stdout: TextIO, message: dict[str, Any]) -> None:
    stdout.write(json.dumps(message))
    stdout.write("\n")
    stdout.flush()


def serve(stdin: TextIO | None = None, stdout: TextIO | None = None) -> int:
    """Serve the worker protocol until shutdown/EOF; returns exit code."""
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    _reply(stdout, {"op": "hello", "version": PROTOCOL_VERSION})
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            op = request["op"]
        except (ValueError, KeyError, TypeError):
            _reply(stdout, {"op": "error", "error": f"bad request {line!r}"})
            continue
        if op == "shutdown":
            _reply(stdout, {"op": "bye"})
            return 0
        if op == "ping":
            _reply(stdout, {"op": "pong", "version": PROTOCOL_VERSION})
            continue
        if op != "run":
            _reply(stdout, {"op": "error", "error": f"unknown op {op!r}"})
            continue
        index = request.get("index")
        try:
            job = CellJob(
                index=int(index),
                scenario=decode_scenario(request["scenario"]),
                metrics=tuple(request["metrics"]),
            )
            cell = execute_job(job)
        except Exception as exc:  # ship the failure, keep serving
            _reply(stdout, {"op": "error", "index": index, "error": repr(exc)})
            continue
        _reply(
            stdout,
            {"op": "result", "index": job.index, "cell": cell_to_json(cell)},
        )
    return 0
