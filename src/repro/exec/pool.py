"""Process-pool execution with finish-only crash recovery.

This is the behaviour ``run_cells`` has always had — a
``concurrent.futures.ProcessPoolExecutor`` fanning cells across local
cores — with one important repair: when the pool breaks (a worker
segfaults, gets OOM-killed, or the sandbox forbids subprocesses
mid-run), only the cells **without a completed result** are re-run
serially. The old fallback re-ran the *entire* grid, so a
``BrokenProcessPool`` after cell 9,999 of 10,000 repeated all 10,000
cells and double-counted their ``wall_s``.

Cells are yielded in completion order via ``as_completed``; the
deterministic grid ordering callers see is restored by the reordering
wrapper in :mod:`repro.scenario.sweep`.
"""

from __future__ import annotations

import concurrent.futures
import os
import warnings
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, Sequence

from repro.exec.base import BackendBase, CellJob, execute_job

__all__ = ["ProcessPoolBackend"]


class ProcessPoolBackend(BackendBase):
    """Fan jobs across a local process pool; resume survivors serially.

    ``workers=None`` sizes the pool to the job list (capped by the OS
    CPU count); ``workers=0`` forces serial in-process execution.
    ``_executor_factory`` exists for the fault-injection tests — it
    lets them hand in an executor that breaks on cue without having to
    kill a real worker process.
    """

    def __init__(
        self,
        workers: int | None = None,
        _executor_factory: Callable[[int], Any] | None = None,
    ) -> None:
        super().__init__()
        self.workers = workers
        self._executor_factory = _executor_factory or (
            lambda n: concurrent.futures.ProcessPoolExecutor(max_workers=n)
        )
        self._pool: Any = None
        #: cells re-executed in-process after a pool failure (telemetry
        #: for the resume-only-unfinished contract)
        self.serial_reruns = 0

    def _run_serially(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        for job in jobs:
            if self._cancelled:
                return
            self.serial_reruns += 1
            yield execute_job(job)

    def submit(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        jobs = list(jobs)
        if not jobs:
            return
        if self.workers == 0 or len(jobs) <= 1:
            for job in jobs:
                if self._cancelled:
                    return
                yield execute_job(job)
            return
        max_workers = min(len(jobs), self.workers or os.cpu_count() or 1)
        if self._pool is None:
            # The pool is created lazily and *kept* across submit()
            # calls — a ChunkedBackend feeding chunk after chunk reuses
            # the same worker processes instead of re-forking per
            # chunk. close() (or a broken pool) tears it down.
            try:
                self._pool = self._executor_factory(max_workers)
            except (OSError, PermissionError) as exc:
                # Restricted sandboxes surface missing subprocess
                # support at pool creation; degrade to serial, loudly.
                warnings.warn(
                    f"process pool unavailable ({exc!r}); running the "
                    "grid serially in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
                yield from self._run_serially(jobs)
                return
        pool = self._pool
        finished: set[int] = set()
        broken: BaseException | None = None
        futures: dict[Any, CellJob] = {}
        try:
            # Built incrementally (not a comprehension) so that a pool
            # break mid-submission still leaves the already-submitted
            # futures in the map for the salvage pass below. submit()
            # can only fail for pool-machinery reasons (a cell's own
            # error surfaces later, via its future).
            for job in jobs:
                futures[pool.submit(execute_job, job)] = job
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            broken = exc
        if broken is None:
            try:
                for future in concurrent.futures.as_completed(futures):
                    if self._cancelled:
                        break
                    # Only BrokenProcessPool means the *pool* died; any
                    # other exception is the cell's own failure and
                    # propagates to the caller undisturbed.
                    cell = future.result()
                    finished.add(futures[future].index)
                    yield cell
            except BrokenProcessPool as exc:
                broken = exc
        if broken is not None:
            # Salvage results that completed before the pool died
            # but had not been yielded yet — they are real work,
            # not to be repeated.
            for future, job in futures.items():
                if job.index in finished or not future.done():
                    continue
                if future.cancelled() or future.exception() is not None:
                    continue
                finished.add(job.index)
                yield future.result()
        if broken is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if broken is not None and not self._cancelled:
            # A broken pool can mean a genuinely crashing worker (e.g.
            # OOM) — warn, then finish ONLY the cells that never
            # produced a result; completed work is never repeated.
            unfinished = [job for job in jobs if job.index not in finished]
            warnings.warn(
                f"process pool died ({broken!r}); resuming the "
                f"{len(unfinished)} unfinished of {len(jobs)} cells "
                "serially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            yield from self._run_serially(unfinished)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
