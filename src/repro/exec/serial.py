"""In-process serial execution: the reference backend.

Every other backend's output is defined as "identical to
:class:`SerialBackend`, modulo completion order and ``wall_s``" — the
equivalence the hypothesis model tests in
``tests/test_exec_backends.py`` enforce. It is also the fallback the
pooled backends degrade to when the platform cannot spawn worker
processes.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.exec.base import BackendBase, CellJob, execute_job

__all__ = ["SerialBackend"]


class SerialBackend(BackendBase):
    """Run every job in the calling process, one at a time, in order."""

    def submit(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        for job in jobs:
            if self._cancelled:
                return
            yield execute_job(job)
