"""The :class:`ExecutionBackend` protocol and its shared plumbing.

A backend answers one question: *given a list of independent cell
jobs, produce their* :class:`~repro.scenario.sweep.SweepCell` *results
as they finish*. Everything else — deterministic grid ordering,
metric summaries, CSV export — is layered on top by
:mod:`repro.scenario.sweep` and the CLI, so the four shipped backends
(:class:`~repro.exec.serial.SerialBackend`,
:class:`~repro.exec.pool.ProcessPoolBackend`,
:class:`~repro.exec.chunked.ChunkedBackend`,
:class:`~repro.exec.sshexec.SSHBackend`) stay interchangeable: same
jobs in, same cells out, only the execution substrate differs.

The contract:

- ``submit(jobs)`` returns an iterator of cells **in completion
  order** (not job order). Consuming it lazily is what makes streaming
  export and bounded-memory 10^4-cell grids possible.
- ``cancel()`` asks an in-flight ``submit`` iteration to stop early;
  already-finished cells may still be yielded.
- ``close()`` releases pools/processes/files; idempotent. Backends are
  context managers (``close`` on exit).

Cells cross process and host boundaries, so this module also defines
the flat JSON codec (:func:`cell_to_json` / :func:`cell_from_json`)
used by the chunked checkpoint file and the worker wire protocol —
metric values are restricted to JSON-safe scalars and flat dicts by
construction (see :func:`repro.scenario.result.summarize`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle: scenario.sweep
    from repro.scenario.spec import Scenario  # uses this package

__all__ = [
    "CellJob",
    "ExecutionBackend",
    "BackendBase",
    "execute_job",
    "cell_to_json",
    "cell_from_json",
]


@dataclass(frozen=True)
class CellJob:
    """One unit of backend work: run ``scenario``, summarize ``metrics``.

    ``index`` is the job's position in the caller's grid — the key the
    deterministic-reordering wrapper and the checkpoint file use to
    match results back to cells, whatever order they complete in.
    """

    index: int
    scenario: Scenario
    metrics: tuple[str, ...]


def execute_job(job: CellJob) -> Any:
    """Run one cell job; the single worker entry point of every backend.

    Returns a :class:`~repro.scenario.sweep.SweepCell` whose ``wall_s``
    is the *worker-side* wall clock of the ``run_scenario`` call — so
    events/sec stays meaningful no matter which backend (or host)
    executed the cell.
    """
    from repro.scenario.result import summarize
    from repro.scenario.runner import run_scenario
    from repro.scenario.sweep import SweepCell

    t0 = time.perf_counter()
    result = run_scenario(job.scenario)
    wall = time.perf_counter() - t0
    return SweepCell(
        index=job.index,
        scheduler=job.scenario.scheduler,
        cpus=job.scenario.cpus,
        quantum=job.scenario.quantum,
        metrics=summarize(result, job.metrics),
        wall_s=wall,
    )


def cell_to_json(cell: Any) -> dict[str, Any]:
    """Flatten one SweepCell into a JSON-safe dict (checkpoint/wire form)."""
    return {
        "index": cell.index,
        "scheduler": cell.scheduler,
        "cpus": cell.cpus,
        "quantum": cell.quantum,
        "metrics": dict(cell.metrics),
        "wall_s": cell.wall_s,
    }


def cell_from_json(payload: dict[str, Any]) -> Any:
    """Rebuild a SweepCell from its JSON form.

    Python's JSON round-trips floats exactly (repr-based), so a cell
    loaded from a checkpoint compares equal to the freshly computed
    one — the property the backend-equivalence tests pin.
    """
    from repro.scenario.sweep import SweepCell

    return SweepCell(
        index=int(payload["index"]),
        scheduler=payload["scheduler"],
        cpus=int(payload["cpus"]),
        quantum=float(payload["quantum"]),
        metrics=payload["metrics"],
        wall_s=float(payload["wall_s"]),
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the sweep layer needs from an execution substrate."""

    def submit(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        """Execute ``jobs``; yield SweepCells in completion order."""
        ...

    def cancel(self) -> None:
        """Stop an in-flight ``submit`` iteration as soon as possible."""
        ...

    def close(self) -> None:
        """Release every held resource; safe to call more than once."""
        ...


class BackendBase:
    """Shared cancel-flag + context-manager scaffolding for backends."""

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    def close(self) -> None:  # pragma: no cover - overridden where needed
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
