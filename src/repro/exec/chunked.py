"""Bounded-memory chunked streaming with a JSONL resume checkpoint.

``ProcessPoolBackend`` submits the whole grid up front: fine for a few
hundred cells, but a 10^4-cell lattice materialises 10^4 futures (and,
with ``pool.map``, 10^4 buffered results) before the caller sees the
first one. :class:`ChunkedBackend` instead partitions the job list
into chunks of ``chunk_size``, keeps only one chunk in flight, and
yields each cell the moment it finishes — memory is bounded by the
chunk, not the grid.

Every finished cell is also appended (one JSON line, flushed) to an
optional **checkpoint file**. If the run is killed — OOM, preemption,
ctrl-C — re-running with the same checkpoint path skips every cell
that already has a line: completed work is yielded straight from the
file and only the remainder executes. The checkpoint is validated
against the grid (index/scheduler/cpus/quantum must match), so a stale
file from a *different* grid fails loudly instead of silently serving
wrong results; a torn final line (the crash happened mid-write) is
dropped with a warning.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from typing import Any, Iterator, Sequence

from repro.exec.base import BackendBase, CellJob, cell_from_json, cell_to_json
from repro.exec.pool import ProcessPoolBackend
from repro.exec.serial import SerialBackend

__all__ = ["ChunkedBackend", "job_fingerprint", "load_checkpoint"]

DEFAULT_CHUNK_SIZE = 64

#: pinned so fingerprints don't drift with the interpreter's default
_FINGERPRINT_PROTOCOL = 4


def job_fingerprint(job: CellJob) -> str:
    """A short digest of *everything* that determines a job's result.

    The checkpoint stores this per cell so that a stale file from a
    grid with the same (scheduler, cpus, quantum) coordinates but a
    different duration/population/seed/metrics is rejected instead of
    silently served. Pickle at a pinned protocol is deterministic for
    the plain-data scenarios this package runs; the worst a Python
    version bump can do is *reject* an old checkpoint (the safe
    direction).
    """
    payload = pickle.dumps((job.scenario, job.metrics), protocol=_FINGERPRINT_PROTOCOL)
    return hashlib.sha1(payload).hexdigest()[:12]


def load_checkpoint(path: str, jobs: Sequence[CellJob]) -> dict[int, Any]:
    """Read a checkpoint file into ``{index: SweepCell}`` for ``jobs``.

    Raises ValueError when a line matches no job, disagrees with the
    job's coordinates, or fails the scenario fingerprint — the
    checkpoint belongs to a different grid. A line that fails to parse
    ends the scan with a warning: it is the torn tail of an
    interrupted write, and everything after it is untrustworthy.
    """
    return _scan_checkpoint(path, jobs)[0]


def _scan_checkpoint(path: str, jobs: Sequence[CellJob]) -> tuple[dict[int, Any], int]:
    """(completed cells, byte offset up to which the file is valid).

    The offset lets :class:`ChunkedBackend` truncate a torn file back
    to its valid prefix before appending — otherwise fresh lines would
    land *after* the tear, be ignored by every later scan, and the
    same cells would re-run on every resume while the file grew
    without bound.
    """
    by_index = {job.index: job for job in jobs}
    done: dict[int, Any] = {}
    valid_bytes = 0
    with open(path, "rb") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                valid_bytes += len(raw)
                continue
            try:
                payload = json.loads(line)
                cell = cell_from_json(payload)
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"checkpoint {path}:{lineno} is torn/corrupt; "
                    "ignoring it and the rest of the file",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            job = by_index.get(cell.index)
            if job is None:
                raise ValueError(
                    f"checkpoint {path}:{lineno} has cell index "
                    f"{cell.index}, which is not in this grid "
                    f"(size {len(jobs)}) — wrong checkpoint file?"
                )
            if (
                cell.scheduler != job.scenario.scheduler
                or cell.cpus != job.scenario.cpus
                or cell.quantum != job.scenario.quantum
            ):
                raise ValueError(
                    f"checkpoint {path}:{lineno} disagrees with the grid "
                    f"at index {cell.index}: file has "
                    f"({cell.scheduler}, {cell.cpus}, {cell.quantum}), "
                    f"grid has ({job.scenario.scheduler}, "
                    f"{job.scenario.cpus}, {job.scenario.quantum}) — "
                    "wrong checkpoint file?"
                )
            if payload.get("key") != job_fingerprint(job):
                raise ValueError(
                    f"checkpoint {path}:{lineno} fails the scenario "
                    f"fingerprint at index {cell.index}: the cell was "
                    "recorded for a different scenario or metric set "
                    "(same coordinates, different duration/population/"
                    "seed/...) — wrong checkpoint file?"
                )
            done[cell.index] = cell
            valid_bytes += len(raw)
    return done, valid_bytes


class ChunkedBackend(BackendBase):
    """Stream a grid chunk-by-chunk, checkpointing each finished cell.

    ``workers`` is forwarded to the per-chunk process pool (0 forces
    serial in-process execution — chunking and checkpointing still
    apply). ``checkpoint=None`` gives plain bounded-memory streaming
    with no resume file. ``inner`` substitutes any other backend as
    the per-chunk executor — e.g. an
    :class:`~repro.exec.sshexec.SSHBackend`, which is how multi-host
    runs gain a resume checkpoint — and is then owned by the caller
    (``close`` still closes it).
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        checkpoint: str | None = None,
        inner: Any = None,
    ) -> None:
        super().__init__()
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.checkpoint = checkpoint
        self.inner = inner
        self._inner: Any = None
        #: cells served from the checkpoint instead of re-executed
        self.resumed = 0

    def _make_inner(self) -> tuple[Any, bool]:
        """(backend to run the next chunk, whether this call owns it)."""
        if self.inner is not None:
            return self.inner, False
        if self.workers == 0:
            return SerialBackend(), True
        return ProcessPoolBackend(self.workers), True

    def submit(self, jobs: Sequence[CellJob]) -> Iterator[Any]:
        jobs = list(jobs)
        done: dict[int, Any] = {}
        if self.checkpoint and os.path.exists(self.checkpoint):
            done, valid_bytes = _scan_checkpoint(self.checkpoint, jobs)
            if valid_bytes < os.path.getsize(self.checkpoint):
                # Cut the file back to its valid prefix so this run's
                # lines append where the next scan will read them.
                with open(self.checkpoint, "rb+") as fh:
                    fh.truncate(valid_bytes)
        self.resumed = len(done)
        # Replay completed work first — straight from the file, no
        # simulation — then execute only the remainder.
        for index in sorted(done):
            if self._cancelled:
                return
            yield done[index]
        todo = [job for job in jobs if job.index not in done]
        by_index = {job.index: job for job in todo}
        sink = None
        if self.checkpoint:
            parent = os.path.dirname(self.checkpoint)
            if parent:
                os.makedirs(parent, exist_ok=True)
            sink = open(self.checkpoint, "a")
        # One inner backend reused for every chunk: a process pool's
        # workers survive across chunks instead of being re-forked
        # per chunk (which would dominate short cells on big grids).
        inner, owned = self._make_inner()
        self._inner = inner
        try:
            for start in range(0, len(todo), self.chunk_size):
                if self._cancelled:
                    return
                chunk = todo[start : start + self.chunk_size]
                for cell in inner.submit(chunk):
                    if sink is not None:
                        record = cell_to_json(cell)
                        record["key"] = job_fingerprint(by_index[cell.index])
                        sink.write(json.dumps(record))
                        sink.write("\n")
                        sink.flush()
                    yield cell
                    if self._cancelled:
                        return
        finally:
            if owned:
                inner.close()
            self._inner = None
            if sink is not None:
                sink.close()

    def cancel(self) -> None:
        super().cancel()
        if self._inner is not None:
            self._inner.cancel()

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        if self.inner is not None:
            self.inner.close()
