"""Cost models for context switches and scheduler bookkeeping.

The paper's Table 1 and Figure 7 measure two distinct components of the
per-context-switch cost on the 500 MHz dual Pentium-III testbed:

1. **Scheduler bookkeeping** — picking the next thread and updating run
   queue structures. This grows with the number of runnable processes
   (Fig. 7) and is higher for SFS than for the Linux time-sharing
   scheduler (Table 1: 1 us vs 4 us for two 0 KB processes).
2. **Cache restoration** — re-populating the processor caches with the
   working set of the incoming process. This grows with process size
   (Table 1: 15→19 us at 8 proc/16 KB, 178→179 us at 16 proc/64 KB)
   and dominates for large processes, which is why the *relative*
   difference between the schedulers shrinks with size.

We reproduce component (1) two ways: a real wall-clock measurement of
our Python scheduler implementations (``benchmarks/test_bench_sched_ops``)
and, inside the simulator, an analytic model whose constants are
calibrated to the paper's numbers (defaults below). Component (2) is an
explicit quadratic model fitted to Table 1's 16 KB and 64 KB rows: the
fit ``cost(kb) = 2.5e-7*kb + 3.906e-8*kb^2`` passes through ~14 us at
16 KB and ~176 us at 64 KB, capturing the L1-to-L2 spill superlinearity.

Simulation experiments that study *allocation* (Figs. 1, 4, 5, 6) use
these costs too; at the paper's 200 ms quantum they are 4-5 orders of
magnitude below the quantum and do not disturb allocation shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DecisionCostParams",
    "CostModel",
    "ZERO_COST",
    "TESTBED_COST",
    "LMBENCH_COST",
    "COST_MODELS",
    "SYSCALL_OVERHEAD",
    "FORK_OVERHEAD",
    "EXEC_OVERHEAD",
]

#: lmbench rows in Table 1 that do not involve the CPU scheduler at all;
#: the paper reports them identical under both schedulers.
SYSCALL_OVERHEAD = 0.7e-6
FORK_OVERHEAD = 400e-6
EXEC_OVERHEAD = 2e-3


@dataclass(frozen=True)
class DecisionCostParams:
    """Analytic model of one scheduler *pick-next* decision.

    ``cost(t) = base + per_thread * t + log_coeff * t * log2(t + 1)``

    where ``t`` is the number of runnable threads. The ``per_thread``
    term models linear scans (Linux 2.2 ``goodness()`` loop, SFS surplus
    updates); the ``log_coeff`` term models re-sorting. Defaults for each
    scheduler live on the scheduler classes and are calibrated so that a
    2-process run queue reproduces Table 1 (time sharing ~1 us, SFS
    ~4 us) and the growth reproduces Fig. 7's 0-10 us band at 50
    processes.
    """

    base: float = 0.0
    per_thread: float = 0.0
    log_coeff: float = 0.0

    def cost(self, runnable_count: int) -> float:
        """Decision cost in seconds for a run queue of the given length."""
        t = max(0, runnable_count)
        c = self.base + self.per_thread * t
        if self.log_coeff:
            c += self.log_coeff * t * math.log2(t + 1)
        return c


@dataclass(frozen=True)
class CostModel:
    """Aggregate context-switch cost model for the simulated machine.

    Parameters are in seconds (and per-KB for the cache terms).
    """

    #: fixed register/TLB switch cost, independent of scheduler
    ctx_base: float = 0.9e-6
    #: linear cache-restoration cost per KB of incoming working set
    cache_per_kb: float = 2.5e-7
    #: quadratic cache term (L1 spill) per KB^2
    cache_per_kb2: float = 3.906e-8
    #: include the scheduler's analytic decision cost in switch time
    include_decision_cost: bool = True
    #: what the decision cost scales with: "runnable" (run-queue length,
    #: the §3.2 complexity argument) or "live" (all non-exited
    #: processes — what lmbench's mostly-blocked ring exercises, since
    #: every process still occupies scheduler bookkeeping state)
    decision_count_mode: str = "runnable"

    def __post_init__(self) -> None:
        if self.decision_count_mode not in ("runnable", "live"):
            raise ValueError(
                "decision_count_mode must be 'runnable' or 'live', "
                f"got {self.decision_count_mode!r}"
            )

    def cache_restore_cost(self, footprint_kb: float) -> float:
        """Cache-restoration time for a process of the given size."""
        kb = max(0.0, footprint_kb)
        return kb * self.cache_per_kb + kb * kb * self.cache_per_kb2

    def switch_cost(
        self,
        prev_footprint_kb: float | None,
        next_footprint_kb: float,
        decision_cost: float,
    ) -> float:
        """Total dead time charged when a CPU switches to a new task.

        ``prev_footprint_kb`` is None when the CPU was idle (cold
        dispatch: no state to save, but the decision still costs).
        """
        cost = self.ctx_base + self.cache_restore_cost(next_footprint_kb)
        if self.include_decision_cost:
            cost += decision_cost
        return cost


#: No overhead at all — for algorithm-only studies and fast tests.
ZERO_COST = CostModel(
    ctx_base=0.0, cache_per_kb=0.0, cache_per_kb2=0.0, include_decision_cost=False
)

#: Calibrated to the paper's dual 500 MHz Pentium-III testbed (Table 1).
TESTBED_COST = CostModel()

#: Table 1 / Fig. 7 configuration: lmbench's processes are live but
#: mostly blocked; overhead scales with the process count.
LMBENCH_COST = CostModel(decision_count_mode="live")

#: registry-name -> cost model, shared by the scenario layer and CLI
COST_MODELS = {
    "zero": ZERO_COST,
    "testbed": TESTBED_COST,
    "lmbench": LMBENCH_COST,
}
