"""Sorted run-queue structures used by the SFS/SFQ implementations.

§3.1 of the paper: *"Our implementation of SFS maintains three queues.
The first queue consists of all runnable threads in descending order of
their weights. The other two queues consist of all runnable threads in
increasing order of start tags and surplus values, respectively."*

:class:`SortedTaskList` mirrors the kernel's doubly-linked sorted lists
but keeps every operation logarithmic: insertion finds the position by
binary search over cached ``(key, tid)`` pairs (the kernel uses a linear
walk; the paper notes both options in §3.2), and removal/membership
locate the entry by binary search on the key cached at insertion time —
the cached key stays valid even when the task's *live* key has drifted,
which is exactly what makes O(log n) removal possible without an
identity scan. :meth:`resort_insertion` re-sorts with insertion sort —
the paper's choice because the list is *mostly sorted* after a
virtual-time change recomputes every surplus. The number of comparisons
each operation performs is counted so tests and benchmarks can verify
the complexity claims of §3.2.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterator

from repro.sim.task import Task

__all__ = ["SortedTaskList"]


class SortedTaskList:
    """A list of tasks kept sorted by ``key(task)``, ties broken by tid.

    Keys are cached at insertion time; if a task's key changes, call
    :meth:`reposition` (single task) or :meth:`resort_insertion` (bulk,
    after recomputing every key) to restore order. A ``tid -> cached
    key`` map makes :meth:`remove`, :meth:`discard`, :meth:`reposition`
    and ``in`` O(log n): the cached key pins the entry's exact position
    in the key array (tids are unique, so cached keys are too), and a
    ``bisect`` lands on it directly.
    """

    __slots__ = ("_key", "_keys", "_tasks", "_cached_key", "comparisons")

    def __init__(self, key: Callable[[Task], float]) -> None:
        self._key = key
        self._keys: list[tuple[float, int]] = []
        self._tasks: list[Task] = []
        #: tid -> the (key, tid) pair under which the task was inserted
        self._cached_key: dict[int, tuple[float, int]] = {}
        #: cumulative comparison count (instrumentation for §3.2 claims)
        self.comparisons: int = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __contains__(self, task: Task) -> bool:
        return task.tid in self._cached_key

    def add(self, task: Task) -> None:
        """Insert ``task`` at its sorted position (O(log n) search)."""
        if task.tid in self._cached_key:
            raise ValueError(f"{task!r} is already in the queue")
        k = (self._key(task), task.tid)
        idx = bisect_right(self._keys, k)
        self.comparisons += len(self._keys).bit_length() or 1
        self._keys.insert(idx, k)
        self._tasks.insert(idx, task)
        self._cached_key[task.tid] = k

    def _locate(self, task: Task) -> int:
        """Index of ``task``, found by bisect on its cached key."""
        k = self._cached_key[task.tid]
        idx = bisect_left(self._keys, k)
        self.comparisons += len(self._keys).bit_length() or 1
        return idx

    def remove(self, task: Task) -> None:
        """Remove ``task`` (O(log n)). Raises ValueError if absent."""
        if task.tid not in self._cached_key:
            raise ValueError(f"{task!r} not in queue")
        idx = self._locate(task)
        del self._tasks[idx]
        del self._keys[idx]
        del self._cached_key[task.tid]

    def discard(self, task: Task) -> bool:
        """Remove ``task`` if present; return whether it was present."""
        if task.tid not in self._cached_key:
            return False
        self.remove(task)
        return True

    def reposition(self, task: Task) -> None:
        """Re-insert a task whose key changed (remove + add)."""
        self.remove(task)
        self.add(task)

    def head(self) -> Task | None:
        """The task with the smallest key, or None if empty."""
        return self._tasks[0] if self._tasks else None

    def peek_n(self, n: int) -> list[Task]:
        """The first ``n`` tasks in key order (used by the §3.2 heuristic)."""
        return self._tasks[:n]

    def peek_tail_n(self, n: int) -> list[Task]:
        """The last ``n`` tasks in key order.

        The weight queue is sorted in *descending* weight, so the §3.2
        heuristic examines it "backwards" — i.e. from this end — to find
        the smallest weights.
        """
        if n <= 0:
            return []
        return self._tasks[-n:]

    def resort_insertion(self) -> int:
        """Recompute all keys and restore order with insertion sort.

        Returns the number of element moves performed. Insertion sort is
        the paper's §3.2 choice: after a virtual-time change the list is
        mostly sorted, so the expected cost is close to linear.
        """
        keys = self._keys
        tasks = self._tasks
        cached = self._cached_key
        for i, task in enumerate(tasks):
            k = (self._key(task), task.tid)
            keys[i] = k
            cached[task.tid] = k
        moves = 0
        for i in range(1, len(tasks)):
            k = keys[i]
            t = tasks[i]
            j = i - 1
            while j >= 0 and keys[j] > k:
                self.comparisons += 1
                keys[j + 1] = keys[j]
                tasks[j + 1] = tasks[j]
                j -= 1
                moves += 1
            self.comparisons += 1
            keys[j + 1] = k
            tasks[j + 1] = t
        return moves

    def resort(self) -> int:
        """Recompute all keys and restore order with a full sort.

        Returns the number of elements. :meth:`resort_insertion` is the
        right tool when the order has only *drifted* (near-linear on
        mostly-sorted input) but degrades to quadratic once it has
        decayed — the §3.2 heuristic refreshes the surplus queue only
        every ``refresh_every`` decisions, so by refresh time the order
        is arbitrarily scrambled and needs the guaranteed
        O(n log n) bound of a full sort.
        """
        key = self._key
        keyed = [((key(t), t.tid), t) for t in self._tasks]
        keyed.sort()
        self._keys = [k for k, _ in keyed]
        self._tasks = [t for _, t in keyed]
        self._cached_key = {t.tid: k for k, t in keyed}
        n = len(self._tasks)
        self.comparisons += n * max(1, n.bit_length())
        return n

    def rebuild_sorted(self, keyed: list[tuple[tuple[float, int], Task]]) -> int:
        """Install externally recomputed keys and restore order.

        ``keyed`` must hold one ``((key, tid), task)`` pair for every
        current member (any order); it is sorted in place and becomes
        the queue's new contents. This is the bulk-update fast path for
        callers that already walk every task to recompute its key — it
        fuses the key refresh of :meth:`resort` with the caller's own
        loop, so the pass over the tasks happens once instead of twice,
        and the sort itself runs at C speed. Returns the element count.
        """
        if len(keyed) != len(self._tasks):
            raise ValueError(
                f"rebuild_sorted got {len(keyed)} pairs for a queue of "
                f"{len(self._tasks)} tasks"
            )
        keyed.sort()
        self._keys = [k for k, _ in keyed]
        self._tasks = [t for _, t in keyed]
        self._cached_key = {t.tid: k for k, t in keyed}
        n = len(keyed)
        self.comparisons += n * max(1, n.bit_length())
        return n

    def install_sorted(
        self,
        keys: list[tuple[float, int]],
        tasks: list[Task],
        cached_key: dict[int, tuple[float, int]],
    ) -> int:
        """Install fully prepared sorted state (the compiled fast path).

        ``repro.sim._engine.sfs_recompute`` produces exactly these three
        structures — already sorted, split and indexed — so the exact-SFS
        recompute can swap them in wholesale instead of rebuilding them
        from ``(key, task)`` pairs. The caller vouches for the sorted
        invariant; :meth:`is_sorted` still verifies it against fresh
        keys in the audit suite. Returns the element count.
        """
        if len(tasks) != len(self._tasks):
            raise ValueError(
                f"install_sorted got {len(tasks)} tasks for a queue of "
                f"{len(self._tasks)}"
            )
        self._keys = keys
        self._tasks = tasks
        self._cached_key = cached_key
        n = len(tasks)
        self.comparisons += n * max(1, n.bit_length())
        return n

    def as_list(self) -> list[Task]:
        """A snapshot copy of the queue in key order."""
        return list(self._tasks)

    def is_sorted(self) -> bool:
        """Check the sorted-order invariant against *fresh* keys."""
        fresh = [(self._key(t), t.tid) for t in self._tasks]
        return all(fresh[i] <= fresh[i + 1] for i in range(len(fresh) - 1))
