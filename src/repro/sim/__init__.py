"""Discrete-event symmetric-multiprocessor simulator substrate.

This package provides the machine on which every scheduler in the
repository runs: an event engine, a task/thread model with
Run/Block/Exit behaviours, per-CPU quantum management with
unsynchronized quanta, cost models for context switches, and trace /
metrics collection.

Quick example::

    from repro.sim import Machine, Task
    from repro.workloads import Infinite
    from repro.core import SurplusFairScheduler

    machine = Machine(SurplusFairScheduler(), cpus=2)
    a = machine.add_task(Task(Infinite(), weight=1, name="A"))
    b = machine.add_task(Task(Infinite(), weight=2, name="B"))
    machine.run_until(10.0)
    print(a.service, b.service)
"""

from repro.sim.costs import (
    CostModel,
    DecisionCostParams,
    TESTBED_COST,
    ZERO_COST,
)
from repro.sim.engine import Engine, EventHandle
from repro.sim.events import Block, Exit, Run, RUN_FOREVER, Segment
from repro.sim.machine import Machine
from repro.sim.metrics import (
    iterations_series,
    sample_series,
    service_at,
    service_between,
    share_between,
    shares,
)
from repro.sim.processor import Processor
from repro.sim.runqueue import SortedTaskList
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState
from repro.sim.tracing import Trace, TraceEvent

__all__ = [
    "Block",
    "CostModel",
    "DecisionCostParams",
    "Engine",
    "EventHandle",
    "Exit",
    "Machine",
    "Processor",
    "Run",
    "RUN_FOREVER",
    "Scheduler",
    "Segment",
    "SortedTaskList",
    "Task",
    "TaskState",
    "TESTBED_COST",
    "Trace",
    "TraceEvent",
    "ZERO_COST",
    "iterations_series",
    "sample_series",
    "service_at",
    "service_between",
    "share_between",
    "shares",
]
