"""Trace collection for simulated runs.

The trace records the event-level history needed to (a) reconstruct the
figures in the paper (cumulative service / iterations over time), (b)
replay the same runnable-set timeline through the fluid GMS oracle for
fairness measurement, and (c) count scheduler work (decisions, context
switches) for the overhead experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from repro.sim.task import Task

__all__ = ["TraceEvent", "Trace"]

# Event kinds recorded in the runnable-set timeline. These are exactly
# the points at which the fluid GMS oracle's rate allocation changes.
ARRIVE = "arrive"
WAKE = "wake"
BLOCK = "block"
EXIT = "exit"
WEIGHT = "weight"


# Both history records are NamedTuples rather than frozen dataclasses
# on purpose: a long recorded run holds hundreds of thousands of them,
# and CPython's cycle collector untracks tuples of atomic values after
# their first scan, where dataclass instances are re-scanned on every
# collection for the lifetime of the trace.


class TraceEvent(NamedTuple):
    """One runnable-set change: (time, kind, tid, weight-at-event)."""

    time: float
    kind: str
    tid: int
    weight: float


class RunInterval(NamedTuple):
    """One contiguous occupancy of a CPU by a task."""

    cpu: int
    tid: int
    start: float
    end: float


@dataclass
class Trace:
    """Accumulates simulation history.

    Attributes
    ----------
    events:
        Runnable-set timeline (arrivals, wakeups, blocks, exits, weight
        changes) for GMS replay.
    context_switches:
        Count of dispatches where the incoming task differs from the
        outgoing one (per the lmbench definition).
    dispatches:
        Total pick-next decisions that resulted in a task running.
    decisions:
        Total pick-next invocations (including ones that found no task).
    preemptions:
        Involuntary context switches (quantum expiry or wakeup preemption).
    overhead_time:
        Total CPU dead time charged by the cost model, across all CPUs.
    """

    record_events: bool = True
    #: gate for :meth:`record_run` on top of ``record_events``: lets a
    #: consumer that forced event recording for replay (the auditor)
    #: opt out of the per-dispatch CPU occupancy intervals it never
    #: reads
    record_runs: bool = True
    #: columnar event storage: four parallel scalar lists instead of a
    #: list of records, so the hot-path append is two opcodes per column
    #: and the stored history is invisible to the cycle collector (a
    #: recorded N=5000 run otherwise pays more in GC scans than in
    #: simulation); :attr:`events` materializes lazily on access
    _ev_time: list[float] = field(default_factory=list, repr=False)
    _ev_kind: list[str] = field(default_factory=list, repr=False)
    _ev_tid: list[int] = field(default_factory=list, repr=False)
    _ev_weight: list[float] = field(default_factory=list, repr=False)
    _ev_cache: list[TraceEvent] = field(default_factory=list, repr=False)
    #: CPU occupancy intervals (for Gantt rendering); recorded when
    #: record_events is on
    run_intervals: list[RunInterval] = field(default_factory=list)
    #: streaming observers invoked as fn(time, kind, task) on every
    #: runnable-set event, independent of record_events — the invariant
    #: auditor listens here even when event storage is off
    on_event: list = field(default_factory=list)
    context_switches: int = 0
    dispatches: int = 0
    decisions: int = 0
    preemptions: int = 0
    overhead_time: float = 0.0

    def record(self, time: float, kind: str, task: Task) -> None:
        """Append a runnable-set event (if event recording is enabled)."""
        if self.record_events:
            self._ev_time.append(time)
            self._ev_kind.append(kind)
            self._ev_tid.append(task.tid)
            self._ev_weight.append(task.weight)
        if self.on_event:
            for observer in self.on_event:
                observer(time, kind, task)

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded runnable-set timeline as :class:`TraceEvent` rows.

        Materialized from the columnar storage on first access and
        cached (re-materialized only if more events were recorded
        since). Hot-path consumers that just need the tuples should
        prefer :meth:`event_tuples`.
        """
        if len(self._ev_cache) != len(self._ev_time):
            self._ev_cache = list(map(TraceEvent._make, self.event_tuples()))
        return self._ev_cache

    @property
    def event_count(self) -> int:
        """Number of recorded events (no materialization)."""
        return len(self._ev_time)

    def event_tuples(self):
        """Iterate the timeline as plain ``(time, kind, tid, weight)``
        tuples, in recording (= time) order, without building records.
        """
        return zip(self._ev_time, self._ev_kind, self._ev_tid, self._ev_weight)

    def record_run(self, cpu: int, tid: int, start: float, end: float) -> None:
        """Append a CPU occupancy interval (if recording is enabled)."""
        if self.record_events and self.record_runs and end > start:
            self.run_intervals.append(RunInterval(cpu, tid, start, end))

    def events_between(self, t0: float, t1: float) -> Iterator[TraceEvent]:
        """Events with t0 <= time < t1, in order."""
        return (ev for ev in self.events if t0 <= ev.time < t1)

    def summary(self) -> dict[str, float]:
        """Scalar counters as a dict (handy for table rendering)."""
        return {
            "context_switches": self.context_switches,
            "dispatches": self.dispatches,
            "decisions": self.decisions,
            "preemptions": self.preemptions,
            "overhead_time": self.overhead_time,
        }
