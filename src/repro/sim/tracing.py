"""Trace collection for simulated runs.

The trace records the event-level history needed to (a) reconstruct the
figures in the paper (cumulative service / iterations over time), (b)
replay the same runnable-set timeline through the fluid GMS oracle for
fairness measurement, and (c) count scheduler work (decisions, context
switches) for the overhead experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sim.task import Task

__all__ = ["TraceEvent", "Trace"]

# Event kinds recorded in the runnable-set timeline. These are exactly
# the points at which the fluid GMS oracle's rate allocation changes.
ARRIVE = "arrive"
WAKE = "wake"
BLOCK = "block"
EXIT = "exit"
WEIGHT = "weight"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One runnable-set change: (time, kind, tid, weight-at-event)."""

    time: float
    kind: str
    tid: int
    weight: float


@dataclass(frozen=True, slots=True)
class RunInterval:
    """One contiguous occupancy of a CPU by a task."""

    cpu: int
    tid: int
    start: float
    end: float


@dataclass
class Trace:
    """Accumulates simulation history.

    Attributes
    ----------
    events:
        Runnable-set timeline (arrivals, wakeups, blocks, exits, weight
        changes) for GMS replay.
    context_switches:
        Count of dispatches where the incoming task differs from the
        outgoing one (per the lmbench definition).
    dispatches:
        Total pick-next decisions that resulted in a task running.
    decisions:
        Total pick-next invocations (including ones that found no task).
    preemptions:
        Involuntary context switches (quantum expiry or wakeup preemption).
    overhead_time:
        Total CPU dead time charged by the cost model, across all CPUs.
    """

    record_events: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    #: CPU occupancy intervals (for Gantt rendering); recorded when
    #: record_events is on
    run_intervals: list[RunInterval] = field(default_factory=list)
    context_switches: int = 0
    dispatches: int = 0
    decisions: int = 0
    preemptions: int = 0
    overhead_time: float = 0.0

    def record(self, time: float, kind: str, task: Task) -> None:
        """Append a runnable-set event (if event recording is enabled)."""
        if self.record_events:
            self.events.append(TraceEvent(time, kind, task.tid, task.weight))

    def record_run(self, cpu: int, tid: int, start: float, end: float) -> None:
        """Append a CPU occupancy interval (if recording is enabled)."""
        if self.record_events and end > start:
            self.run_intervals.append(RunInterval(cpu, tid, start, end))

    def events_between(self, t0: float, t1: float) -> Iterator[TraceEvent]:
        """Events with t0 <= time < t1, in order."""
        return (ev for ev in self.events if t0 <= ev.time < t1)

    def summary(self) -> dict[str, float]:
        """Scalar counters as a dict (handy for table rendering)."""
        return {
            "context_switches": self.context_switches,
            "dispatches": self.dispatches,
            "decisions": self.decisions,
            "preemptions": self.preemptions,
            "overhead_time": self.overhead_time,
        }
