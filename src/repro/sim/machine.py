"""The simulated symmetric multiprocessor machine.

:class:`Machine` binds an :class:`~repro.sim.engine.Engine`, ``p``
:class:`~repro.sim.processor.Processor` instances and one scheduler, and
drives tasks through their behaviour segments. It reproduces the
scheduling surface of the paper's Linux 2.2.14 implementation (§3.1):

- the scheduler is invoked *per CPU* whenever that CPU's quantum expires
  or its current thread blocks/exits — quanta across processors are not
  synchronized;
- the scheduler is notified on every arrival, wakeup, block, departure
  and weight change (the points at which the paper re-runs weight
  readjustment);
- a running thread may relinquish the processor before its quantum ends
  (variable-length quanta, the ``q`` of Eq. 5);
- optionally, a newly woken thread may preempt a running one (Linux
  2.2's ``reschedule_idle()``), with the victim chosen by the scheduler.

Context-switch and scheduler-decision overheads are charged as CPU dead
time via a :class:`~repro.sim.costs.CostModel`; the default is zero cost
so that allocation studies and tests are exact. Overhead experiments
(Table 1 / Fig. 7) pass ``TESTBED_COST``.
"""

from __future__ import annotations

import math
import random

from repro.sim.costs import ZERO_COST, CostModel
from repro.sim.engine import Engine, EventHandle
from repro.sim.events import Block, Exit, Run, Segment
from repro.sim.processor import Processor
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task, TaskState
from repro.sim import tracing
from repro.sim.tracing import Trace

__all__ = ["Machine"]

#: tolerance for "segment completes exactly at quantum end" comparisons
_EPS = 1e-12


class Machine:
    """A ``p``-CPU symmetric multiprocessor driven by one scheduler.

    Parameters
    ----------
    scheduler:
        The CPU scheduling policy (attached exclusively to this machine).
    cpus:
        Number of processors ``p`` (the paper's testbed has 2).
    quantum:
        Default maximum quantum in seconds (paper: 200 ms).
    cost_model:
        Context-switch / decision cost model; default zero.
    sample_service:
        Record per-task (time, cumulative service) points for plotting.
    record_events:
        Record the runnable-set timeline for GMS-oracle replay.
    preempt_on_wake:
        Allow the scheduler to preempt a running task when another wakes
        (Linux 2.2 semantics). Schedulers opt in via ``choose_victim``.
    check_work_conserving:
        Raise if the scheduler idles a CPU while runnable tasks wait
        (used by tests; §1.2 footnote 2 defines work conservation).
    quantum_jitter:
        Relative jitter applied to every granted time slice (e.g. 0.05
        gives slices uniform in [0.95q, 1.05q]). Models the timer-tick
        truncation and interrupt-arrival variability of real hardware
        — Linux 2.2 decrements quanta in 10 ms ticks, so a nominal
        200 ms quantum really ends on a tick boundary. A deterministic
        PRNG (``jitter_seed``) keeps runs reproducible. Zero disables.
        This matters: §4.3's short-jobs experiment is sensitive to the
        synchronization noise of the real testbed (see EXPERIMENTS.md).
    service_sample_interval:
        When > 0, decimate the per-task (time, cumulative service)
        series: a new point is recorded only once at least this many
        seconds have passed since the task's previous point. Totals
        (``task.service``) stay exact, and each task's *final* total is
        always pinned as a point (at exit / run_until settle), so
        whole-window queries — end-of-run shares, Jain's index — stay
        exact too; only *mid-run* curve reconstruction
        (:func:`repro.sim.metrics.service_at` at interior times, lag and
        starvation reports) becomes approximate, because several
        run/block episodes may collapse into one inter-point delta.
        0 (default) records every charge boundary, which keeps the
        reconstruction exact everywhere.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        cpus: int = 2,
        quantum: float = 0.2,
        cost_model: CostModel = ZERO_COST,
        engine: Engine | None = None,
        sample_service: bool = True,
        record_events: bool = True,
        preempt_on_wake: bool = True,
        check_work_conserving: bool = False,
        quantum_jitter: float = 0.0,
        jitter_seed: int = 0,
        service_sample_interval: float = 0.0,
    ) -> None:
        if cpus < 1:
            raise ValueError(f"need at least one CPU, got {cpus}")
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        if not 0.0 <= quantum_jitter < 1.0:
            raise ValueError(
                f"quantum_jitter must be in [0, 1), got {quantum_jitter}"
            )
        if service_sample_interval < 0:
            raise ValueError(
                "service_sample_interval must be >= 0, "
                f"got {service_sample_interval}"
            )
        self.engine = engine if engine is not None else Engine()
        self.scheduler = scheduler
        self.quantum = float(quantum)
        self.quantum_jitter = float(quantum_jitter)
        self._jitter_rng = random.Random(jitter_seed)
        self.cost_model = cost_model
        self.sample_service = sample_service
        self.service_sample_interval = float(service_sample_interval)
        self.preempt_on_wake = preempt_on_wake
        self.check_work_conserving = check_work_conserving
        self.processors = [Processor(i) for i in range(cpus)]
        self.tasks: list[Task] = []
        self.trace = Trace(record_events=record_events)
        self._known: set[int] = set()  # tids the scheduler has seen
        self._added: set[int] = set()  # tids ever passed to add_task
        self._runnable: dict[int, Task] = {}  # RUNNABLE + RUNNING tasks
        self._live_count = 0  # arrived, non-exited tasks (incremental)
        self._proc_by_tid: dict[int, Processor] = {}  # RUNNING task -> CPU
        self._wake_handles: dict[int, EventHandle] = {}
        self._prev_task: dict[int, Task | None] = {
            p.cpu_id: None for p in self.processors
        }
        #: observers invoked as fn(task, now) when a task exits
        self.on_task_exit: list = []
        #: observers invoked as fn(machine, proc, task) right after a
        #: task is placed on a CPU (the invariant auditor listens here)
        self.on_dispatch: list = []
        #: observers invoked as fn(machine, task) when a preempted task
        #: returns to the runnable queue without a trace event
        self.on_requeue: list = []
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    @property
    def num_cpus(self) -> int:
        return len(self.processors)

    @property
    def runnable_count(self) -> int:
        """Number of runnable (incl. running) tasks."""
        return len(self._runnable)

    @property
    def live_count(self) -> int:
        """Number of arrived, non-exited tasks (runnable or blocked).

        Maintained incrementally (+1 on arrival, -1 on exit): this
        property sits on the per-dispatch path under
        ``decision_count_mode == "live"`` cost models, where a scan of
        ``self.tasks`` would make long runs quadratic in the number of
        tasks ever created.
        """
        return self._live_count

    def runnable_tasks(self) -> list[Task]:
        """Snapshot of runnable (incl. running) tasks, by tid."""
        return [self._runnable[tid] for tid in sorted(self._runnable)]

    def running_tasks(self) -> dict[int, Task]:
        """Map of cpu_id -> currently running task (busy CPUs only)."""
        return {p.cpu_id: p.task for p in self.processors if p.task is not None}

    def previous_task(self, cpu: int) -> Task | None:
        """The task that last ran on ``cpu`` (None if never used).

        Exposed for affinity-aware schedulers: the §5 extension lets a
        CPU prefer its previous thread among near-tied candidates.
        """
        return self._prev_task[cpu]

    def add_task(self, task: Task, at: float = 0.0) -> Task:
        """Register ``task`` to arrive at absolute time ``at``."""
        if task.state is not TaskState.NEW or task.tid in self._added:
            raise ValueError(f"{task.name} has already been added")
        self._added.add(task.tid)
        self.engine.schedule_at(max(at, self.now), self._arrive, task)
        return task

    def set_weight_at(self, task: Task, weight: float, at: float) -> None:
        """Schedule a setweight() call (§3.1) at absolute time ``at``."""
        self.engine.schedule_at(at, self.change_weight, task, weight)

    def change_weight(self, task: Task, weight: float) -> None:
        """Change a task's weight immediately (on-the-fly, as §3.1 allows).

        A ``setweight()`` that fires after the task exited (e.g. a
        Fig. 4-style script whose ``set_weight_at`` lands after a
        ``kill_task_at``) is a no-op: mutating a dead task's weight —
        or telling the scheduler about it — would hand schedulers a
        task they have already retired.
        """
        if task.state is TaskState.EXITED:
            return
        old = task.weight
        if weight == old:
            # No-op setweight: the assignment (and hence any
            # readjustment result) is unchanged, so skip the scheduler
            # notification and its frontier repair. Still recorded, so
            # GMS-oracle replay sees the same event stream.
            if task.is_runnable:
                self.trace.record(self.now, tracing.WEIGHT, task)
            return
        task.weight = weight
        if task.is_runnable:
            self.trace.record(self.now, tracing.WEIGHT, task)
        self.scheduler.on_weight_change(task, old, self.now)

    def kill_task_at(self, task: Task, at: float) -> None:
        """Schedule an external kill (the paper stops T2 at t=30 s, Fig. 4)."""
        self.engine.schedule_at(at, self.kill_task, task)

    def kill_task(self, task: Task) -> None:
        """Terminate ``task`` immediately, whatever its state."""
        now = self.now
        if task.state is TaskState.EXITED:
            return
        if task.state is TaskState.RUNNING:
            proc = self._processor_of(task)
            self._charge(proc, now)
            ran = max(0.0, now - proc.dispatch_time)
            self._vacate(proc)
            self._retire(task, now, ran)
            self._schedule_cpu(proc)
        elif task.state is TaskState.RUNNABLE:
            self._retire(task, now, 0.0)
        elif task.state is TaskState.BLOCKED:
            handle = self._wake_handles.pop(task.tid, None)
            if handle is not None:
                handle.cancel()
            self._mark_exited(task, now)
            self._notify_exit(task, now)
        else:  # NEW — never arrived; nothing to clean up
            self._mark_exited(task, now)
            self._notify_exit(task, now)

    def signal(self, task: Task) -> None:
        """Wake a blocked task immediately (condition-variable wakeup).

        Tasks blocked with ``Block(math.inf)`` wait for an explicit
        signal — this models pipe reads, futexes, and the token passing
        of the lmbench lat_ctx ring. Signalling a non-blocked task is a
        no-op (the signal is lost, as with a condition variable).
        """
        if task.state is not TaskState.BLOCKED:
            return
        handle = self._wake_handles.pop(task.tid, None)
        if handle is not None:
            handle.cancel()
        self._wake(task)

    def signal_later(self, task: Task, delay: float = 0.0) -> None:
        """Schedule a :meth:`signal` after ``delay`` seconds.

        With ``delay=0`` the signal fires after the current event
        finishes processing — safe to call from behaviour code.
        """
        self.engine.schedule_after(delay, self.signal, task)

    def run_until(self, t_end: float) -> None:
        """Advance the simulation to ``t_end`` and settle accounting.

        Service of still-running tasks is charged up to ``t_end`` so
        that task.service is exact at the stop time.
        """
        self.engine.run_until(t_end)
        for proc in self.processors:
            if proc.task is not None:
                self._charge(proc, t_end)
        if self.sample_service and self.service_sample_interval > 0:
            # Decimation may have left stale series tails on tasks that
            # are not on a CPU right now (queued or blocked backlog);
            # pin every live task's exact total so whole-window queries
            # stay exact. O(tasks) per run_until call, not per event.
            for task in self.tasks:
                if task.state is not TaskState.EXITED:
                    self._ensure_final_sample(task, t_end)

    def total_capacity(self, t0: float, t1: float) -> float:
        """CPU-seconds the machine offers over [t0, t1)."""
        return self.num_cpus * max(0.0, t1 - t0)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _arrive(self, task: Task) -> None:
        if task.state is TaskState.EXITED:
            return  # killed before arrival (kill_task_at < arrival time)
        now = self.now
        task.arrival_time = now
        self.tasks.append(task)
        self._live_count += 1
        segment = task.behavior.start(now)
        if isinstance(segment, Run):
            task.remaining_run = segment.duration
            task.state = TaskState.RUNNABLE
            self._runnable[task.tid] = task
            self.trace.record(now, tracing.ARRIVE, task)
            self._known.add(task.tid)
            self.scheduler.on_arrival(task, now)
            self._try_place(task)
        elif isinstance(segment, Block):
            task.state = TaskState.BLOCKED
            self._schedule_wake(task, segment.duration)
        elif isinstance(segment, Exit):
            self._mark_exited(task, now)
            self._notify_exit(task, now)
        else:
            raise TypeError(f"bad initial segment {segment!r} from {task.name}")

    def _wake(self, task: Task) -> None:
        if task.state is not TaskState.BLOCKED:
            return
        now = self.now
        self._wake_handles.pop(task.tid, None)
        segment: Segment = task.advance_behavior(now)
        if isinstance(segment, Block):
            # The behaviour chained another sleep; stay blocked.
            self._schedule_wake(task, segment.duration)
            return
        if isinstance(segment, Exit):
            self._mark_exited(task, now)
            self._notify_exit(task, now)
            return
        task.remaining_run = segment.duration
        task.state = TaskState.RUNNABLE
        self._runnable[task.tid] = task
        if task.tid in self._known:
            self.trace.record(now, tracing.WAKE, task)
            self.scheduler.on_wakeup(task, now)
        else:
            # First time this task becomes runnable: it is an arrival
            # from the scheduler's point of view.
            self.trace.record(now, tracing.ARRIVE, task)
            self._known.add(task.tid)
            self.scheduler.on_arrival(task, now)
        self._try_place(task)

    def _quantum_expiry(self, proc: Processor, seq: int) -> None:
        if proc.seq != seq or proc.task is None:
            return  # stale timer
        now = self.now
        task = proc.task
        self._charge(proc, now)
        ran = max(0.0, now - proc.dispatch_time)
        self._vacate(proc)
        task.state = TaskState.RUNNABLE
        task.preempt_count += 1
        self.trace.preemptions += 1
        self.scheduler.on_preempt(task, now, ran)
        if self.on_requeue:
            for observer in self.on_requeue:
                observer(self, task)
        self._schedule_cpu(proc)

    def _segment_end(self, proc: Processor, seq: int) -> None:
        if proc.seq != seq or proc.task is None:
            return  # stale timer
        now = self.now
        task = proc.task
        self._charge(proc, now)
        segment = task.advance_behavior(now)
        if isinstance(segment, Run):
            # The task keeps computing: stay on-CPU inside the same
            # quantum, with no scheduler involvement.
            task.remaining_run = segment.duration
            proc.segment_handle = None
            if math.isfinite(task.remaining_run):
                seg_end = now + task.remaining_run
                if seg_end <= proc.quantum_end + _EPS:
                    proc.segment_handle = self.engine.schedule_at(
                        seg_end, self._segment_end, proc, proc.seq
                    )
            return
        ran = max(0.0, now - proc.dispatch_time)
        self._vacate(proc)
        if isinstance(segment, Block):
            task.state = TaskState.BLOCKED
            task.block_count += 1
            self._runnable.pop(task.tid, None)
            self.trace.record(now, tracing.BLOCK, task)
            self.scheduler.on_block(task, now, ran)
            self._schedule_wake(task, segment.duration)
        else:  # Exit
            self._retire(task, now, ran)
        self._schedule_cpu(proc)

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------

    def _try_place(self, task: Task) -> None:
        """Place a newly runnable task: idle CPU first, else maybe preempt."""
        for proc in self.processors:
            if proc.idle:
                self._schedule_cpu(proc)
                return
        if not self.preempt_on_wake:
            return
        running = self.running_tasks()
        victim_cpu = self.scheduler.choose_victim(task, running, self.now)
        if victim_cpu is None:
            return
        proc = self.processors[victim_cpu]
        if proc.task is None:  # scheduler raced us; just dispatch
            self._schedule_cpu(proc)
            return
        self._force_preempt(proc)
        self._schedule_cpu(proc)

    def _force_preempt(self, proc: Processor) -> None:
        """Evict the running task on ``proc`` (wakeup preemption)."""
        now = self.now
        task = proc.task
        assert task is not None
        self._charge(proc, now)
        ran = max(0.0, now - proc.dispatch_time)
        self._vacate(proc)
        task.state = TaskState.RUNNABLE
        task.preempt_count += 1
        self.trace.preemptions += 1
        self.scheduler.on_preempt(task, now, ran)
        if self.on_requeue:
            for observer in self.on_requeue:
                observer(self, task)

    def _schedule_cpu(self, proc: Processor) -> None:
        """Run one scheduling decision for an idle CPU."""
        now = self.now
        self.trace.decisions += 1
        task = self.scheduler.pick_next(proc.cpu_id, now)
        if task is None:
            if self.check_work_conserving:
                waiting = [
                    t for t in self._runnable.values()
                    if t.state is TaskState.RUNNABLE
                ]
                if waiting:
                    raise AssertionError(
                        f"{self.scheduler.name} idled CPU {proc.cpu_id} with "
                        f"{len(waiting)} runnable task(s) waiting"
                    )
            return
        if task.state is not TaskState.RUNNABLE:
            raise AssertionError(
                f"{self.scheduler.name} picked {task.name} in state "
                f"{task.state.value}"
            )
        self._dispatch(proc, task)

    def _dispatch(self, proc: Processor, task: Task) -> None:
        now = self.now
        prev = self._prev_task[proc.cpu_id]
        cost = 0.0
        if prev is not task:
            if self.cost_model.decision_count_mode == "live":
                count = self.live_count
            else:
                count = self.runnable_count
            decision = self.scheduler.decision_cost(count)
            prev_kb = prev.footprint_kb if prev is not None else None
            cost = self.cost_model.switch_cost(prev_kb, task.footprint_kb, decision)
            self.trace.context_switches += 1
        self.trace.dispatches += 1
        if task.first_dispatch_time is None:
            task.first_dispatch_time = now
        proc.seq += 1
        proc.task = task
        self._proc_by_tid[task.tid] = proc
        task.state = TaskState.RUNNING
        task.last_cpu = proc.cpu_id
        task.dispatch_count += 1
        start = now + cost
        proc.overhead_time += cost
        self.trace.overhead_time += cost
        proc.dispatch_time = start
        proc.charged_until = start
        slice_len = self.scheduler.quantum_for(task, proc.cpu_id, now)
        if slice_len is None:
            slice_len = self.quantum
        if self.quantum_jitter > 0.0:
            slice_len *= 1.0 + self._jitter_rng.uniform(
                -self.quantum_jitter, self.quantum_jitter
            )
        proc.quantum_end = start + slice_len
        proc.segment_handle = None
        if math.isfinite(task.remaining_run):
            seg_end = start + task.remaining_run
            if seg_end <= proc.quantum_end + _EPS:
                # Scheduled before the quantum timer so that exact ties
                # resolve as "segment completed".
                proc.segment_handle = self.engine.schedule_at(
                    seg_end, self._segment_end, proc, proc.seq
                )
        proc.quantum_handle = self.engine.schedule_at(
            proc.quantum_end, self._quantum_expiry, proc, proc.seq
        )
        if self.on_dispatch:
            for observer in self.on_dispatch:
                observer(self, proc, task)

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def _charge(self, proc: Processor, now: float) -> None:
        """Charge CPU service to the running task up to ``now``."""
        task = proc.task
        assert task is not None
        delta = now - proc.charged_until
        if delta <= 0:
            return
        task.service += delta
        proc.busy_time += delta
        if math.isfinite(task.remaining_run):
            task.remaining_run = max(0.0, task.remaining_run - delta)
        proc.charged_until = now
        if self.sample_service:
            series = task.series
            if (
                self.service_sample_interval <= 0.0
                or not series
                or now - series[-1][0] >= self.service_sample_interval
            ):
                series.append((now, task.service))

    def _vacate(self, proc: Processor) -> None:
        """Detach the current task from ``proc`` (after charging)."""
        task = proc.task
        assert task is not None
        self.trace.record_run(
            proc.cpu_id, task.tid, proc.dispatch_time, proc.charged_until
        )
        proc.cancel_timers()
        proc.seq += 1
        self._prev_task[proc.cpu_id] = task
        self._proc_by_tid.pop(task.tid, None)
        proc.task = None

    def _schedule_wake(self, task: Task, duration: float) -> None:
        """Arm the wake timer; infinite blocks wait for signal()."""
        if math.isinf(duration):
            return
        self._wake_handles[task.tid] = self.engine.schedule_after(
            duration, self._wake, task
        )

    def _notify_exit(self, task: Task, now: float) -> None:
        for callback in self.on_task_exit:
            callback(task, now)

    def _ensure_final_sample(self, task: Task, now: float) -> None:
        """Record the task's exact current service as a series point.

        Decimation may have dropped the last charge's point; pinning the
        final total here keeps whole-window queries (end-of-run shares,
        Jain's index) exact even in decimated mode. A no-op when the
        last point is already current.
        """
        series = task.series
        if self.sample_service and series and series[-1][1] != task.service:
            series.append((now, task.service))

    def _mark_exited(self, task: Task, now: float) -> None:
        """Transition to EXITED, maintaining the live-task counter."""
        if task.arrival_time is not None:
            self._live_count -= 1
        task.state = TaskState.EXITED
        task.exit_time = now
        self._ensure_final_sample(task, now)

    def _retire(self, task: Task, now: float, ran: float) -> None:
        """Mark a runnable/running task as exited and notify the scheduler."""
        self._mark_exited(task, now)
        self._runnable.pop(task.tid, None)
        self.trace.record(now, tracing.EXIT, task)
        self.scheduler.on_exit(task, now, ran)
        self._notify_exit(task, now)

    def _processor_of(self, task: Task) -> Processor:
        proc = self._proc_by_tid.get(task.tid)
        if proc is None:
            raise ValueError(f"{task.name} is not running on any CPU")
        return proc
