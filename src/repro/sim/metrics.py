"""Service-share and time-series metrics over simulated runs.

These helpers answer the questions the paper's figures ask: *how much
CPU service did each task get over a window*, *what fraction of the
machine is that*, and *what does the cumulative-service curve look like
over time* (the y-axis of Figs. 1, 4 and 5 after dividing by the
per-iteration cost).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.sim.task import Task

__all__ = [
    "service_at",
    "service_between",
    "share_between",
    "shares",
    "sample_series",
    "iterations_series",
]


def service_at(task: Task, t: float) -> float:
    """Cumulative CPU service of ``task`` at time ``t`` — exact.

    Requires the machine to have been created with
    ``sample_service=True``. Samples are recorded at every charge
    boundary, and each charge covers a *contiguous* run ending at the
    sample time; so between samples ``(t0, s0)`` and ``(t1, s1)`` the
    task was idle on ``[t0, t1 - (s1 - s0)]`` and running (service rate
    1) on the tail. This reconstruction is exact, which matters for
    starvation detection: linear interpolation would smear service over
    idle gaps and hide flat regions like Fig. 4(a)'s starved thread.
    """
    series = task.series
    if not series:
        return 0.0
    times = [p[0] for p in series]
    idx = bisect_right(times, t)
    if idx >= len(series):
        return series[-1][1]
    t1, s1 = series[idx]
    s0 = series[idx - 1][1] if idx > 0 else 0.0
    run_start = t1 - (s1 - s0)
    if t <= run_start:
        return s0
    return s0 + (t - run_start)


def service_between(task: Task, t0: float, t1: float) -> float:
    """CPU service received by ``task`` during [t0, t1)."""
    return max(0.0, service_at(task, t1) - service_at(task, t0))


def share_between(task: Task, t0: float, t1: float, cpus: int) -> float:
    """Fraction of total machine capacity consumed during [t0, t1)."""
    capacity = cpus * (t1 - t0)
    if capacity <= 0:
        return 0.0
    return service_between(task, t0, t1) / capacity


def shares(tasks: Iterable[Task], t0: float, t1: float, cpus: int) -> dict[str, float]:
    """Map task name -> machine share over [t0, t1)."""
    return {t.name: share_between(t, t0, t1, cpus) for t in tasks}


def sample_series(
    task: Task, times: Sequence[float]
) -> list[tuple[float, float]]:
    """Cumulative service sampled at the given times."""
    return [(t, service_at(task, t)) for t in times]


def iterations_series(
    task: Task, times: Sequence[float], iter_rate: float
) -> list[tuple[float, float]]:
    """Cumulative *loop iterations* at the given times.

    The paper plots "number of iterations" for the Inf/dhrystone
    applications; with a calibrated iteration rate (loops per second of
    CPU), iterations = service * iter_rate.
    """
    return [(t, service_at(task, t) * iter_rate) for t in times]
