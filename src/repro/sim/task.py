"""Task (thread/process) model for the SMP simulator.

A :class:`Task` corresponds to what the paper calls a *thread*: the unit
of CPU scheduling. Each task carries

- the user-assigned **weight** ``w_i`` (requested share; §2 of the paper),
- the **instantaneous weight** ``phi_i`` as computed by the weight
  readjustment algorithm (§2.1) — equal to ``w_i`` whenever the
  assignment is feasible,
- a :class:`~repro.sim.events.Segment`-producing *behaviour* describing
  what the task does (compute, block, exit), and
- accounting fields maintained by the machine (CPU service received,
  state, last CPU for affinity modelling, ...).

Scheduler-private per-task state (start tags, finish tags, counters,
passes, ...) lives in the ``sched`` dict so several schedulers can be
driven over identical workloads without interference.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any

from repro.sim.events import Block, Exit, Run, Segment

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Behavior

__all__ = ["Task", "TaskState"]

_tid_counter = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle states of a task, mirroring a kernel thread."""

    NEW = "new"  # created but not yet arrived
    RUNNABLE = "runnable"  # on the run queue, not currently on a CPU
    RUNNING = "running"  # currently executing on a CPU
    BLOCKED = "blocked"  # sleeping / waiting on I/O
    EXITED = "exited"  # terminated


class Task:
    """A schedulable thread.

    Parameters
    ----------
    behavior:
        The workload behaviour generating Run/Block/Exit segments.
    weight:
        The user-assigned weight ``w_i`` (must be > 0). Shares are
        proportional to weights across runnable tasks.
    name:
        Human-readable label used in traces and rendered figures.
    footprint_kb:
        Working-set size in KB; drives the cache-restoration component
        of the context-switch cost model (Table 1 / Fig. 7).
    ts_priority:
        Priority in ticks for the Linux 2.2 time-sharing baseline
        (default 20 ticks = 200 ms, the 2.2 default "nice 0").
    """

    __slots__ = (
        "tid",
        "name",
        "_weight",
        "phi",
        "behavior",
        "footprint_kb",
        "ts_priority",
        "state",
        "service",
        "arrival_time",
        "first_dispatch_time",
        "exit_time",
        "last_cpu",
        "remaining_run",
        "sched",
        "series",
        "block_count",
        "preempt_count",
        "dispatch_count",
    )

    def __init__(
        self,
        behavior: "Behavior",
        weight: float = 1.0,
        name: str | None = None,
        footprint_kb: float = 0.0,
        ts_priority: int = 20,
    ) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if footprint_kb < 0:
            raise ValueError(f"footprint_kb must be >= 0, got {footprint_kb}")
        self.tid: int = next(_tid_counter)
        self.name: str = name if name is not None else f"task{self.tid}"
        self._weight: float = float(weight)
        #: instantaneous weight (phi_i); maintained by weight readjustment
        self.phi: float = float(weight)
        self.behavior = behavior
        self.footprint_kb = float(footprint_kb)
        self.ts_priority = int(ts_priority)

        self.state: TaskState = TaskState.NEW
        #: total CPU service received, in seconds
        self.service: float = 0.0
        self.arrival_time: float | None = None
        #: time the task first got a CPU (None until first dispatch) —
        #: drives the scheduling-latency metrics capacity studies quote
        self.first_dispatch_time: float | None = None
        self.exit_time: float | None = None
        self.last_cpu: int | None = None
        #: remaining CPU time in the current Run segment (inf = forever)
        self.remaining_run: float = 0.0
        #: scheduler-private per-task state (tags, counters, ...)
        self.sched: dict[str, Any] = {}
        #: sampled (time, cumulative service) points, if sampling enabled.
        #: One point per charge boundary by default; under the machine's
        #: decimated mode (``service_sample_interval > 0``) points are
        #: dropped between intervals, so the curve is approximate while
        #: ``self.service`` stays exact.
        self.series: list[tuple[float, float]] = []
        self.block_count: int = 0
        self.preempt_count: int = 0
        self.dispatch_count: int = 0

    @property
    def weight(self) -> float:
        """The user-assigned weight ``w_i``."""
        return self._weight

    @weight.setter
    def weight(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"weight must be > 0, got {value}")
        self._weight = float(value)

    @property
    def sojourn_time(self) -> float | None:
        """Arrival-to-completion response time, or None until exited.

        The per-job metric saturation/capacity studies report as
        percentiles ("sojourn" in the queueing literature): queueing
        delay plus all service and blocking episodes. None for jobs
        still in the system (or that never arrived).
        """
        if self.exit_time is None or self.arrival_time is None:
            return None
        return self.exit_time - self.arrival_time

    @property
    def first_dispatch_latency(self) -> float | None:
        """Arrival-to-first-CPU delay, or None if never dispatched."""
        if self.first_dispatch_time is None or self.arrival_time is None:
            return None
        return self.first_dispatch_time - self.arrival_time

    @property
    def is_runnable(self) -> bool:
        """True if the task is on the run queue or on a CPU."""
        return self.state in (TaskState.RUNNABLE, TaskState.RUNNING)

    def advance_behavior(self, now: float) -> Segment:
        """Ask the behaviour for the next segment; validate its type."""
        segment = self.behavior.next_segment(now)
        if not isinstance(segment, (Run, Block, Exit)):
            raise TypeError(
                f"behavior of {self.name} produced {segment!r}, "
                "expected Run/Block/Exit"
            )
        return segment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.name} tid={self.tid} w={self._weight} phi={self.phi:.4g} "
            f"{self.state.value} service={self.service:.4f}>"
        )
