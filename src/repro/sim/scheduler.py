"""Scheduler interface for the simulated SMP machine.

The machine invokes the scheduler at exactly the points the paper's
Linux implementation hooks (§3.1): thread arrival, wakeup, block,
departure, quantum expiry, and explicit weight changes — and quanta on
different processors are *not* synchronized, so each CPU independently
asks for the next thread when its current one blocks or is preempted.

Concrete schedulers (SFS in :mod:`repro.core.sfs`, the baselines in
:mod:`repro.schedulers`) subclass :class:`Scheduler`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.sim.costs import DecisionCostParams
from repro.sim.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

__all__ = ["Scheduler"]


class Scheduler:
    """Abstract scheduler driven by machine hook calls.

    Subclasses must implement :meth:`pick_next`; hook methods default to
    no-ops so simple policies stay simple. All hooks receive the current
    simulation time; hooks that fire when a thread leaves a CPU also
    receive ``ran``, the CPU time the thread consumed in the quantum
    just ended (the ``q`` of Eq. 5 — note it varies when threads block
    before quantum expiry).
    """

    #: human-readable policy name (used in traces and figure legends)
    name: str = "abstract"

    #: analytic decision-cost parameters (see repro.sim.costs); the
    #: machine consults these when its cost model includes decision cost.
    decision_cost_params = DecisionCostParams()

    def __init__(self) -> None:
        self.machine: "Machine | None" = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Bind this scheduler to a machine. Called once by the machine."""
        if self.machine is not None:
            raise RuntimeError(f"{self.name} scheduler is already attached")
        self.machine = machine

    # -- hooks (machine -> scheduler) --------------------------------------

    def on_arrival(self, task: Task, now: float) -> None:
        """A brand-new task became runnable."""

    def on_wakeup(self, task: Task, now: float) -> None:
        """A blocked task became runnable again."""

    def on_block(self, task: Task, now: float, ran: float) -> None:
        """The task left a CPU because it blocked (ran for ``ran`` s)."""

    def on_preempt(self, task: Task, now: float, ran: float) -> None:
        """The task left a CPU but remains runnable (quantum expiry or
        forced preemption)."""

    def on_exit(self, task: Task, now: float, ran: float) -> None:
        """The task left a CPU because it terminated.

        ``ran`` is 0 if the task exited without ever running again.
        """

    def on_weight_change(self, task: Task, old_weight: float, now: float) -> None:
        """The user changed the task's weight (setweight syscall, §3.1)."""

    # -- decisions (scheduler -> machine) -----------------------------------

    def pick_next(self, cpu: int, now: float) -> Task | None:
        """Return the next task to run on ``cpu``, or None to idle.

        Must return a task in RUNNABLE state (never one currently
        RUNNING on another CPU). Work-conserving schedulers return a
        task whenever any is runnable.
        """
        raise NotImplementedError

    def choose_victim(
        self, task: Task, running: Mapping[int, Task], now: float
    ) -> int | None:
        """Wakeup preemption: pick a CPU whose current task should yield
        to the newly runnable ``task``, or None to let it wait.

        Mirrors Linux 2.2's ``reschedule_idle()``: invoked only when no
        CPU is idle. The default is no wakeup preemption.
        """
        return None

    def quantum_for(self, task: Task, cpu: int, now: float) -> float | None:
        """Time slice to grant the dispatched task, or None for the
        machine default. The Linux time-sharing baseline returns its
        remaining counter here."""
        return None

    # -- introspection ------------------------------------------------------

    def decision_cost(self, runnable_count: int) -> float:
        """Modelled cost (seconds) of one pick-next decision."""
        return self.decision_cost_params.cost(runnable_count)

    def runnable_tasks(self) -> list[Task]:
        """Snapshot of tasks this scheduler currently considers runnable.

        Subclasses should override; used by invariant checks in tests.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name}>"
