/* Compiled hot path for the discrete-event engine and the SFS surplus
 * recompute.
 *
 * This module is the optional C twin of repro/sim/engine.py: an
 * ``Engine`` type implementing the same calendar-queue event loop
 * (one bucket per exact timestamp, a C double min-heap over the
 * distinct times, whole-bucket batch dispatch), plus a
 * ``sfs_recompute`` helper that runs the Eq. 4 surplus-recompute loop
 * of repro/core/sfs.py at C speed for float tag arithmetic.
 *
 * Behavioural contract: bit-for-bit identical event order and
 * arithmetic versus the pure-Python implementations. Every float
 * computation here is the same IEEE-double expression evaluated in the
 * same order as the Python source (CPython floats *are* C doubles), and
 * the (time, seq) total order is preserved by construction: seq is
 * assigned monotonically, so bucket append order is seq order.
 * tests/test_eventq.py pins the equivalence.
 *
 * Build: optional — ``python setup.py build_ext --inplace`` (or
 * ``SFS_BUILD_EXT=1 pip install -e .``). The pure-Python engine is the
 * always-available fallback; repro/sim/engine.py selects at import per
 * the SFS_ENGINE policy.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <stdlib.h>

/* Raise `exc` with a printf-style message whose %R slots are two C
 * doubles (PyErr_Format has no float directive). */
static void
raise_with_two_doubles(PyObject *exc, const char *fmt, double a, double b)
{
    PyObject *ao = PyFloat_FromDouble(a);
    PyObject *bo = PyFloat_FromDouble(b);
    if (ao != NULL && bo != NULL)
        PyErr_Format(exc, fmt, ao, bo);
    Py_XDECREF(ao);
    Py_XDECREF(bo);
}

/* ------------------------------------------------------------------ */
/* interned attribute / dict-key names (created at module init)        */
/* ------------------------------------------------------------------ */

static PyObject *str_phi;   /* "phi"   */
static PyObject *str_sched; /* "sched" */
static PyObject *str_tid;   /* "tid"   */
static PyObject *str_S;     /* "S"     */
static PyObject *str_alpha; /* "alpha" */

/* ------------------------------------------------------------------ */
/* EventHandle                                                         */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *fn;
    PyObject *args;    /* always a tuple */
    int cancelled;
    PyObject *engine;  /* strong ref while live; NULL once fired/cancelled */
} HandleObject;

static PyTypeObject Handle_Type; /* forward */

typedef struct {
    PyObject_HEAD
    double now;
    long long seq;
    long long fired;
    long long live;
    PyObject *buckets;   /* dict: float time -> list[EventHandle] (seq order) */
    double *times;       /* C binary min-heap of the distinct bucket times */
    Py_ssize_t times_len;
    Py_ssize_t times_cap;
    PyObject *head;      /* bucket being drained one event at a time, or NULL */
    Py_ssize_t head_pos;
    double head_time;
} EngineObject;

static PyTypeObject Engine_Type; /* forward */

static void
Handle_dealloc(HandleObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->fn);
    Py_XDECREF(self->args);
    Py_XDECREF(self->engine);
    PyObject_GC_Del(self);
}

static int
Handle_traverse(HandleObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    Py_VISIT(self->engine);
    return 0;
}

static int
Handle_clear(HandleObject *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    Py_CLEAR(self->engine);
    return 0;
}

static PyObject *
Handle_cancel(HandleObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        self->cancelled = 1;
        if (self->engine != NULL) {
            ((EngineObject *)self->engine)->live--;
            Py_CLEAR(self->engine);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Handle_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT ||
        !PyObject_TypeCheck(a, &Handle_Type) ||
        !PyObject_TypeCheck(b, &Handle_Type)) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    HandleObject *ha = (HandleObject *)a, *hb = (HandleObject *)b;
    int lt = (ha->time < hb->time) ||
             (ha->time == hb->time && ha->seq < hb->seq);
    return PyBool_FromLong(lt);
}

static PyObject *
Handle_repr(HandleObject *self)
{
    PyObject *t = PyFloat_FromDouble(self->time);
    if (t == NULL)
        return NULL;
    PyObject *r = PyUnicode_FromFormat(
        "<EventHandle t=%R (%s)>", t,
        self->cancelled ? "cancelled" : "pending");
    Py_DECREF(t);
    return r;
}

static PyObject *
Handle_get_cancelled(HandleObject *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyMemberDef Handle_members[] = {
    {"time", T_DOUBLE, offsetof(HandleObject, time), READONLY,
     "absolute fire time"},
    {"seq", T_LONGLONG, offsetof(HandleObject, seq), READONLY,
     "monotonic scheduling serial (FIFO tie-break)"},
    {"fn", T_OBJECT_EX, offsetof(HandleObject, fn), READONLY,
     "the scheduled callable"},
    {"args", T_OBJECT_EX, offsetof(HandleObject, args), READONLY,
     "positional arguments for fn"},
    {NULL}
};

static PyGetSetDef Handle_getset[] = {
    {"cancelled", (getter)Handle_get_cancelled, NULL,
     "whether cancel() was called before the event fired", NULL},
    {NULL}
};

static PyMethodDef Handle_methods[] = {
    {"cancel", (PyCFunction)Handle_cancel, METH_NOARGS,
     "Prevent the event from firing (no-op if already fired)."},
    {NULL}
};

static PyTypeObject Handle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._engine.EventHandle",
    .tp_basicsize = sizeof(HandleObject),
    .tp_dealloc = (destructor)Handle_dealloc,
    .tp_repr = (reprfunc)Handle_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Handle to a scheduled event; allows O(1) cancellation.",
    .tp_traverse = (traverseproc)Handle_traverse,
    .tp_clear = (inquiry)Handle_clear,
    .tp_richcompare = Handle_richcompare,
    .tp_methods = Handle_methods,
    .tp_members = Handle_members,
    .tp_getset = Handle_getset,
};

/* ------------------------------------------------------------------ */
/* Engine: the C double min-heap of distinct bucket times              */
/* ------------------------------------------------------------------ */

static int
times_push(EngineObject *self, double v)
{
    if (self->times_len == self->times_cap) {
        Py_ssize_t cap = self->times_cap ? self->times_cap * 2 : 64;
        double *grown = PyMem_Realloc(self->times, cap * sizeof(double));
        if (grown == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->times = grown;
        self->times_cap = cap;
    }
    double *a = self->times;
    Py_ssize_t i = self->times_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (a[parent] <= v)
            break;
        a[i] = a[parent];
        i = parent;
    }
    a[i] = v;
    return 0;
}

static double
times_pop(EngineObject *self)
{
    double *a = self->times;
    double top = a[0];
    double last = a[--self->times_len];
    Py_ssize_t n = self->times_len;
    Py_ssize_t i = 0;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && a[child + 1] < a[child])
            child++;
        if (last <= a[child])
            break;
        a[i] = a[child];
        i = child;
    }
    if (n > 0)
        a[i] = last;
    return top;
}

/* ------------------------------------------------------------------ */
/* Engine type                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
Engine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) > 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) > 0)) {
        PyErr_SetString(PyExc_TypeError,
                        "the compiled Engine takes no arguments (its "
                        "event queue is the built-in calendar queue; "
                        "use repro.sim.engine.PyEngine to pick a queue)");
        return NULL;
    }
    EngineObject *self = (EngineObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = 0.0;
    self->seq = 0;
    self->fired = 0;
    self->live = 0;
    self->buckets = PyDict_New();
    if (self->buckets == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    self->times = NULL;
    self->times_len = 0;
    self->times_cap = 0;
    self->head = NULL;
    self->head_pos = 0;
    self->head_time = INFINITY;
    return (PyObject *)self;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->buckets);
    Py_XDECREF(self->head);
    PyMem_Free(self->times);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->buckets);
    Py_VISIT(self->head);
    return 0;
}

static int
Engine_clear_gc(EngineObject *self)
{
    Py_CLEAR(self->buckets);
    Py_CLEAR(self->head);
    return 0;
}

/* Queue a freshly created handle: O(1) into an existing same-time
 * bucket, O(log B) when the timestamp is new (B = distinct times). */
static int
engine_push(EngineObject *self, HandleObject *handle)
{
    PyObject *key = PyFloat_FromDouble(handle->time);
    if (key == NULL)
        return -1;
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, key);
    if (bucket != NULL) {
        int rc = PyList_Append(bucket, (PyObject *)handle);
        Py_DECREF(key);
        return rc;
    }
    if (PyErr_Occurred()) {
        Py_DECREF(key);
        return -1;
    }
    bucket = PyList_New(1);
    if (bucket == NULL) {
        Py_DECREF(key);
        return -1;
    }
    Py_INCREF(handle);
    PyList_SET_ITEM(bucket, 0, (PyObject *)handle);
    int rc = PyDict_SetItem(self->buckets, key, bucket);
    Py_DECREF(bucket);
    Py_DECREF(key);
    if (rc < 0)
        return -1;
    return times_push(self, handle->time);
}

static PyObject *
engine_schedule_common(EngineObject *self, double when, PyObject *args,
                       Py_ssize_t first_arg)
{
    /* `!(when >= now)` rejects both the past and NaN with one test,
     * mirroring PyEngine.schedule_at. */
    if (!(when >= self->now)) {
        raise_with_two_doubles(PyExc_ValueError,
                               "cannot schedule event in the past: "
                               "%R < now %R", when, self->now);
        return NULL;
    }
    PyObject *fn = PyTuple_GET_ITEM(args, first_arg - 1);
    PyObject *rest = PyTuple_GetSlice(args, first_arg,
                                      PyTuple_GET_SIZE(args));
    if (rest == NULL)
        return NULL;
    HandleObject *handle = PyObject_GC_New(HandleObject, &Handle_Type);
    if (handle == NULL) {
        Py_DECREF(rest);
        return NULL;
    }
    handle->time = when;
    handle->seq = self->seq;
    Py_INCREF(fn);
    handle->fn = fn;
    handle->args = rest; /* stolen */
    handle->cancelled = 0;
    Py_INCREF(self);
    handle->engine = (PyObject *)self;
    PyObject_GC_Track(handle);
    self->seq++;
    self->live++;
    if (engine_push(self, handle) < 0) {
        /* roll back so the failed schedule leaves no trace */
        self->live--;
        Py_CLEAR(handle->engine);
        Py_DECREF(handle);
        return NULL;
    }
    return (PyObject *)handle;
}

PyDoc_STRVAR(schedule_at_doc,
"schedule_at(when, fn, *args) -> EventHandle\n\n"
"Schedule fn(*args) to fire at absolute time `when`. Raises ValueError\n"
"if `when` is in the past (or NaN); simultaneous events fire in\n"
"scheduling order.");

static PyObject *
Engine_schedule_at(EngineObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at() requires (when, fn, *args)");
        return NULL;
    }
    double when = PyFloat_AsDouble(PyTuple_GET_ITEM(args, 0));
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    return engine_schedule_common(self, when, args, 2);
}

PyDoc_STRVAR(schedule_after_doc,
"schedule_after(delay, fn, *args) -> EventHandle\n\n"
"Schedule fn(*args) to fire `delay` seconds from now (delay >= 0).");

static PyObject *
Engine_schedule_after(EngineObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_after() requires (delay, fn, *args)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(PyTuple_GET_ITEM(args, 0));
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        raise_with_two_doubles(PyExc_ValueError,
                               "delay must be >= 0, got %R", delay, 0.0);
        return NULL;
    }
    return engine_schedule_common(self, self->now + delay, args, 2);
}

/* Pop the earliest bucket with time <= bound. Returns a NEW reference
 * to the batch list (possibly a tail slice of a partially drained
 * head), or NULL with no exception set when nothing is due, or NULL
 * with an exception set on (allocation) failure. The batch may be
 * entirely cancelled — the caller skips those. */
static PyObject *
engine_next_batch(EngineObject *self, double bound)
{
    if (self->head != NULL) {
        if (self->head_time > bound)
            return NULL;
        PyObject *batch;
        if (self->head_pos == 0) {
            batch = self->head;
            self->head = NULL;
        }
        else {
            batch = PyList_GetSlice(self->head, self->head_pos,
                                    PyList_GET_SIZE(self->head));
            Py_CLEAR(self->head);
            if (batch == NULL)
                return NULL;
        }
        return batch;
    }
    if (self->times_len == 0 || self->times[0] > bound)
        return NULL;
    double when = times_pop(self);
    PyObject *key = PyFloat_FromDouble(when);
    if (key == NULL)
        return NULL;
    PyObject *bucket = PyDict_GetItemWithError(self->buckets, key);
    if (bucket == NULL) {
        /* impossible by construction: every heap time has a bucket */
        Py_DECREF(key);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError,
                            "calendar-queue invariant violated: "
                            "heap time with no bucket");
        return NULL;
    }
    Py_INCREF(bucket);
    if (PyDict_DelItem(self->buckets, key) < 0) {
        Py_DECREF(bucket);
        Py_DECREF(key);
        return NULL;
    }
    Py_DECREF(key);
    return bucket;
}

/* Fire every event with time <= bound, batch by batch. On a callback
 * exception the unfired tail of the current batch becomes the new head
 * bucket, so the queue looks as if those events were never popped. */
static int
engine_drain(EngineObject *self, double bound)
{
    for (;;) {
        PyObject *batch = engine_next_batch(self, bound);
        if (batch == NULL)
            return PyErr_Occurred() ? -1 : 0;
        Py_ssize_t n = PyList_GET_SIZE(batch);
        Py_ssize_t i;
        int any_live = 0;
        for (i = 0; i < n; i++) {
            if (!((HandleObject *)PyList_GET_ITEM(batch, i))->cancelled) {
                any_live = 1;
                break;
            }
        }
        if (!any_live) { /* bucket was entirely cancelled: skip it */
            Py_DECREF(batch);
            continue;
        }
        self->now = ((HandleObject *)PyList_GET_ITEM(batch, 0))->time;
        for (i = 0; i < n; i++) {
            HandleObject *h = (HandleObject *)PyList_GET_ITEM(batch, i);
            if (h->cancelled)
                continue;
            /* Counters move before the callback runs, exactly as in
             * step(): a callback reading `pending` or `events_fired`
             * must see the same values on either code path. */
            self->fired++;
            self->live--;
            Py_CLEAR(h->engine);
            PyObject *res = PyObject_CallObject(h->fn, h->args);
            if (res == NULL) {
                if (i + 1 < n) {
                    self->head = batch; /* steal our batch reference */
                    self->head_pos = i + 1;
                    self->head_time = self->now;
                }
                else {
                    Py_DECREF(batch);
                }
                return -1;
            }
            Py_DECREF(res);
        }
        Py_DECREF(batch);
    }
}

/* Fire the single next pending event. Returns 1 if one fired, 0 if the
 * queue is empty, -1 on exception. */
static int
engine_step_inner(EngineObject *self)
{
    for (;;) {
        if (self->head == NULL) {
            if (self->times_len == 0)
                return 0;
            double when = times_pop(self);
            PyObject *key = PyFloat_FromDouble(when);
            if (key == NULL)
                return -1;
            PyObject *bucket = PyDict_GetItemWithError(self->buckets, key);
            if (bucket == NULL) {
                Py_DECREF(key);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_RuntimeError,
                                    "calendar-queue invariant violated: "
                                    "heap time with no bucket");
                return -1;
            }
            Py_INCREF(bucket);
            if (PyDict_DelItem(self->buckets, key) < 0) {
                Py_DECREF(bucket);
                Py_DECREF(key);
                return -1;
            }
            Py_DECREF(key);
            self->head = bucket;
            self->head_pos = 0;
            self->head_time = when;
        }
        PyObject *head = self->head;
        Py_ssize_t size = PyList_GET_SIZE(head);
        Py_ssize_t pos = self->head_pos;
        while (pos < size) {
            HandleObject *h = (HandleObject *)PyList_GET_ITEM(head, pos);
            pos++;
            if (h->cancelled)
                continue;
            Py_INCREF(h); /* keep h alive if we drop the head list */
            if (pos == size)
                Py_CLEAR(self->head);
            else
                self->head_pos = pos;
            self->now = h->time;
            self->fired++;
            self->live--;
            Py_CLEAR(h->engine);
            PyObject *res = PyObject_CallObject(h->fn, h->args);
            Py_DECREF(h);
            if (res == NULL)
                return -1;
            Py_DECREF(res);
            return 1;
        }
        Py_CLEAR(self->head);
    }
}

PyDoc_STRVAR(step_doc,
"step() -> bool\n\n"
"Fire the next pending event. Returns False if the queue is empty.");

static PyObject *
Engine_step(EngineObject *self, PyObject *Py_UNUSED(ignored))
{
    int rc = engine_step_inner(self);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

PyDoc_STRVAR(run_until_doc,
"run_until(t_end)\n\n"
"Process all events with time <= t_end; leave now == t_end. Events\n"
"scheduled exactly at t_end do fire.");

static PyObject *
Engine_run_until(EngineObject *self, PyObject *arg)
{
    double t_end = PyFloat_AsDouble(arg);
    if (t_end == -1.0 && PyErr_Occurred())
        return NULL;
    if (t_end < self->now) {
        raise_with_two_doubles(PyExc_ValueError,
                               "t_end %R is in the past (now=%R)",
                               t_end, self->now);
        return NULL;
    }
    if (engine_drain(self, t_end) < 0)
        return NULL;
    self->now = t_end;
    Py_RETURN_NONE;
}

PyDoc_STRVAR(run_doc,
"run(max_events=None) -> int\n\n"
"Run until the event queue is empty. `max_events` bounds the number of\n"
"events fired (a safety valve for workloads that regenerate events\n"
"forever). Returns the number of events fired by this call.");

static PyObject *
Engine_run(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"max_events", NULL};
    PyObject *max_events = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &max_events))
        return NULL;
    if (max_events == Py_None) {
        long long before = self->fired;
        if (engine_drain(self, INFINITY) < 0)
            return NULL;
        return PyLong_FromLongLong(self->fired - before);
    }
    long long cap = PyLong_AsLongLong(max_events);
    if (cap == -1 && PyErr_Occurred())
        return NULL;
    long long fired = 0;
    while (fired < cap) {
        int rc = engine_step_inner(self);
        if (rc < 0)
            return NULL;
        if (rc == 0)
            break;
        fired++;
    }
    return PyLong_FromLongLong(fired);
}

static PyObject *
Engine_get_now(EngineObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Engine_get_events_fired(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->fired);
}

static PyObject *
Engine_get_pending(EngineObject *self, void *closure)
{
    return PyLong_FromLongLong(self->live);
}

static PyObject *
Engine_get_queue_kind(EngineObject *self, void *closure)
{
    return PyUnicode_FromString("calendar");
}

static PyGetSetDef Engine_getset[] = {
    {"now", (getter)Engine_get_now, NULL,
     "Current simulation time in seconds.", NULL},
    {"events_fired", (getter)Engine_get_events_fired, NULL,
     "Number of events processed so far (instrumentation).", NULL},
    {"pending", (getter)Engine_get_pending, NULL,
     "Number of not-yet-fired, not-cancelled events - O(1).", NULL},
    {"queue_kind", (getter)Engine_get_queue_kind, NULL,
     "Event-queue kind (always the built-in calendar queue).", NULL},
    {NULL}
};

static PyMethodDef Engine_methods[] = {
    {"schedule_at", (PyCFunction)Engine_schedule_at, METH_VARARGS,
     schedule_at_doc},
    {"schedule_after", (PyCFunction)Engine_schedule_after, METH_VARARGS,
     schedule_after_doc},
    {"step", (PyCFunction)Engine_step, METH_NOARGS, step_doc},
    {"run_until", (PyCFunction)Engine_run_until, METH_O, run_until_doc},
    {"run", (PyCFunction)Engine_run, METH_VARARGS | METH_KEYWORDS, run_doc},
    {NULL}
};

static PyTypeObject Engine_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._engine.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Discrete-event simulation clock and calendar event queue "
              "(compiled). Behaviourally identical to "
              "repro.sim.engine.PyEngine.",
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear_gc,
    .tp_methods = Engine_methods,
    .tp_getset = Engine_getset,
    .tp_new = Engine_new,
};

/* ------------------------------------------------------------------ */
/* sfs_recompute: the Eq. 4 surplus loop of repro/core/sfs.py in C     */
/* ------------------------------------------------------------------ */

typedef struct {
    double alpha;
    long long tid;
    PyObject *task;    /* borrowed from the input sequence */
    PyObject *alpha_o; /* owned PyFloat(alpha) */
    PyObject *tid_o;   /* owned PyLong(tid) */
} recompute_entry;

static int
recompute_cmp(const void *pa, const void *pb)
{
    const recompute_entry *a = *(recompute_entry *const *)pa;
    const recompute_entry *b = *(recompute_entry *const *)pb;
    if (a->alpha < b->alpha) return -1;
    if (a->alpha > b->alpha) return 1;
    if (a->tid < b->tid) return -1;
    if (a->tid > b->tid) return 1;
    return 0;
}

static inline int
entry_lt(const recompute_entry *a, const recompute_entry *b)
{
    if (a->alpha != b->alpha)
        return a->alpha < b->alpha;
    return a->tid < b->tid;
}

/* Sort an array of entry pointers. The input is the surplus queue in
 * its previous sorted order with freshly recomputed keys — §3.2's
 * "mostly sorted" observation — so insertion sort runs in O(n +
 * inversions). A shift budget bails out to qsort if the order has
 * decayed (a valid permutation at any point, so qsort can take over). */
static void
sort_entries(recompute_entry **ptrs, Py_ssize_t n)
{
    size_t budget = (size_t)n * 8 + 64;
    for (Py_ssize_t i = 1; i < n; i++) {
        recompute_entry *e = ptrs[i];
        Py_ssize_t j = i - 1;
        while (j >= 0 && entry_lt(e, ptrs[j])) {
            ptrs[j + 1] = ptrs[j];
            j--;
            if (budget-- == 0) {
                ptrs[j + 1] = e;
                qsort(ptrs, (size_t)n, sizeof(recompute_entry *),
                      recompute_cmp);
                return;
            }
        }
        ptrs[j + 1] = e;
    }
}

/* Cached slot offsets for one Task type: with __slots__, phi/sched/tid
 * are fixed-offset member descriptors, so reading them is one load
 * instead of a generic attribute lookup. Falls back to getattr when the
 * type doesn't match the cache (subclasses, test doubles). */
typedef struct {
    PyTypeObject *type; /* borrowed; identity-checked per call */
    Py_ssize_t phi_off;
    Py_ssize_t sched_off;
    Py_ssize_t tid_off;
} slot_cache;

static slot_cache task_slots = {NULL, 0, 0, 0};

static Py_ssize_t
member_offset(PyTypeObject *type, PyObject *name)
{
    PyObject *descr = PyObject_GetAttr((PyObject *)type, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t off = -1;
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *m = ((PyMemberDescrObject *)descr)->d_member;
        if (m != NULL && m->type == T_OBJECT_EX && !(m->flags & READONLY))
            off = m->offset;
    }
    Py_DECREF(descr);
    return off;
}

static int
slot_cache_fill(slot_cache *cache, PyTypeObject *type)
{
    cache->phi_off = member_offset(type, str_phi);
    cache->sched_off = member_offset(type, str_sched);
    cache->tid_off = member_offset(type, str_tid);
    if (cache->phi_off < 0 || cache->sched_off < 0 || cache->tid_off < 0) {
        cache->type = NULL;
        return 0; /* not slot-backed: use generic getattr */
    }
    Py_INCREF(type); /* pin the cached type for the process lifetime */
    Py_XDECREF(cache->type);
    cache->type = type;
    return 1;
}

/* Read a T_OBJECT_EX slot; NULL + AttributeError when unset. Returns a
 * BORROWED reference (the task keeps the slot alive for the caller's
 * whole loop iteration). */
static inline PyObject *
slot_read(PyObject *obj, Py_ssize_t offset, PyObject *name)
{
    PyObject *value = *(PyObject **)((char *)obj + offset);
    if (value == NULL)
        PyErr_SetObject(PyExc_AttributeError, name);
    return value;
}

PyDoc_STRVAR(sfs_recompute_doc,
"sfs_recompute(tasks, v, queue=None)\n\n"
"For every task compute alpha = phi * (sched['S'] - v) (Eq. 4, float\n"
"tag arithmetic), store it in task.sched['alpha'], and produce the\n"
"sorted state SortedTaskList carries: the (alpha, tid) key list, the\n"
"task list in the same order, and the tid -> key dict. With `queue`\n"
"given, that state is installed onto it directly (its _keys/_tasks/\n"
"_cached_key slots are replaced and `comparisons` is charged as\n"
"rebuild_sorted would) and the element count is returned; without it\n"
"the (keys, tasks, cached_key) triple is returned for the caller to\n"
"install. Keys are unique (tid tie-break) so the order is identical to\n"
"the pure-Python recompute-and-rebuild path, bit for bit.");

static PyObject *str_keys_attr;    /* "_keys" */
static PyObject *str_tasks_attr;   /* "_tasks" */
static PyObject *str_cached_attr;  /* "_cached_key" */
static PyObject *str_comparisons;  /* "comparisons" */

static int
install_on_queue(PyObject *queue, PyObject *keys, PyObject *tasks,
                 PyObject *cached, Py_ssize_t n)
{
    if (PyObject_SetAttr(queue, str_keys_attr, keys) < 0 ||
        PyObject_SetAttr(queue, str_tasks_attr, tasks) < 0 ||
        PyObject_SetAttr(queue, str_cached_attr, cached) < 0)
        return -1;
    /* comparisons += n * max(1, n.bit_length()) — same charge as
     * rebuild_sorted/install_sorted. */
    long long bits = 0;
    for (Py_ssize_t m = n; m > 0; m >>= 1)
        bits++;
    if (bits < 1)
        bits = 1;
    PyObject *old = PyObject_GetAttr(queue, str_comparisons);
    if (old == NULL)
        return -1;
    PyObject *delta = PyLong_FromLongLong((long long)n * bits);
    if (delta == NULL) {
        Py_DECREF(old);
        return -1;
    }
    PyObject *fresh = PyNumber_Add(old, delta);
    Py_DECREF(old);
    Py_DECREF(delta);
    if (fresh == NULL)
        return -1;
    int rc = PyObject_SetAttr(queue, str_comparisons, fresh);
    Py_DECREF(fresh);
    return rc;
}

static PyObject *
sfs_recompute(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *tasks_in;
    PyObject *queue = Py_None;
    double v;
    if (!PyArg_ParseTuple(args, "Od|O", &tasks_in, &v, &queue))
        return NULL;
    PyObject *seq = PySequence_Fast(tasks_in, "tasks must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    recompute_entry *ent = NULL;
    recompute_entry **ptrs = NULL;
    PyObject *keys = NULL, *tasks_out = NULL, *cached = NULL, *result = NULL;
    Py_ssize_t filled = 0;
    if (n > 0) {
        ent = PyMem_Malloc((size_t)n * (sizeof(recompute_entry) +
                                        sizeof(recompute_entry *)));
        if (ent == NULL) {
            Py_DECREF(seq);
            return PyErr_NoMemory();
        }
        ptrs = (recompute_entry **)(ent + n);
    }
    /* Resolve the Task type's slot offsets once (identity-checked, so a
     * different task class just refills or falls back to getattr). */
    slot_cache *slots = NULL;
    if (n > 0) {
        PyTypeObject *t0 = Py_TYPE(PySequence_Fast_GET_ITEM(seq, 0));
        if (task_slots.type == t0)
            slots = &task_slots;
        else if (slot_cache_fill(&task_slots, t0))
            slots = &task_slots;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *task = PySequence_Fast_GET_ITEM(seq, i);
        PyObject *phi_o, *sched, *tid_o; /* borrowed when slot-backed */
        int borrowed = (slots != NULL && Py_TYPE(task) == slots->type);
        if (borrowed) {
            phi_o = slot_read(task, slots->phi_off, str_phi);
            sched = phi_o ? slot_read(task, slots->sched_off, str_sched)
                          : NULL;
            tid_o = sched ? slot_read(task, slots->tid_off, str_tid) : NULL;
            if (tid_o == NULL)
                goto fail;
        }
        else {
            phi_o = PyObject_GetAttr(task, str_phi);
            if (phi_o == NULL)
                goto fail;
            sched = PyObject_GetAttr(task, str_sched);
            if (sched == NULL) {
                Py_DECREF(phi_o);
                goto fail;
            }
            tid_o = PyObject_GetAttr(task, str_tid);
            if (tid_o == NULL) {
                Py_DECREF(phi_o);
                Py_DECREF(sched);
                goto fail;
            }
        }
        double phi = PyFloat_AsDouble(phi_o);
        if (!borrowed)
            Py_DECREF(phi_o);
        if (phi == -1.0 && PyErr_Occurred())
            goto fail_triplet;
        if (!PyDict_Check(sched)) {
            PyErr_SetString(PyExc_TypeError, "task.sched must be a dict");
            goto fail_triplet;
        }
        PyObject *S_o = PyDict_GetItemWithError(sched, str_S);
        if (S_o == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetObject(PyExc_KeyError, str_S);
            goto fail_triplet;
        }
        double S = PyFloat_AsDouble(S_o);
        if (S == -1.0 && PyErr_Occurred())
            goto fail_triplet;
        /* Same IEEE-double expression, same evaluation order as
         * FloatTags.surplus: alpha = phi * (S - v). */
        double alpha = phi * (S - v);
        PyObject *alpha_o = PyFloat_FromDouble(alpha);
        if (alpha_o == NULL)
            goto fail_triplet;
        if (PyDict_SetItem(sched, str_alpha, alpha_o) < 0) {
            Py_DECREF(alpha_o);
            goto fail_triplet;
        }
        long long tid = PyLong_AsLongLong(tid_o);
        if (tid == -1 && PyErr_Occurred()) {
            Py_DECREF(alpha_o);
            goto fail_triplet;
        }
        if (!borrowed)
            Py_DECREF(sched);
        else
            Py_INCREF(tid_o); /* entry keeps its own tid reference */
        ent[filled].alpha = alpha;
        ent[filled].tid = tid;
        ent[filled].task = task;
        ent[filled].alpha_o = alpha_o;
        ent[filled].tid_o = tid_o;
        ptrs[filled] = &ent[filled];
        filled++;
        continue;
    fail_triplet:
        if (!borrowed) {
            Py_DECREF(sched);
            Py_DECREF(tid_o);
        }
        goto fail;
    }
    if (n > 1)
        sort_entries(ptrs, n);
    keys = PyList_New(n);
    tasks_out = PyList_New(n);
#if PY_VERSION_HEX < 0x030D0000
    cached = _PyDict_NewPresized(n);
#else
    cached = PyDict_New();
#endif
    if (keys == NULL || tasks_out == NULL || cached == NULL)
        goto fail;
    for (Py_ssize_t i = 0; i < n; i++) {
        recompute_entry *e = ptrs[i];
        PyObject *key = PyTuple_Pack(2, e->alpha_o, e->tid_o);
        if (key == NULL)
            goto fail;
        PyList_SET_ITEM(keys, i, key); /* steals key */
        Py_INCREF(e->task);
        PyList_SET_ITEM(tasks_out, i, e->task);
        if (PyDict_SetItem(cached, e->tid_o, key) < 0)
            goto fail;
    }
    if (queue == Py_None)
        result = PyTuple_Pack(3, keys, tasks_out, cached);
    else if (install_on_queue(queue, keys, tasks_out, cached, n) == 0)
        result = PyLong_FromSsize_t(n);
fail:
    for (Py_ssize_t i = 0; i < filled; i++) {
        Py_DECREF(ent[i].alpha_o);
        Py_DECREF(ent[i].tid_o);
    }
    PyMem_Free(ent);
    Py_XDECREF(keys);
    Py_XDECREF(tasks_out);
    Py_XDECREF(cached);
    Py_DECREF(seq);
    return result;
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef module_methods[] = {
    {"sfs_recompute", sfs_recompute, METH_VARARGS, sfs_recompute_doc},
    {NULL}
};

static struct PyModuleDef enginemodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._engine",
    .m_doc = "Compiled calendar-queue event engine and SFS surplus "
             "recompute (optional; pure-Python fallback in "
             "repro.sim.engine).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__engine(void)
{
    if (PyType_Ready(&Handle_Type) < 0 || PyType_Ready(&Engine_Type) < 0)
        return NULL;
    str_phi = PyUnicode_InternFromString("phi");
    str_sched = PyUnicode_InternFromString("sched");
    str_tid = PyUnicode_InternFromString("tid");
    str_S = PyUnicode_InternFromString("S");
    str_alpha = PyUnicode_InternFromString("alpha");
    str_keys_attr = PyUnicode_InternFromString("_keys");
    str_tasks_attr = PyUnicode_InternFromString("_tasks");
    str_cached_attr = PyUnicode_InternFromString("_cached_key");
    str_comparisons = PyUnicode_InternFromString("comparisons");
    if (str_phi == NULL || str_sched == NULL || str_tid == NULL ||
        str_S == NULL || str_alpha == NULL || str_keys_attr == NULL ||
        str_tasks_attr == NULL || str_cached_attr == NULL ||
        str_comparisons == NULL)
        return NULL;
    PyObject *m = PyModule_Create(&enginemodule);
    if (m == NULL)
        return NULL;
    Py_INCREF(&Engine_Type);
    if (PyModule_AddObject(m, "Engine", (PyObject *)&Engine_Type) < 0) {
        Py_DECREF(&Engine_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&Handle_Type);
    if (PyModule_AddObject(m, "EventHandle", (PyObject *)&Handle_Type) < 0) {
        Py_DECREF(&Handle_Type);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
