"""A minimal, deterministic discrete-event engine.

The engine maintains a priority queue of timestamped callbacks. Events
scheduled at identical times fire in the order they were scheduled
(FIFO), which keeps every simulation in this repository bit-for-bit
reproducible.

The engine knows nothing about CPUs or schedulers; the machine layer
(:mod:`repro.sim.machine`) builds on top of it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Handle to a scheduled event; allows O(1) cancellation.

    Cancelled events stay in the heap but are skipped when popped. The
    handle keeps a back-reference to its engine while live so that
    cancellation can maintain the engine's pending-event counter; the
    reference is dropped once the event fires or is cancelled.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine: "Engine | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._live -= 1
            self._engine = None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {self.fn.__name__} ({state})>"


class Engine:
    """Discrete-event simulation clock and event queue.

    The heap holds ``(time, seq, handle)`` tuples rather than the
    handles themselves: ``seq`` is unique, so ordering — identical to
    ``EventHandle.__lt__`` — never falls through to comparing handles,
    and every heap sift compares tuples in C instead of calling a
    Python ``__lt__``. At N=5000 server runs the heap churn is a
    measurable slice of wall time for *every* policy.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._fired = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events processed so far (instrumentation)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events — O(1)."""
        return self._live

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to fire at absolute time ``when``.

        Raises ``ValueError`` if ``when`` is in the past; simultaneous
        events fire in scheduling order.
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {when} < now {self._now}"
            )
        handle = EventHandle(when, self._seq, fn, args)
        handle._engine = self
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def step(self) -> bool:
        """Fire the next pending event. Returns False if queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)[2]
            if handle.cancelled:
                continue
            self._now = handle.time
            self._fired += 1
            self._live -= 1
            handle._engine = None  # a later cancel() must not re-decrement
            handle.fn(*handle.args)
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Process all events with time <= ``t_end``; leave now == t_end.

        Events scheduled exactly at ``t_end`` do fire.
        """
        if t_end < self._now:
            raise ValueError(f"t_end {t_end} is in the past (now={self._now})")
        while self._heap:
            when, _, head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if when > t_end:
                break
            self.step()
        self._now = t_end

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue is empty.

        ``max_events`` bounds the number of events fired (a safety valve
        for workloads that regenerate events forever). Returns the number
        of events fired by this call.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired
