"""A minimal, deterministic discrete-event engine.

The engine maintains a queue of timestamped callbacks. Events scheduled
at identical times fire in the order they were scheduled (FIFO), which
keeps every simulation in this repository bit-for-bit reproducible.

The engine knows nothing about CPUs or schedulers; the machine layer
(:mod:`repro.sim.machine`) builds on top of it.

Two engine implementations share this contract:

- :class:`PyEngine` (this module): pure Python, with a pluggable event
  queue from :mod:`repro.sim.eventq`. The default queue is the
  calendar queue, which batches all same-timestamp events through a
  single dispatch pass; the reference binary heap remains available
  for equivalence testing (``SFS_EVENTQ=heap``).
- ``repro.sim._engine.Engine``: the optional C extension (built from
  ``src/repro/sim/_engine.c``), implementing the same calendar queue
  and run loop in C. It is selected automatically when importable.

``Engine`` — the name the rest of the repository uses — binds to the
compiled implementation when present, unless ``SFS_ENGINE=pure``
forces the fallback (``SFS_ENGINE=compiled`` conversely *requires* the
extension and raises if it is missing). Both implementations are
behaviourally identical event for event; the test suite and the golden
contracts run against whichever is active, and
``tests/test_eventq.py`` pins pure-vs-compiled equivalence directly.
Call :func:`build_info` (or ``sfs-experiment list --build-info``) to
see which path is live.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.sim.eventq import EVENT_QUEUES, make_event_queue

__all__ = ["Engine", "EventHandle", "PyEngine", "build_info"]


class EventHandle:
    """Handle to a scheduled event; allows O(1) cancellation.

    Cancelled events stay in the queue but are skipped when popped. The
    handle keeps a back-reference to its engine while live so that
    cancellation can maintain the engine's pending-event counter; the
    reference is dropped once the event fires or is cancelled.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine: "PyEngine | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._live -= 1
            self._engine = None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {self.fn.__name__} ({state})>"


class PyEngine:
    """Discrete-event simulation clock and event queue (pure Python).

    Parameters
    ----------
    queue:
        Event-queue implementation: a name from
        :data:`repro.sim.eventq.EVENT_QUEUES` (``"calendar"`` or
        ``"heap"``), or None to take the ``SFS_EVENTQ`` environment
        variable (default ``"calendar"``). The choice changes wall
        clock, never behaviour — both queues yield events in identical
        ``(time, seq)`` order.
    """

    def __init__(self, queue: str | None = None) -> None:
        if queue is None:
            queue = os.environ.get("SFS_EVENTQ", "calendar")
        self._queue = make_event_queue(queue)
        self.queue_kind = queue
        self._now = 0.0
        self._seq = 0
        self._fired = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events processed so far (instrumentation)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events — O(1)."""
        return self._live

    def schedule_at(
        self, when: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to fire at absolute time ``when``.

        Raises ``ValueError`` if ``when`` is in the past (or NaN);
        simultaneous events fire in scheduling order.
        """
        if not when >= self._now:  # rejects the past and NaN in one test
            raise ValueError(
                f"cannot schedule event in the past: {when} < now {self._now}"
            )
        handle = EventHandle(when, self._seq, fn, args)
        handle._engine = self
        self._seq += 1
        self._live += 1
        self._queue.push(handle)
        return handle

    def schedule_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def step(self) -> bool:
        """Fire the next pending event. Returns False if queue is empty."""
        handle = self._queue.pop_due(float("inf"))
        if handle is None:
            return False
        self._now = handle.time
        self._fired += 1
        self._live -= 1
        handle._engine = None  # a later cancel() must not re-decrement
        handle.fn(*handle.args)
        return True

    def _drain(self, t_end: float) -> None:
        """Fire every event with ``time <= t_end``, batch by batch.

        All events sharing a timestamp arrive as one batch from the
        queue and go through a single dispatch pass here — one queue
        operation, then a tight fire loop. Events a callback schedules
        *at the current time* land in a fresh bucket and fire in the
        next batch, which is exactly their ``(time, seq)`` slot since
        their seq is higher than everything already queued at that
        time.
        """
        queue = self._queue
        pop_batch_due = queue.pop_batch_due
        while True:
            batch = pop_batch_due(t_end)
            if batch is None:
                return
            self._now = batch[0].time
            i = 0
            try:
                for i, handle in enumerate(batch):
                    if handle.cancelled:
                        continue
                    # Counters move before the callback runs, exactly as
                    # in step(): a callback reading ``pending`` or
                    # ``events_fired`` must see the same values on either
                    # code path.
                    self._fired += 1
                    self._live -= 1
                    handle._engine = None
                    handle.fn(*handle.args)
            except BaseException:
                # Leave the queue as if the unfired tail had never been
                # popped, so a caller that catches the exception can
                # keep stepping the simulation.
                queue.requeue(batch[i + 1 :], self._now)
                raise

    def run_until(self, t_end: float) -> None:
        """Process all events with time <= ``t_end``; leave now == t_end.

        Events scheduled exactly at ``t_end`` do fire.
        """
        if t_end < self._now:
            raise ValueError(f"t_end {t_end} is in the past (now={self._now})")
        self._drain(t_end)
        self._now = t_end

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue is empty.

        ``max_events`` bounds the number of events fired (a safety valve
        for workloads that regenerate events forever). Returns the number
        of events fired by this call.
        """
        if max_events is None:
            before = self._fired
            self._drain(float("inf"))
            return self._fired - before
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        return fired


def _select_engine():
    """Bind ``Engine`` per the ``SFS_ENGINE`` policy (see module doc)."""
    choice = os.environ.get("SFS_ENGINE", "auto")
    if choice not in ("auto", "compiled", "pure"):
        raise ValueError(
            f"SFS_ENGINE must be auto, compiled or pure, got {choice!r}"
        )
    compiled = None
    if choice != "pure":
        try:
            from repro.sim import _engine as compiled
        except ImportError:
            compiled = None
        if choice == "compiled" and compiled is None:
            raise ImportError(
                "SFS_ENGINE=compiled but the repro.sim._engine extension is "
                "not importable; build it with `python setup.py build_ext "
                "--inplace` (or `SFS_BUILD_EXT=1 pip install -e .`)"
            )
    if compiled is not None:
        return compiled.Engine, "compiled"
    return PyEngine, "pure"


Engine, _ENGINE_KIND = _select_engine()


def build_info() -> dict:
    """Report which engine/event-queue build is active.

    Returned keys: ``engine`` (``"compiled"`` or ``"pure"``),
    ``engine_class`` (qualified class name), ``eventq`` (active queue
    kind for the pure engine; the compiled engine always uses its
    built-in calendar queue), ``compiled_available`` (whether the C
    extension imports), and ``selector`` (the ``SFS_ENGINE`` policy in
    effect). Surfaced by ``sfs-experiment list --build-info`` so sweep
    logs can record which hot path produced them.
    """
    try:
        from repro.sim import _engine  # noqa: F401

        available = True
    except ImportError:
        available = False
    return {
        "engine": _ENGINE_KIND,
        "engine_class": f"{Engine.__module__}.{Engine.__qualname__}",
        "eventq": (
            "calendar"
            if _ENGINE_KIND == "compiled"
            else os.environ.get("SFS_EVENTQ", "calendar")
        ),
        "eventq_kinds": sorted(EVENT_QUEUES),
        "compiled_available": available,
        "selector": os.environ.get("SFS_ENGINE", "auto"),
    }
