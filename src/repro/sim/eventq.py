"""Pluggable event-queue implementations for the discrete-event engine.

The engine (:mod:`repro.sim.engine`) needs exactly one ordering
guarantee from its queue: events come out in ascending ``(time, seq)``
order, where ``seq`` is the monotonically increasing scheduling serial.
Two implementations provide it:

:class:`HeapEventQueue`
    The classic binary heap of ``(time, seq, handle)`` tuples — the
    engine's original structure, kept as the reference implementation
    and as the oracle for the equivalence tests
    (``tests/test_eventq.py``). O(log n) per push and per pop.

:class:`CalendarEventQueue`
    A calendar queue in the degenerate-bucket limit: one bucket per
    *exact timestamp*. Buckets live in a dict keyed by the raw float
    time; a small binary heap orders only the **distinct** pending
    timestamps. Because ``seq`` is assigned monotonically, appending to
    a bucket keeps it sorted for free, so

    - pushing into an existing bucket is O(1) (dict hit + list append),
    - pushing a new timestamp is O(log B) with B = distinct times
      (B <= n, and far smaller under bursty schedules),
    - popping drains a whole same-timestamp bucket with **one** heap
      pop, which is what lets the engine batch all simultaneous events
      through a single dispatch pass.

    Classic calendar queues bucket a *range* of times and must then
    sort within the bucket and handle year wrap-around; exact-timestamp
    buckets sidestep both while keeping the property that matters here
    — simulations bit-for-bit reproducible, because the ``(time, seq)``
    total order is preserved exactly (same floats, same tie-break).

Cancellation is cooperative in both implementations: cancelled handles
stay queued and are skipped when popped (the engine checks the
``cancelled`` flag), so ``cancel()`` itself stays O(1).

The compiled engine (:mod:`repro.sim._engine`, built from
``src/repro/sim/_engine.c`` when the optional extension is available)
implements the same calendar-queue structure in C; these pure-Python
classes are the always-available fallback and the behavioural
specification it is tested against.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle

__all__ = [
    "CalendarEventQueue",
    "HeapEventQueue",
    "EVENT_QUEUES",
    "make_event_queue",
]


class HeapEventQueue:
    """Reference binary-heap event queue (``(time, seq, handle)`` tuples).

    ``seq`` is unique, so tuple comparison never falls through to the
    handle and every sift compares in C.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, "EventHandle"]] = []

    def __len__(self) -> int:
        """Number of queued handles, including cancelled ones."""
        return len(self._heap)

    def push(self, handle: "EventHandle") -> None:
        """Queue ``handle`` (reads its ``time`` and ``seq``)."""
        heappush(self._heap, (handle.time, handle.seq, handle))

    def pop_due(self, bound: float) -> "EventHandle | None":
        """Next live handle with ``time <= bound``, or None.

        Cancelled handles encountered on the way are dropped.
        """
        heap = self._heap
        while heap:
            when, _, head = heap[0]
            if head.cancelled:
                heappop(heap)
                continue
            if when > bound:
                return None
            heappop(heap)
            return head
        return None

    def pop_batch_due(self, bound: float) -> "list[EventHandle] | None":
        """All handles sharing the earliest due timestamp, or None.

        The returned batch is in ``seq`` order and may contain cancelled
        handles (the engine skips them while firing); it always contains
        at least one live handle. The heap implementation pops the
        same-time run off the heap one tuple at a time — the calendar
        implementation returns the whole bucket with a single heap pop,
        which is the point of the structure.
        """
        first = self.pop_due(bound)
        if first is None:
            return None
        batch = [first]
        heap = self._heap
        when = first.time
        while heap and heap[0][0] == when:
            batch.append(heappop(heap)[2])
        return batch

    def requeue(self, handles: "list[EventHandle]", time: float) -> None:
        """Put back the unfired tail of a popped batch (exception path).

        The engine calls this when a callback raises mid-batch, so that
        the exception leaves the queue exactly as if the remaining
        events had never been popped.
        """
        for handle in handles:
            heappush(self._heap, (handle.time, handle.seq, handle))


class CalendarEventQueue:
    """Calendar queue with one bucket per exact timestamp.

    See the module docstring for the design; the one invariant worth
    restating is that a *drained-but-unfinished* bucket (``_head``) can
    only exist for a timestamp the engine has already advanced to, so
    no later ``push`` can ever need to land before it — the engine
    rejects scheduling into the past.
    """

    __slots__ = ("_buckets", "_times", "_head", "_head_pos", "_head_time")

    def __init__(self) -> None:
        #: raw float time -> list of handles in seq (i.e. FIFO) order
        self._buckets: dict[float, list["EventHandle"]] = {}
        #: binary heap of the distinct times present in ``_buckets``
        self._times: list[float] = []
        #: bucket currently being drained one handle at a time (only
        #: ``pop_due`` leaves one behind; batch pops consume it whole)
        self._head: list["EventHandle"] | None = None
        self._head_pos = 0
        self._head_time = math.inf

    def __len__(self) -> int:
        """Number of queued handles, including cancelled ones."""
        n = sum(len(b) for b in self._buckets.values())
        if self._head is not None:
            n += len(self._head) - self._head_pos
        return n

    def push(self, handle: "EventHandle") -> None:
        """Queue ``handle`` (reads its ``time`` and ``seq``)."""
        when = handle.time
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [handle]
            heappush(self._times, when)
        else:
            bucket.append(handle)

    def _next_batch(self, bound: float) -> "list[EventHandle] | None":
        """Pop the earliest bucket with ``time <= bound`` (raw, may be
        entirely cancelled); None when nothing is due."""
        head = self._head
        if head is not None:
            # The partially drained bucket is always earliest (see class
            # docstring), but may still be beyond the caller's bound.
            if self._head_time > bound:
                return None
            batch = head[self._head_pos:]
            self._head = None
            return batch
        times = self._times
        if not times or times[0] > bound:
            return None
        when = heappop(times)
        return self._buckets.pop(when)

    def pop_due(self, bound: float) -> "EventHandle | None":
        """Next live handle with ``time <= bound``, or None."""
        while True:
            head = self._head
            if head is None:
                if not self._times or self._times[0] > bound:
                    return None
                when = heappop(self._times)
                head = self._buckets.pop(when)
                self._head = head
                self._head_pos = 0
                self._head_time = when
            pos = self._head_pos
            size = len(head)
            while pos < size:
                handle = head[pos]
                pos += 1
                if not handle.cancelled:
                    if pos == size:
                        self._head = None
                    else:
                        self._head_pos = pos
                    return handle
            self._head = None

    def pop_batch_due(self, bound: float) -> "list[EventHandle] | None":
        """All handles sharing the earliest due timestamp, or None.

        Skips buckets that turn out to be entirely cancelled; the
        returned batch may still *contain* cancelled handles (interior
        ones are the engine's job to skip while firing in seq order).
        """
        while True:
            batch = self._next_batch(bound)
            if batch is None:
                return None
            for handle in batch:
                if not handle.cancelled:
                    return batch

    def requeue(self, handles: "list[EventHandle]", time: float) -> None:
        """Put back the unfired tail of a popped batch (exception path).

        Only the engine's fire loop calls this, and only for the batch
        it just popped — at which point ``_head`` is empty and ``time``
        is necessarily the earliest pending timestamp, so the tail can
        simply become the new head bucket.
        """
        if not handles:
            return
        assert self._head is None, "requeue with a partially drained bucket"
        self._head = handles
        self._head_pos = 0
        self._head_time = time


#: registry of pure-Python event-queue implementations by name
EVENT_QUEUES = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
}


def make_event_queue(kind: str):
    """Instantiate an event queue by registry name."""
    try:
        factory = EVENT_QUEUES[kind]
    except KeyError:
        known = ", ".join(sorted(EVENT_QUEUES))
        raise ValueError(f"unknown event queue {kind!r}; known: {known}") from None
    return factory()
