"""Segment and event vocabulary for the discrete-event SMP simulator.

A *segment* is the unit of behaviour a task asks the machine to perform
next: run on a CPU for some duration, block (sleep / wait for I/O) for
some duration, or exit. Workload behaviours (``repro.workloads``) are
segment generators; the machine (``repro.sim.machine``) consumes them.

Trace event records (``ScheduleRecord`` etc.) are lightweight tuples
collected by ``repro.sim.tracing`` for post-hoc analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Segment",
    "Run",
    "Block",
    "Exit",
    "RUN_FOREVER",
]

#: Duration used for compute-bound tasks that never finish on their own.
RUN_FOREVER = math.inf


class Segment:
    """Base class for behaviour segments. See module docstring."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Run(Segment):
    """Execute on a CPU for ``duration`` seconds of *CPU time*.

    The task may be preempted and resumed arbitrarily many times while
    completing the segment; ``duration`` counts only time actually spent
    running. ``math.inf`` (or :data:`RUN_FOREVER`) never completes.
    """

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"Run duration must be >= 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class Block(Segment):
    """Leave the run queue for ``duration`` seconds of *wall-clock* time.

    Models sleeping, waiting for I/O completion, pipe reads, etc. The
    clock starts when the preceding :class:`Run` segment completes.
    """

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"Block duration must be >= 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class Exit(Segment):
    """Terminate the task."""
