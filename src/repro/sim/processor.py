"""Per-CPU state for the simulated SMP machine.

Each :class:`Processor` tracks the task it is currently running, the
bookkeeping needed to charge CPU service correctly across partial
quanta, and an epoch counter (``seq``) that invalidates in-flight
quantum-expiry / segment-end events when the CPU is re-dispatched —
the simulator's equivalent of deleting a kernel timer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle

__all__ = ["Processor"]


class Processor:
    """One CPU of the symmetric multiprocessor."""

    __slots__ = (
        "cpu_id",
        "task",
        "seq",
        "dispatch_time",
        "charged_until",
        "quantum_end",
        "busy_time",
        "overhead_time",
        "quantum_handle",
        "segment_handle",
    )

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        #: task currently running, or None when idle
        self.task: Task | None = None
        #: dispatch epoch; bumping it invalidates pending timer events
        self.seq: int = 0
        #: time at which the current task began receiving service
        self.dispatch_time: float = 0.0
        #: service has been charged to the current task up to this time
        self.charged_until: float = 0.0
        #: absolute time at which the current quantum expires
        self.quantum_end: float = 0.0
        #: cumulative time this CPU spent running tasks
        self.busy_time: float = 0.0
        #: cumulative dead time (context switch + scheduling overhead)
        self.overhead_time: float = 0.0
        self.quantum_handle: "EventHandle | None" = None
        self.segment_handle: "EventHandle | None" = None

    @property
    def idle(self) -> bool:
        """True when no task is dispatched on this CPU."""
        return self.task is None

    def cancel_timers(self) -> None:
        """Cancel any pending quantum-expiry / segment-end events."""
        if self.quantum_handle is not None:
            self.quantum_handle.cancel()
            self.quantum_handle = None
        if self.segment_handle is not None:
            self.segment_handle.cancel()
            self.segment_handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.task.name if self.task else "idle"
        return f"<Processor {self.cpu_id}: {running}>"
