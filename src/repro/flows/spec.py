"""Declarative flow/link model: plain, picklable spec dataclasses.

The packet domain mirrors the scenario layer's design: everything here
is data. A :class:`FlowSpec` names *how* to draw a flow's packets
(arrival kind, size distribution by demand-registry name, per-flow
seed); :func:`repro.flows.scenario.flow_scenario` materializes the
draws into a :class:`PacketFlow` behaviour spec — explicit enqueue
times and sizes — which the runner turns into a
:class:`~repro.flows.transmit.FlowTransmitter`. A :class:`LinkSpec`
maps onto the machine: ``channels`` parallel transmitters (the CPUs)
each moving ``bytes_per_sec``, so one packet's transmission time is
``size / bytes_per_sec`` — exactly a variable-cost Run segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from typing import Any, Mapping

from repro.flows.resources import check_resource_vector

__all__ = ["LinkSpec", "FlowSpec", "PacketFlow"]


@dataclass(frozen=True)
class LinkSpec:
    """A shared link: ``channels`` transmitters of ``bytes_per_sec`` each.

    The default is a 10 Mbit/s (1.25 MB/s) single-channel link — small
    enough that a few hundred MTU packets make an interesting run.
    """

    bytes_per_sec: float = 1.25e6
    channels: int = 1

    def __post_init__(self) -> None:
        if not isfinite(self.bytes_per_sec) or self.bytes_per_sec <= 0:
            raise ValueError(
                f"bytes_per_sec must be finite and > 0, "
                f"got {self.bytes_per_sec}"
            )
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")

    @property
    def total_bytes_per_sec(self) -> float:
        """Aggregate capacity across all channels."""
        return self.bytes_per_sec * self.channels


@dataclass(frozen=True)
class FlowSpec:
    """One flow: weight, packet count, and how to draw its packets.

    ``arrival`` names a registered arrival process generating enqueue
    times (offset by ``at``); ``None`` means *backlogged* — every
    packet is queued at ``at`` and the flow contends for the link for
    the whole run. ``size`` names a registered demand distribution
    drawing packet sizes in **bytes** (the registry is unit-agnostic;
    ``constant-mtu`` / ``packet-trace`` exist for exactly this use).
    ``resources`` optionally declares a per-second demand vector over
    :data:`~repro.flows.resources.RESOURCES` for the multi-resource
    fairness metrics. All randomness flows through
    ``random.Random(f"{seed}:{name}")``, so flows are independently
    reproducible no matter how the population around them changes.
    """

    name: str
    weight: float = 1.0
    packets: int = 100
    at: float = 0.0
    arrival: str | None = None
    arrival_params: Mapping[str, Any] = field(default_factory=dict)
    size: str = "constant-mtu"
    size_params: Mapping[str, Any] = field(default_factory=dict)
    resources: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("flow name must be non-empty")
        if self.weight <= 0:
            raise ValueError(
                f"flow {self.name!r} weight must be > 0, got {self.weight}"
            )
        if self.packets < 1:
            raise ValueError(
                f"flow {self.name!r} packets must be >= 1, "
                f"got {self.packets}"
            )
        if self.at < 0:
            raise ValueError(f"flow {self.name!r} at must be >= 0, got {self.at}")
        object.__setattr__(self, "arrival_params", dict(self.arrival_params))
        object.__setattr__(self, "size_params", dict(self.size_params))
        object.__setattr__(
            self,
            "resources",
            check_resource_vector(
                self.resources, where=f"flow {self.name!r} resources"
            ),
        )


@dataclass(frozen=True)
class PacketFlow:
    """Materialized packets of one flow: the behaviour spec.

    ``arrivals[i]`` is packet *i*'s enqueue time (nondecreasing),
    ``sizes[i]`` its size in bytes, and ``bytes_per_sec`` the channel
    rate — so packet *i* costs ``sizes[i] / bytes_per_sec`` seconds of
    link time. Joins the scenario layer's ``BehaviorSpec`` family via
    the runner's behaviour dispatch; being explicit data (no RNG, no
    registry lookups at run time) it pickles to sweep workers and
    round-trips through config files.
    """

    arrivals: tuple[float, ...]
    sizes: tuple[float, ...]
    bytes_per_sec: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        object.__setattr__(self, "sizes", tuple(self.sizes))
        if not self.arrivals:
            raise ValueError("a PacketFlow needs at least one packet")
        if len(self.arrivals) != len(self.sizes):
            raise ValueError(
                f"arrivals/sizes length mismatch: "
                f"{len(self.arrivals)} vs {len(self.sizes)}"
            )
        previous = 0.0
        for i, t in enumerate(self.arrivals):
            if not isfinite(t) or t < 0:
                raise ValueError(f"arrivals[{i}] must be finite and >= 0, got {t}")
            if t < previous:
                raise ValueError(
                    f"arrivals[{i}]={t} precedes arrivals[{i - 1}]="
                    f"{previous}; enqueue times must be nondecreasing"
                )
            previous = t
        for i, size in enumerate(self.sizes):
            if not isfinite(size) or size <= 0:
                raise ValueError(f"sizes[{i}] must be finite and > 0, got {size}")
        if not isfinite(self.bytes_per_sec) or self.bytes_per_sec <= 0:
            raise ValueError(
                f"bytes_per_sec must be finite and > 0, "
                f"got {self.bytes_per_sec}"
            )

    @property
    def total_bytes(self) -> float:
        """Sum of all packet sizes."""
        return sum(self.sizes)
