"""The packet-transmission behaviour driving the simulator.

A :class:`FlowTransmitter` walks a
:class:`~repro.flows.spec.PacketFlow`'s packet list head-of-line:

- a queued packet becomes one ``Run(size / bytes_per_sec)`` segment —
  its transmission time on one link channel (a variable-cost quantum,
  preemptible mid-packet exactly like any CPU burst);
- an empty queue becomes a ``Block`` until the next packet's enqueue
  time;
- the last packet's completion is ``Exit``.

Because consecutive segments whose boundaries fall inside the current
quantum continue without a scheduler decision, the machine's quantum
bounds how many back-to-back packets one flow may send before the
scheduler re-picks — the flow-domain analogue of a scheduling
granularity, which :func:`~repro.flows.scenario.flow_scenario` defaults
to one mean packet time.

Per-packet delay (completion minus enqueue — queueing plus
transmission), bytes and packet counts accumulate on the transmitter,
where the flow metrics of :mod:`repro.flows.metrics` read them off the
finished result.
"""

from __future__ import annotations

from repro.sim.events import Block, Exit, Run, Segment
from repro.workloads.base import Behavior

__all__ = ["FlowTransmitter"]

#: slack under which "the next packet is already here" (guards float
#: drift when a Block lands an epsilon short of the enqueue time)
_EPS = 1e-12


class FlowTransmitter(Behavior):
    """Head-of-line transmitter over one flow's materialized packets."""

    def __init__(self, spec) -> None:
        self.arrivals: tuple[float, ...] = tuple(spec.arrivals)
        self.sizes: tuple[float, ...] = tuple(spec.sizes)
        self.bytes_per_sec: float = spec.bytes_per_sec
        #: next packet to send (== packets_sent while not mid-packet)
        self.index = 0
        self.packets_sent = 0
        self.bytes_sent = 0.0
        #: completion - enqueue per sent packet, in send order
        self.delays: list[float] = []
        self._sending = False

    def start(self, now: float) -> Segment:
        return self._advance(now)

    def next_segment(self, now: float) -> Segment:
        return self._advance(now)

    def _advance(self, now: float) -> Segment:
        if self._sending:
            # The Run for packet `index` just completed: book it.
            i = self.index
            self.delays.append(now - self.arrivals[i])
            self.bytes_sent += self.sizes[i]
            self.packets_sent += 1
            self.index = i + 1
            self._sending = False
        if self.index >= len(self.sizes):
            return Exit()
        enqueue = self.arrivals[self.index]
        if enqueue - now > _EPS:
            return Block(enqueue - now)
        self._sending = True
        return Run(self.sizes[self.index] / self.bytes_per_sec)

    def throughput(self, duration: float) -> float:
        """Average goodput in bytes/sec over ``duration``."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        return self.bytes_sent / duration
