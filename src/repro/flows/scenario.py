"""The "flows" scenario preset family: packet flows over a shared link.

SFS's surplus idea came from network fair queueing; this family closes
the loop by driving the *same* tagged schedulers over a packet domain.
:func:`flow_scenario` mirrors :func:`~repro.scenario.server.server_scenario`:
seeded, pure data, picklable to sweep workers, runnable under any
registered scheduler — but the population is flows contending for a
:class:`~repro.flows.spec.LinkSpec` rather than jobs for CPUs:

- each **flow** is one task whose behaviour transmits packets
  head-of-line; a packet of ``size`` bytes costs
  ``size / bytes_per_sec`` seconds of channel time, so fair queueing
  falls out of the existing proportional-share machinery with zero
  scheduler changes;
- **packet sizes** come from the demand registry (``constant-mtu``,
  ``packet-trace``, or any stochastic kind) and **enqueue times** from
  the arrival registry (or a backlogged queue when ``arrival=None``);
- **weights** are drawn from named flow classes (default: 70% "bulk"
  weight 1, 20% "video" weight 4, 10% "voice" weight 10), and flows
  named ``<class>-<index>`` so per-class aggregates fall out of the
  usual prefix metrics;
- ``resource_profiles`` optionally attaches per-class demand vectors
  over {cpu, memory, bandwidth} for the multi-resource fairness
  metrics (:mod:`repro.flows.resources`).

Per-flow draws are seeded ``random.Random(f"{seed}:{name}")`` in the
fixed order *all enqueue times, then all sizes*, so one flow's packet
stream is bit-identical no matter which other flows share the link.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Sequence

from repro.flows.spec import FlowSpec, LinkSpec, PacketFlow
from repro.scenario.arrivals import make_arrival
from repro.scenario.demands import make_demand
from repro.scenario.families import register_family
from repro.scenario.population import check_weight_classes
from repro.scenario.spec import Scenario, TaskSpec

__all__ = [
    "FLOW_WEIGHT_CLASSES",
    "FLOW_RESOURCE_PROFILES",
    "materialize_flows",
    "flow_scenario",
]

#: default flow mix: (class name, weight, probability)
FLOW_WEIGHT_CLASSES: tuple[tuple[str, float, float], ...] = (
    ("bulk", 1.0, 0.70),
    ("video", 4.0, 0.20),
    ("voice", 10.0, 0.10),
)

#: per-class demand vectors for multi-resource studies: bulk transfers
#: are bandwidth/memory heavy, video decodes burn CPU, voice sips all
FLOW_RESOURCE_PROFILES: Mapping[str, Mapping[str, float]] = {
    "bulk": {"cpu": 0.2, "memory": 0.4, "bandwidth": 1.0},
    "video": {"cpu": 0.6, "memory": 0.2, "bandwidth": 0.8},
    "voice": {"cpu": 0.1, "memory": 0.05, "bandwidth": 0.3},
}


def materialize_flows(
    flows: Sequence[FlowSpec], link: LinkSpec
) -> tuple[list[TaskSpec], float, float]:
    """Draw every flow's packets; return (tasks, mean size, horizon).

    ``mean size`` is the realized mean packet size in bytes (the
    natural quantum is one mean packet time); ``horizon`` is the time
    by which an ideally-shared link clears the offered work —
    ``max(last enqueue, total bytes / aggregate capacity)`` — which a
    drain factor stretches into a run duration.
    """
    if not flows:
        raise ValueError("need at least one flow")
    tasks: list[TaskSpec] = []
    total_bytes = 0.0
    total_packets = 0
    last_enqueue = 0.0
    for flow in flows:
        rng = random.Random(f"{flow.seed}:{flow.name}")
        if flow.arrival is None:
            times = [flow.at] * flow.packets
        else:
            times_gen = make_arrival(
                flow.arrival, **flow.arrival_params
            ).times(rng)
            times = []
            for i in range(flow.packets):
                try:
                    times.append(flow.at + next(times_gen))
                except StopIteration:
                    raise ValueError(
                        f"flow {flow.name!r}: arrival process produced "
                        f"only {i} of {flow.packets} enqueue times"
                    ) from None
        size_dist = make_demand(flow.size, **flow.size_params)
        sizes = []
        for i in range(flow.packets):
            size = size_dist.sample(rng)
            if size <= 0:
                raise ValueError(
                    f"flow {flow.name!r}: size distribution produced "
                    f"non-positive packet size {size}"
                )
            sizes.append(size)
        behavior = PacketFlow(
            arrivals=tuple(times),
            sizes=tuple(sizes),
            bytes_per_sec=link.bytes_per_sec,
        )
        tasks.append(
            TaskSpec(
                name=flow.name,
                weight=flow.weight,
                behavior=behavior,
                at=times[0],
                resources=dict(flow.resources),
            )
        )
        total_bytes += behavior.total_bytes
        total_packets += flow.packets
        last_enqueue = max(last_enqueue, times[-1])
    mean_size = total_bytes / total_packets
    horizon = max(last_enqueue, total_bytes / link.total_bytes_per_sec)
    return tasks, mean_size, horizon


@register_family("flows", "packet flows sharing a link (fair-queueing domain)")
def flow_scenario(
    n_flows: int = 8,
    flows: Sequence[FlowSpec] | None = None,
    link: LinkSpec = LinkSpec(),
    scheduler: str = "sfs",
    seed: int = 42,
    load: float = 0.9,
    packets_per_flow: int = 200,
    mean_packet_bytes: float = 1500.0,
    size: str = "constant-mtu",
    size_params: Mapping[str, Any] | None = None,
    weight_classes: tuple[tuple[str, float, float], ...] = FLOW_WEIGHT_CLASSES,
    resource_profiles: Mapping[str, Mapping[str, float]] | None = None,
    quantum: float | None = None,
    cost_model: str = "zero",
    drain_factor: float = 1.5,
    sample_service: bool = True,
    service_sample_interval: float = 0.0,
    record_events: bool = False,
    metrics: tuple[str, ...] = (),
    scheduler_params: Mapping[str, Any] | None = None,
) -> Scenario:
    """Build one flow-family scenario (pure data, deterministic).

    Parameters
    ----------
    flows:
        Explicit :class:`~repro.flows.spec.FlowSpec` declarations.
        When ``None`` a population of ``n_flows`` is generated: class
        and weight drawn from ``weight_classes`` by a
        ``random.Random(seed)``, Poisson packet enqueues at the
        per-flow rate ``load * capacity / (n_flows * mean_packet_bytes)``
        so ``load`` is the offered utilization of the link.
    size:
        Demand-registry kind drawing packet sizes in bytes. For
        ``constant-mtu`` the ``mtu`` defaults to ``mean_packet_bytes``.
    resource_profiles:
        Optional per-class demand vectors (e.g.
        :data:`FLOW_RESOURCE_PROFILES`) attached to generated flows
        for the multi-resource metrics.
    quantum:
        Scheduling granularity on the link; defaults to one realized
        mean packet transmission time, i.e. the scheduler re-picks
        roughly every packet.
    drain_factor:
        The run lasts ``drain_factor`` times the offered-work horizon
        (last enqueue or ideal clearing time, whichever is later).
    """
    if load <= 0:
        raise ValueError(f"load must be > 0, got {load}")
    if mean_packet_bytes <= 0:
        raise ValueError(f"mean_packet_bytes must be > 0, got {mean_packet_bytes}")
    if drain_factor < 1:
        raise ValueError(f"drain_factor must be >= 1, got {drain_factor}")
    if flows is None:
        if n_flows < 1:
            raise ValueError(f"n_flows must be >= 1, got {n_flows}")
        if packets_per_flow < 1:
            raise ValueError(
                f"packets_per_flow must be >= 1, got {packets_per_flow}"
            )
        check_weight_classes(weight_classes)
        names = [name for name, _, _ in weight_classes]
        probs = [prob for _, _, prob in weight_classes]
        weights = {name: weight for name, weight, _ in weight_classes}
        profiles = dict(resource_profiles or {})
        params = dict(size_params or {})
        if size == "constant-mtu":
            params.setdefault("mtu", mean_packet_bytes)
        rate = load * link.total_bytes_per_sec / (n_flows * mean_packet_bytes)
        rng = random.Random(seed)
        flows = tuple(
            FlowSpec(
                name=f"{cls}-{i:03d}",
                weight=weights[cls],
                packets=packets_per_flow,
                arrival="poisson",
                arrival_params={"rate": rate},
                size=size,
                size_params=params,
                resources=profiles.get(cls, {}),
                seed=seed,
            )
            for i, cls in enumerate(
                rng.choices(names, weights=probs, k=n_flows)
            )
        )
    else:
        flows = tuple(flows)
    tasks, mean_size, horizon = materialize_flows(flows, link)
    return Scenario(
        name=f"flows-n{len(flows)}-{scheduler}-seed{seed}",
        scheduler=scheduler,
        scheduler_params=dict(scheduler_params or {}),
        cpus=link.channels,
        quantum=(
            quantum if quantum is not None else mean_size / link.bytes_per_sec
        ),
        cost_model=cost_model,
        duration=drain_factor * horizon,
        tasks=tuple(tasks),
        metrics=metrics,
        sample_service=sample_service,
        service_sample_interval=service_sample_interval,
        record_events=record_events,
    )
