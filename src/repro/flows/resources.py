"""Per-resource accounting over Machine service totals.

The multi-resource extension of the flow domain: a task (or flow) may
declare a *demand vector* over :data:`RESOURCES` — how much of each
resource it consumes per second of service it receives. Because the
vector is constant over a task's lifetime, per-resource consumption is
derived *exactly* from the machine's scalar service totals::

    A_i^r = task.service * vector_i[r]

so no new accounting runs inside the simulator hot path; this module
is pure post-run arithmetic on a finished
:class:`~repro.scenario.result.SimulationResult`. That is the spirit
of Bonald & Comte's balanced-fairness model and of DRF: fairness is
judged per resource (and on each task's *dominant* resource), while
the scheduler itself keeps allocating the one schedulable resource.

Shares are fractions of the total *delivered* amount of each resource
(only resources have no standalone capacity besides the link), so they
sum to 1 per resource over the tasks that declared a vector.
"""

from __future__ import annotations

from math import isfinite
from typing import Any, Mapping

from repro.analysis.fairness import jains_index

__all__ = [
    "RESOURCES",
    "check_resource_vector",
    "resource_vectors",
    "resource_service",
    "resource_shares",
    "dominant_shares",
    "resource_jains",
]

#: the resource axes a demand vector may name
RESOURCES: tuple[str, ...] = ("cpu", "memory", "bandwidth")


def check_resource_vector(
    vector: Mapping[str, float], where: str = "resources"
) -> dict[str, float]:
    """Validate one demand vector; return it as a plain dict."""
    out: dict[str, float] = {}
    for key in vector:
        if key not in RESOURCES:
            known = ", ".join(RESOURCES)
            raise ValueError(f"{where}: unknown resource {key!r}; known: {known}")
        value = vector[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"{where}.{key}: demand must be a number, got {value!r}"
            )
        value = float(value)
        if not isfinite(value) or value < 0:
            raise ValueError(
                f"{where}.{key}: demand must be finite and >= 0, "
                f"got {value}"
            )
        out[key] = value
    return out


def resource_vectors(scenario: Any) -> dict[str, dict[str, float]]:
    """Declared demand vectors by task name (tasks without one omitted)."""
    return {
        spec.name: dict(spec.resources)
        for spec in scenario.tasks
        if spec.resources
    }


def resource_service(result: Any) -> dict[str, dict[str, float]]:
    """Delivered amount per resource: ``{resource: {task: A_i^r}}``.

    ``A_i^r = service_i * vector_i[r]`` over tasks that declared a
    vector; resources nobody demanded are omitted, so the result is
    ``{}`` for single-resource populations.
    """
    out: dict[str, dict[str, float]] = {}
    for name, vector in sorted(resource_vectors(result.scenario).items()):
        service = result.tasks[name].service
        for resource in RESOURCES:
            if resource in vector:
                out.setdefault(resource, {})[name] = service * vector[resource]
    return out


def resource_shares(result: Any) -> dict[str, dict[str, float]]:
    """Fraction of each resource's delivered total, per task.

    Flat and picklable; all zeros for a resource nobody consumed yet
    (e.g. a run stopped before any declared task was dispatched).
    """
    out: dict[str, dict[str, float]] = {}
    for resource, per_task in sorted(resource_service(result).items()):
        total = sum(per_task.values())
        out[resource] = {
            name: (amount / total if total > 0 else 0.0)
            for name, amount in sorted(per_task.items())
        }
    return out


def dominant_shares(result: Any) -> dict[str, float]:
    """DRF-style dominant share per task: its max share over resources."""
    out: dict[str, float] = {}
    for _, per_task in sorted(resource_shares(result).items()):
        for name, share in per_task.items():
            out[name] = max(out.get(name, 0.0), share)
    return dict(sorted(out.items()))


def resource_jains(result: Any) -> dict[str, float]:
    """Jain's fairness index per resource over ``A_i^r / w_i``.

    1.0 means every declaring task got resource ``r`` exactly in
    proportion to its weight; 1/n means one task got everything.
    """
    out: dict[str, float] = {}
    for resource, per_task in sorted(resource_service(result).items()):
        out[resource] = jains_index(
            [
                amount / result.tasks[name].weight
                for name, amount in sorted(per_task.items())
            ]
        )
    return out
