"""Packet/flow fair-queueing domain over the scenario pipeline.

A whole workload domain with zero scheduler changes: flows contend for
a shared link exactly the way tasks contend for CPUs. The pieces —

- :mod:`repro.flows.spec` — :class:`LinkSpec` / :class:`FlowSpec`
  declarations and the materialized :class:`PacketFlow` behaviour spec;
- :mod:`repro.flows.transmit` — the :class:`FlowTransmitter` behaviour
  mapping packets onto variable-cost Run segments;
- :mod:`repro.flows.scenario` — :func:`flow_scenario`, the seeded
  preset family mirroring ``server_scenario``;
- :mod:`repro.flows.resources` — the multi-resource ({cpu, memory,
  bandwidth}) accounting layer and DRF-style fairness metrics;
- :mod:`repro.flows.metrics` — per-flow throughput and packet-delay
  percentiles.

Importing this package registers the ``flows`` scenario family; the
flow metrics are always listed in
:data:`repro.scenario.result.METRICS` (their extractors import from
here lazily).
"""

from repro.flows.metrics import flow_throughput, packet_delay_percentiles
from repro.flows.resources import (
    RESOURCES,
    dominant_shares,
    resource_jains,
    resource_service,
    resource_shares,
    resource_vectors,
)
from repro.flows.scenario import (
    FLOW_RESOURCE_PROFILES,
    FLOW_WEIGHT_CLASSES,
    flow_scenario,
    materialize_flows,
)
from repro.flows.spec import FlowSpec, LinkSpec, PacketFlow
from repro.flows.transmit import FlowTransmitter

__all__ = [
    "FLOW_RESOURCE_PROFILES",
    "FLOW_WEIGHT_CLASSES",
    "FlowSpec",
    "FlowTransmitter",
    "LinkSpec",
    "PacketFlow",
    "RESOURCES",
    "dominant_shares",
    "flow_scenario",
    "flow_throughput",
    "materialize_flows",
    "packet_delay_percentiles",
    "resource_jains",
    "resource_service",
    "resource_shares",
    "resource_vectors",
]
