"""Canned flow metrics: throughput and packet-delay percentiles.

Flat, picklable extractors over a finished
:class:`~repro.scenario.result.SimulationResult`, registered in
:data:`repro.scenario.result.METRICS` (as ``flow_throughput`` and
``packet_delay_p50/p95/p99``) beside the multi-resource metrics of
:mod:`repro.flows.resources`. Tasks whose behaviour is not a
:class:`~repro.flows.transmit.FlowTransmitter` are skipped, so the
metrics are safe to request on mixed populations and come back empty
on a pure CPU workload.
"""

from __future__ import annotations

from typing import Any

from repro.scenario.result import percentile

__all__ = ["flow_throughput", "packet_delay_percentiles"]


def _transmitters(result: Any) -> list[tuple[str, Any]]:
    """(name, transmitter) for every flow task, in name order."""
    out = []
    for name in sorted(result.tasks):
        behavior = result.tasks[name].behavior
        if hasattr(behavior, "bytes_sent") and hasattr(behavior, "delays"):
            out.append((name, behavior))
    return out


def flow_throughput(result: Any) -> dict[str, float]:
    """Goodput in bytes/sec per flow over the run window, + ``"all"``.

    Empty when the population has no flows; the ``"all"`` key is the
    aggregate link goodput.
    """
    duration = result.duration
    out: dict[str, float] = {}
    total = 0.0
    for name, transmitter in _transmitters(result):
        out[name] = transmitter.bytes_sent / duration
        total += transmitter.bytes_sent
    if out:
        out["all"] = total / duration
    return out


def packet_delay_percentiles(result: Any, q: float) -> dict[str, float]:
    """q-th percentile of per-packet delay, per flow + ``"all"``.

    Delay is enqueue-to-completion (queueing plus transmission). Flows
    that sent no packet inside the window are omitted; the dict is
    empty for non-flow populations.
    """
    out: dict[str, float] = {}
    everything: list[float] = []
    for name, transmitter in _transmitters(result):
        if transmitter.delays:
            out[name] = percentile(transmitter.delays, q)
            everything.extend(transmitter.delays)
    if everything:
        out["all"] = percentile(everything, q)
    return out
