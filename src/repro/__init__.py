"""repro — Surplus Fair Scheduling (OSDI 2000) reproduction.

A complete Python implementation of Chandra, Adler, Goyal & Shenoy,
"Surplus Fair Scheduling: A Proportional-Share CPU Scheduling Algorithm
for Symmetric Multiprocessors" (OSDI 2000), built on a discrete-event
SMP simulator:

- :mod:`repro.core` — weight readjustment, GMS, SFS (+ heuristic,
  fixed-point arithmetic);
- :mod:`repro.sim` — the simulated multiprocessor machine;
- :mod:`repro.schedulers` — SFQ, Linux 2.2 time-sharing, stride, WFQ,
  BVT, lottery, round-robin baselines;
- :mod:`repro.workloads` — Inf, dhrystone, Interact, mpeg_play, gcc,
  disksim, short jobs, lmbench lat_ctx;
- :mod:`repro.analysis` — fairness metrics, ASCII charts, CSV output;
- :mod:`repro.experiments` — one module per paper figure/table.
"""

from repro.core import (
    FixedTags,
    FloatTags,
    FluidGMS,
    HeuristicSurplusFairScheduler,
    SurplusFairScheduler,
    is_feasible,
    readjust,
)
from repro.sim import Machine, Task

__version__ = "1.0.0"

__all__ = [
    "FixedTags",
    "FloatTags",
    "FluidGMS",
    "HeuristicSurplusFairScheduler",
    "Machine",
    "SurplusFairScheduler",
    "Task",
    "is_feasible",
    "readjust",
    "__version__",
]
