"""Saturation study: the server family driven through its knee.

The capacity-planning literature this repository targets (Gunther's
UNIX resource managers, the Solaris SRM evaluation) characterizes a
proportional-share scheduler by what happens as offered load crosses
1.0: does the scheduler's own decision cost collapse throughput, and
what do per-class response-time percentiles look like while the
backlog grows? The paper's own Fig. 3 asks the complementary question
for the §3.2 heuristic — how much decision *accuracy* does the bounded
scan give up at a given ``k``?

``run()`` answers both on the high-N server workload:

- an N x load x policy grid (``sfs``, ``sfs-heuristic``, ``sfq`` by
  default) executed through a pluggable
  :class:`~repro.exec.ExecutionBackend` (process pool by default; pass
  ``backend="chunked"`` plus a ``checkpoint`` path to make big grids
  resumable), each cell reporting simulator events/sec and the
  ``sojourn_p50/p95/p99`` canned metrics that workers ship back —
  now paired with the **censored-tail** ``sojourn_p95_censored``,
  where jobs still in the system contribute their age as a lower
  bound, so overload rows can't be flattered by completion truncation;
- a Fig. 3-style accuracy-vs-``k`` curve for the heuristic, measured
  on the *overloaded* server cell (``track_accuracy=True``), where the
  runnable set — and hence the exact scan the heuristic avoids — is
  largest.

``render()`` charts events/sec vs load and p95 sojourn vs load per
policy (completed-only and censored side by side), plus the accuracy
curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.scenario import run_cells, run_scenario, server_scenario

__all__ = ["SaturationResult", "run", "render"]

CPUS = 4
#: canned metrics each grid cell reports back from the worker pool
CELL_METRICS = (
    "events_fired",
    "completed",
    "in_system",
    "sojourn_p50",
    "sojourn_p95",
    "sojourn_p99",
    "sojourn_p95_censored",
)


@dataclass
class SaturationResult:
    """Grid measurements keyed by (policy, load), plus the k-curve."""

    n_tasks: int
    cpus: int
    loads: list[float]
    policies: list[str]
    scan_depths: list[int]
    #: simulator throughput per cell (from worker wall clock)
    events_per_sec: dict[tuple[str, float], float] = field(default_factory=dict)
    #: jobs completed within the cell's horizon (sojourn denominator)
    completed: dict[tuple[str, float], int] = field(default_factory=dict)
    #: jobs censored by the horizon (arrived, never completed)
    in_system: dict[tuple[str, float], int] = field(default_factory=dict)
    sojourn_p50: dict[tuple[str, float], float] = field(default_factory=dict)
    sojourn_p95: dict[tuple[str, float], float] = field(default_factory=dict)
    sojourn_p99: dict[tuple[str, float], float] = field(default_factory=dict)
    #: censored-tail p95: in-system job ages count as lower bounds
    sojourn_p95_censored: dict[tuple[str, float], float] = field(
        default_factory=dict
    )
    #: p95 sojourn per weight class: (policy, load, class) -> seconds
    sojourn_p95_by_class: dict[tuple[str, float, str], float] = field(
        default_factory=dict
    )
    #: heuristic scan depth k -> decision accuracy on the overload cell
    accuracy: dict[int, float] = field(default_factory=dict)
    accuracy_n: int = 0
    accuracy_load: float = 0.0
    #: invariant-audit summaries per cell (when run with audit=True)
    audit: dict[tuple[str, float], dict] = field(default_factory=dict)

    @property
    def audit_violations(self) -> int:
        """Total invariant violations across all audited cells."""
        return sum(s["total_violations"] for s in self.audit.values())


def run(
    n_tasks: int = 600,
    loads: tuple[float, ...] = (0.6, 0.9, 1.2, 1.6),
    policies: tuple[str, ...] = ("sfs", "sfs-heuristic", "sfq"),
    scan_depths: tuple[int, ...] = (1, 2, 5, 10, 20, 40),
    accuracy_n: int = 400,
    seed: int = 42,
    workers: int | None = None,
    backend=None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
    audit: bool = False,
) -> SaturationResult:
    """Run the saturation grid and the accuracy-vs-k curve.

    ``audit=True`` runs every grid cell under the online invariant
    auditor (see :mod:`repro.analysis.audit`); per-cell summaries land
    in ``result.audit`` and travel back from workers as the canned
    ``"audit"`` metric.

    ``workers``/``backend``/``checkpoint``/``chunk_size`` are
    forwarded to :func:`repro.scenario.run_cells` (``workers=0``
    forces serial, ``backend`` names any execution backend,
    ``checkpoint`` makes the grid resumable). The accuracy cells
    always run serially
    in-process: they need the finished scheduler object
    (``track_accuracy`` counters), which summaries shipped back from a
    worker cannot carry.
    """
    result = SaturationResult(
        n_tasks=n_tasks,
        cpus=CPUS,
        loads=list(loads),
        policies=list(policies),
        scan_depths=list(scan_depths),
        accuracy_n=accuracy_n,
        accuracy_load=max(loads),
    )
    grid = [(policy, load) for policy in policies for load in loads]
    scenarios = [
        server_scenario(
            n_tasks,
            cpus=CPUS,
            scheduler=policy,
            load=load,
            seed=seed,
            cost_model="lmbench",
            service_sample_interval=0.5,
        )
        for policy, load in grid
    ]
    metrics = CELL_METRICS + ("audit",) if audit else CELL_METRICS
    if audit:
        scenarios = [s.with_(audit=True) for s in scenarios]
    cells = run_cells(
        scenarios,
        metrics,
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        chunk_size=chunk_size,
    )
    for (policy, load), cell in zip(grid, cells):
        events = cell.metrics["events_fired"]
        wall = cell.wall_s
        result.events_per_sec[(policy, load)] = (
            events / wall if wall > 0 else float("inf")
        )
        result.completed[(policy, load)] = cell.metrics["completed"]
        result.in_system[(policy, load)] = cell.metrics["in_system"]
        for name, into in (
            ("sojourn_p50", result.sojourn_p50),
            ("sojourn_p95", result.sojourn_p95),
            ("sojourn_p99", result.sojourn_p99),
            ("sojourn_p95_censored", result.sojourn_p95_censored),
        ):
            into[(policy, load)] = cell.metrics[name].get("all", float("nan"))
        for cls, value in cell.metrics["sojourn_p95"].items():
            if cls != "all":
                result.sojourn_p95_by_class[(policy, load, cls)] = value
        if audit:
            result.audit[(policy, load)] = cell.metrics["audit"]
    for k in scan_depths:
        scenario = server_scenario(
            accuracy_n,
            cpus=CPUS,
            scheduler="sfs-heuristic",
            load=result.accuracy_load,
            seed=seed,
            cost_model="lmbench",  # same configuration as the grid cells
            scheduler_params={"scan_depth": k, "track_accuracy": True},
        )
        cell = run_scenario(scenario)
        result.accuracy[k] = cell.scheduler.accuracy
    return result


def render(result: SaturationResult) -> str:
    lines = [
        "Saturation study — server family "
        f"(N={result.n_tasks}, {result.cpus} CPUs, lmbench cost model)",
        "",
        f"{'policy':16s} {'load':>5s} {'events/s':>10s} {'done':>5s} "
        f"{'insys':>5s} {'p50':>8s} {'p95':>8s} {'p99':>8s} {'p95cens':>8s}",
    ]
    for policy in result.policies:
        for load in result.loads:
            key = (policy, load)
            lines.append(
                f"{policy:16s} {load:5.2f} "
                f"{result.events_per_sec[key]:10,.0f} "
                f"{result.completed[key]:5d} "
                f"{result.in_system[key]:5d} "
                f"{result.sojourn_p50[key]:8.3f} "
                f"{result.sojourn_p95[key]:8.3f} "
                f"{result.sojourn_p99[key]:8.3f} "
                f"{result.sojourn_p95_censored[key]:8.3f}"
            )
    lines.append("")
    lines.append(
        line_chart(
            {
                policy: [
                    (load, result.events_per_sec[(policy, load)] / 1000.0)
                    for load in result.loads
                ]
                for policy in result.policies
            },
            title="simulator throughput vs offered load (k events/sec)",
            xlabel="offered load (utilization)",
            ylabel="k events/s",
        )
    )
    lines.append("")
    lines.append(
        line_chart(
            {
                policy: [
                    (load, result.sojourn_p95[(policy, load)])
                    for load in result.loads
                ]
                for policy in result.policies
            },
            title="p95 sojourn vs offered load (completed jobs, seconds)",
            xlabel="offered load (utilization)",
            ylabel="p95 sojourn (s)",
        )
    )
    lines.append("")
    lines.append(
        line_chart(
            {
                policy: [
                    (load, result.sojourn_p95_censored[(policy, load)])
                    for load in result.loads
                ]
                for policy in result.policies
            },
            title="censored-tail p95 sojourn vs offered load "
            "(in-system ages as lower bounds, seconds)",
            xlabel="offered load (utilization)",
            ylabel="p95 sojourn >= (s)",
        )
    )
    lines.append("")
    acc_row = "  ".join(
        f"k={k}:{100.0 * result.accuracy[k]:5.1f}%" for k in result.scan_depths
    )
    lines.append(
        "heuristic accuracy on the overloaded server cell "
        f"(N={result.accuracy_n}, load={result.accuracy_load:g}): {acc_row}"
    )
    lines.append("")
    lines.append(
        line_chart(
            {
                "accuracy": [
                    (k, 100.0 * result.accuracy[k])
                    for k in result.scan_depths
                ]
            },
            title="heuristic accuracy vs scan depth k (server workload)",
            xlabel="threads examined per queue (k)",
            ylabel="accuracy %",
        )
    )
    if result.audit:
        lines.append("")
        total = result.audit_violations
        status = "OK" if total == 0 else f"{total} VIOLATION(S)"
        lines.append(
            f"invariant audit across {len(result.audit)} cells: {status}"
        )
        for key in sorted(result.audit):
            summary = result.audit[key]
            if summary["total_violations"]:
                policy, load = key
                lines.append(
                    f"  {policy} load={load:g}: {summary['counts']}"
                )
    return "\n".join(lines)
