"""Table 1 — lmbench scheduling overheads: time sharing vs SFS.

The paper's Table 1 rows:

==============================  ============  =======
Test                            Time sharing  SFS
==============================  ============  =======
syscall overhead                0.7 us        0.7 us
fork()                          400 us        400 us
exec()                          2 ms          2 ms
Context switch (2 proc/0KB)     1 us          4 us
Context switch (8 proc/16KB)    15 us         19 us
Context switch (16 proc/64KB)   178 us        179 us
==============================  ============  =======

The first three rows do not involve the CPU scheduler; they are
reported as calibrated constants (identical under both schedulers, as
the paper found). The context-switch rows are *measured* by running the
lmbench ``lat_ctx`` token ring on the simulated machine with the
testbed cost model: the scheduler-dependent part comes from each
policy's decision-cost model and the size-dependent part from the cache
restoration model fitted to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_seconds, render_table
from repro.experiments.common import resolve_scheduler
from repro.scenario import LatCtxRing, Scenario, run_scenario
from repro.sim.costs import (
    EXEC_OVERHEAD,
    FORK_OVERHEAD,
    SYSCALL_OVERHEAD,
)

__all__ = [
    "Table1Result",
    "run",
    "render",
    "scenario",
    "measure_ctx",
    "CTX_CONFIGS",
    "PAPER_VALUES",
]

#: (processes, footprint KB) rows of Table 1
CTX_CONFIGS = ((2, 0.0), (8, 16.0), (16, 64.0))

#: the paper's reported values, seconds: row -> (time sharing, SFS)
PAPER_VALUES = {
    "syscall overhead": (0.7e-6, 0.7e-6),
    "fork()": (400e-6, 400e-6),
    "exec()": (2e-3, 2e-3),
    "Context switch (2 proc/0KB)": (1e-6, 4e-6),
    "Context switch (8 proc/16KB)": (15e-6, 19e-6),
    "Context switch (16 proc/64KB)": (178e-6, 179e-6),
}

#: experiment name -> registry name (restricted to the paper's pair)
_SCHEDULERS = {"sfs": "sfs", "linux-ts": "linux-ts"}


@dataclass
class Table1Result:
    """Measured values: row label -> (time sharing, SFS), seconds."""

    rows: dict[str, tuple[float, float]] = field(default_factory=dict)


def scenario(
    scheduler_name: str, nprocs: int, kb: float, passes: int = 2000
) -> Scenario:
    """One lat_ctx measurement as a declarative scenario.

    The ring terminates itself after ``passes`` token passes, so the
    scenario has no fixed duration; the lmbench cost model charges
    context-switch + decision costs exactly as the real benchmark
    observes them.
    """
    registry_name = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"lat_ctx-{scheduler_name}-{nprocs}proc-{int(kb)}KB",
        scheduler=registry_name,
        cost_model="lmbench",
        duration=None,
        sample_service=False,
        record_events=False,
        drivers=(
            LatCtxRing(
                name="lat_ctx", nprocs=nprocs, passes=passes, footprint_kb=kb
            ),
        ),
    )


def measure_ctx(scheduler_name: str, nprocs: int, kb: float,
                passes: int = 2000) -> float:
    """Run lat_ctx once and return the per-switch latency in seconds."""
    result = run_scenario(scenario(scheduler_name, nprocs, kb, passes))
    return result.driver("lat_ctx").switch_time()


def run(passes: int = 2000) -> Table1Result:
    """Regenerate every row of Table 1."""
    result = Table1Result()
    result.rows["syscall overhead"] = (SYSCALL_OVERHEAD, SYSCALL_OVERHEAD)
    result.rows["fork()"] = (FORK_OVERHEAD, FORK_OVERHEAD)
    result.rows["exec()"] = (EXEC_OVERHEAD, EXEC_OVERHEAD)
    for nprocs, kb in CTX_CONFIGS:
        label = f"Context switch ({nprocs} proc/{int(kb)}KB)"
        ts = measure_ctx("linux-ts", nprocs, kb, passes)
        sfs = measure_ctx("sfs", nprocs, kb, passes)
        result.rows[label] = (ts, sfs)
    return result


def render(result: Table1Result) -> str:
    rows = []
    for label, (ts, sfs) in result.rows.items():
        paper = PAPER_VALUES.get(label)
        paper_str = (
            f"{format_seconds(paper[0])} / {format_seconds(paper[1])}"
            if paper
            else "-"
        )
        rows.append(
            (label, format_seconds(ts), format_seconds(sfs), paper_str)
        )
    return render_table(
        ["Test", "Time sharing", "SFS", "paper (TS / SFS)"],
        rows,
        title="Table 1 — scheduling overheads reported by lmbench",
    )
