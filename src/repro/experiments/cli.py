"""Command-line entry point: ``sfs-experiment <id> [options]``.

Regenerates any of the paper's figures/tables as text (and optionally
CSV). ``sfs-experiment all`` runs the whole evaluation section.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig1_infeasible,
    fig3_heuristic,
    fig4_readjustment,
    fig5_shortjobs,
    fig6a_proportional,
    fig6b_isolation,
    fig6c_interactive,
    fig7_ctxswitch,
    sensitivity,
    table1_lmbench,
)

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> str:
    parts = [
        fig1_infeasible.render(fig1_infeasible.run("sfq")),
        "",
        fig1_infeasible.render(fig1_infeasible.run("sfq-readjust")),
    ]
    return "\n".join(parts)


def _fig3() -> str:
    return fig3_heuristic.render(fig3_heuristic.run())


def _fig4() -> str:
    parts = [
        fig4_readjustment.render(fig4_readjustment.run("sfq")),
        "",
        fig4_readjustment.render(fig4_readjustment.run("sfq-readjust")),
    ]
    return "\n".join(parts)


def _fig5() -> str:
    parts = [
        fig5_shortjobs.render(fig5_shortjobs.run("sfq")),
        "",
        fig5_shortjobs.render(fig5_shortjobs.run("sfs")),
    ]
    return "\n".join(parts)


def _fig6a() -> str:
    return fig6a_proportional.render(fig6a_proportional.run())


def _fig6b() -> str:
    return fig6b_isolation.render(fig6b_isolation.run())


def _fig6c() -> str:
    return fig6c_interactive.render(fig6c_interactive.run())


def _table1() -> str:
    return table1_lmbench.render(table1_lmbench.run())


def _fig7() -> str:
    return fig7_ctxswitch.render(fig7_ctxswitch.run())


def _sensitivity() -> str:
    return sensitivity.render(sensitivity.run())


EXPERIMENTS = {
    "fig1": _fig1,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6a": _fig6a,
    "fig6b": _fig6b,
    "fig6c": _fig6c,
    "table1": _table1,
    "fig7": _fig7,
    "sensitivity": _sensitivity,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sfs-experiment",
        description="Regenerate figures/tables from the SFS paper (OSDI 2000).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} " + "=" * (70 - len(name)))
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
