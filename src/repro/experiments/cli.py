"""Command-line entry point: ``sfs-experiment <subcommand>``.

Subcommands:

- ``sfs-experiment run <id|all> [--csv DIR] [--json DIR]`` —
  regenerate any of the paper's figures/tables as text and optionally
  export the underlying data as CSV (via :mod:`repro.analysis.csvout`)
  or JSON;
- ``sfs-experiment run <file.yaml>`` / ``sweep <file.yaml>`` — load a
  schema-validated scenario (or sweep) config file
  (see :mod:`repro.scenario.io`) and run it through any execution
  backend; ``examples/scenarios/`` holds a library of them;
- ``sfs-experiment sweep --scheduler sfs sfq --cpus 1 2 4 ...`` — run a
  cartesian policy x machine grid of the canonical proportional-share
  workload across a process pool, with deterministic output ordering;
- ``sfs-experiment server --n 1000 --scheduler sfs sfq ...`` — run the
  high-N server scenario family (Poisson arrivals, heavy-tailed
  demands, mixed weight classes) and report per-class shares plus
  simulator throughput (events/sec);
- ``sfs-experiment worker`` — serve the line-JSON execution-backend
  worker protocol over stdio (what ``SSHBackend`` sshes into);
- ``sfs-experiment list`` — show experiment ids, registered scheduler
  names, canned sweep metrics, and the registered arrival processes
  and demand distributions config files can name.

The grid-running subcommands (``sweep``, ``server``, and the
backend-aware experiments under ``run``) accept ``--backend
{serial,process,chunked,ssh}`` plus ``--checkpoint PATH`` — chunked
runs stream results with bounded memory and survive kill-and-resume
via the JSONL checkpoint; ``--host`` shards cells across
``sfs-experiment worker`` processes on other machines.

For backwards compatibility, ``sfs-experiment <id|all>`` (without the
``run`` subcommand) still works.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Callable

from repro.analysis.csvout import (
    JsonArrayStream,
    RowStream,
    write_rows,
    write_series,
)
from repro.exec import BACKENDS, make_backend, serve_worker
from repro.experiments import (
    fig1_infeasible,
    fig3_heuristic,
    fig4_readjustment,
    fig5_shortjobs,
    fig6a_proportional,
    fig6b_isolation,
    fig6c_interactive,
    fig7_ctxswitch,
    flows_study,
    saturation,
    sensitivity,
    table1_lmbench,
)
from repro.scenario import (
    FAMILIES,
    SERVER_WEIGHT_CLASSES,
    Scenario,
    Sweep,
    arrival_names,
    demand_names,
    group,
    run_cells,
    server_scenario,
    stream_cells,
    sweep_scenarios,
    task,
)
from repro.scenario.io import CONFIG_SUFFIXES, ConfigError, load_config
from repro.schedulers.registry import scheduler_names
from repro.sim.costs import COST_MODELS

__all__ = ["main", "EXPERIMENTS"]

#: experiment id -> ((variant label, run thunk, render fn), ...)
#: A variant is one ``run()`` invocation; multi-variant experiments
#: (fig1, fig4, fig5) render each variant separated by a blank line.
_VARIANTS: dict[str, tuple[tuple[str, Callable[[], Any], Callable[[Any], str]], ...]] = {
    "fig1": (
        ("sfq", lambda: fig1_infeasible.run("sfq"), fig1_infeasible.render),
        ("sfq-readjust", lambda: fig1_infeasible.run("sfq-readjust"),
         fig1_infeasible.render),
    ),
    "fig3": (("", fig3_heuristic.run, fig3_heuristic.render),),
    "fig4": (
        ("sfq", lambda: fig4_readjustment.run("sfq"), fig4_readjustment.render),
        ("sfq-readjust", lambda: fig4_readjustment.run("sfq-readjust"),
         fig4_readjustment.render),
    ),
    "fig5": (
        ("sfq", lambda: fig5_shortjobs.run("sfq"), fig5_shortjobs.render),
        ("sfs", lambda: fig5_shortjobs.run("sfs"), fig5_shortjobs.render),
    ),
    "fig6a": (("", fig6a_proportional.run, fig6a_proportional.render),),
    "fig6b": (("", fig6b_isolation.run, fig6b_isolation.render),),
    "fig6c": (("", fig6c_interactive.run, fig6c_interactive.render),),
    "table1": (("", table1_lmbench.run, table1_lmbench.render),),
    "fig7": (("", fig7_ctxswitch.run, fig7_ctxswitch.render),),
    "sensitivity": (("", sensitivity.run, sensitivity.render),),
    "saturation": (("", saturation.run, saturation.render),),
    "flows": (("", flows_study.run, flows_study.render),),
}

_DESCRIPTIONS = {
    "fig1": "Fig. 1 / Example 1: infeasible weights starve SFQ",
    "fig3": "Fig. 3: §3.2 heuristic accuracy vs scan depth",
    "fig4": "Fig. 4: SFQ with/without weight readjustment",
    "fig5": "Fig. 5: short jobs problem, SFQ vs SFS",
    "fig6a": "Fig. 6(a): proportionate dhrystone allocation",
    "fig6b": "Fig. 6(b): MPEG isolation from compilations",
    "fig6c": "Fig. 6(c): interactive response under batch load",
    "table1": "Table 1: lmbench scheduling overheads",
    "fig7": "Fig. 7: context-switch overhead vs process count",
    "sensitivity": "Fig. 5 sensitivity: T_short share vs timer jitter",
    "saturation": "saturation study: events/sec + sojourn percentiles "
    "vs load, heuristic accuracy vs k (server family)",
    "flows": "flows study: packet fair queueing on a link, SFS vs WFQ "
    "vs SFQ + multi-resource fairness (flow family)",
}


#: experiments whose run() accepts workers/backend/checkpoint kwargs
_EXEC_AWARE = frozenset({"saturation", "sensitivity", "flows"})


def _run_experiment(
    name: str, exec_opts: dict[str, Any] | None = None
) -> tuple[str, list[tuple[str, Any]]]:
    """Run every variant of one experiment: (rendered text, results).

    ``exec_opts`` (workers/backend/checkpoint) is forwarded to the
    experiments that run grids through an execution backend; the
    paper-figure experiments ignore it.
    """
    rendered: list[str] = []
    results: list[tuple[str, Any]] = []
    kwargs = exec_opts if (exec_opts and name in _EXEC_AWARE) else {}
    for label, run_thunk, render_fn in _VARIANTS[name]:
        result = run_thunk(**kwargs)
        rendered.append(render_fn(result))
        results.append((label, result))
    return "\n\n".join(rendered), results


def _make_text_runner(name: str) -> Callable[[], str]:
    def runner() -> str:
        return _run_experiment(name)[0]

    return runner


#: id -> zero-argument callable returning the rendered text (kept as the
#: stable programmatic surface; the subcommands build on _VARIANTS)
EXPERIMENTS: dict[str, Callable[[], str]] = {
    name: _make_text_runner(name) for name in _VARIANTS
}


# ----------------------------------------------------------------------
# result export (CSV via analysis.csvout, JSON via a generic walk)
# ----------------------------------------------------------------------

def _key_str(key: Any) -> str:
    """Flatten tuple keys like (100, 20) to '100:20' for CSV/JSON."""
    if isinstance(key, tuple):
        return ":".join(str(k) for k in key)
    return str(key)


def _is_series(value: Any) -> bool:
    """A non-empty list of (x, y) pairs?"""
    return (
        isinstance(value, list)
        and len(value) > 0
        and all(
            isinstance(p, tuple) and len(p) == 2
            and all(isinstance(v, (int, float)) for v in p)
            for p in value
        )
    )


def _export_csv(outdir: str, name: str, label: str, result: Any) -> list[str]:
    """Write one result dataclass as CSV files; returns paths written."""
    base = name if not label else f"{name}_{label}"
    written: list[str] = []
    summary: list[tuple[str, Any]] = []
    for fld in dataclasses.fields(result):
        value = getattr(result, fld.name)
        if isinstance(value, dict) and value and all(
            _is_series(v) for v in value.values()
        ):
            written.append(
                write_series(
                    os.path.join(outdir, f"{base}_{fld.name}.csv"),
                    {_key_str(k): v for k, v in value.items()},
                )
            )
        elif isinstance(value, dict) and value and all(
            isinstance(v, (int, float)) for v in value.values()
        ):
            written.append(
                write_rows(
                    os.path.join(outdir, f"{base}_{fld.name}.csv"),
                    [fld.name, "value"],
                    [(_key_str(k), v) for k, v in value.items()],
                )
            )
        elif isinstance(value, dict) and value and all(
            isinstance(v, (tuple, list))
            and all(isinstance(x, (int, float)) for x in v)
            for v in value.values()
        ):
            width = max(len(v) for v in value.values())
            written.append(
                write_rows(
                    os.path.join(outdir, f"{base}_{fld.name}.csv"),
                    [fld.name] + [f"value{i + 1}" for i in range(width)],
                    [(_key_str(k), *v) for k, v in value.items()],
                )
            )
        elif isinstance(value, (int, float, str)):
            summary.append((fld.name, value))
        elif isinstance(value, (tuple, list)) and all(
            isinstance(v, (int, float, str)) for v in value
        ):
            summary.append((fld.name, _key_str(tuple(value))))
    if summary:
        written.append(
            write_rows(
                os.path.join(outdir, f"{base}_summary.csv"),
                ["field", "value"],
                summary,
            )
        )
    return written


_SKIP = object()  # sentinel: value has no JSON representation


def _jsonable(value: Any) -> Any:
    """Best-effort JSON conversion; unserializable leaves become _SKIP."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        items = [_jsonable(v) for v in value]
        return _SKIP if any(v is _SKIP for v in items) else items
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            converted = _jsonable(v)
            if converted is not _SKIP:
                out[_key_str(k)] = converted
        return out
    return _SKIP


def _export_json(outdir: str, name: str, label: str, result: Any) -> str:
    """Write one result dataclass as a JSON file; returns the path."""
    base = name if not label else f"{name}_{label}"
    payload = {}
    for fld in dataclasses.fields(result):
        converted = _jsonable(getattr(result, fld.name))
        if converted is not _SKIP:
            payload[fld.name] = converted
    os.makedirs(outdir, exist_ok=True)
    path = os.path.join(outdir, f"{base}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def _cli_backend(args: argparse.Namespace, checkpoint: str | None):
    """Build the ExecutionBackend an invocation asked for (or None).

    ``--backend`` names are resolved through
    :func:`repro.exec.make_backend` so ``--chunk-size``/``--host``
    apply; ``--checkpoint`` without ``--backend`` selects the default
    checkpointing chunked runner inside ``run_cells`` (which also
    honors ``--chunk-size`` via the forwarded kwarg).
    """
    if args.backend is None:
        return None
    return make_backend(
        args.backend,
        workers=args.workers,
        checkpoint=checkpoint,
        chunk_size=args.chunk_size,
        hosts=tuple(args.host or ()),
    )


def _exec_opts(
    args: argparse.Namespace, checkpoint: str | None
) -> dict[str, Any]:
    """The workers/backend/checkpoint kwargs a subcommand requested."""
    opts: dict[str, Any] = {}
    if args.workers is not None:
        opts["workers"] = args.workers
    backend = _cli_backend(args, checkpoint)
    if backend is not None:
        opts["backend"] = backend
    elif checkpoint is not None:
        opts["checkpoint"] = checkpoint
        opts["chunk_size"] = args.chunk_size
    if getattr(args, "audit", False):
        opts["audit"] = True
    return opts


def _cmd_run(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    exported: list[str] = []
    for name in names:
        # Each backend-aware experiment runs a *different* grid, so a
        # shared checkpoint file would be rejected by the fingerprint
        # check; with several experiments in one invocation the path
        # gains a per-experiment suffix.
        checkpoint = args.checkpoint
        if checkpoint is not None and len(names) > 1:
            checkpoint = f"{checkpoint}.{name}"
        exec_opts = _exec_opts(args, checkpoint) if name in _EXEC_AWARE else {}
        print(f"=== {name} " + "=" * (70 - len(name)))
        text, results = _run_experiment(name, exec_opts)
        print(text)
        print()
        for label, result in results:
            if args.csv:
                exported.extend(_export_csv(args.csv, name, label, result))
            if args.json:
                exported.append(_export_json(args.json, name, label, result))
    for path in exported:
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _sweep_base(args: argparse.Namespace) -> Scenario:
    """The canonical sweep workload: 1 heavy + N-1 unit-weight Inf tasks."""
    if args.tasks < 1:
        raise ValueError(f"--tasks must be >= 1, got {args.tasks}")
    return Scenario(
        name="cli-sweep",
        scheduler="sfs",
        duration=args.duration,
        tasks=(
            task("heavy", args.heavy_weight),
            *group(args.tasks - 1, 1, "bg"),
        ),
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    metrics = ("shares", "jains", "context_switches")
    if args.audit:
        metrics += ("audit",)
    sweep = Sweep(
        base=_sweep_base(args),
        schedulers=tuple(args.scheduler),
        cpus=tuple(args.cpus),
        quanta=tuple(args.quantum),
        metrics=metrics,
    )
    scenarios = sweep_scenarios(sweep)
    if args.audit:
        scenarios = [s.with_(audit=True) for s in scenarios]
    header = f"{'scheduler':16s} {'cpus':>4s} {'quantum':>8s} {'jains':>7s} {'heavy':>7s} {'ctx':>8s}"
    print(f"sweep: {len(scenarios)} cells "
          f"({len(args.scheduler) or 1} schedulers x {len(args.cpus) or 1} cpus"
          f" x {len(args.quantum) or 1} quanta)")
    print(header)
    headers = ["scheduler", "cpus", "quantum", "jains", "heavy_share",
               "context_switches"]
    if args.audit:
        headers.append("audit_violations")
    # Streaming export: each cell's row is printed and flushed to
    # CSV/JSON the moment the backend delivers it (grid order), so a
    # 10^4-cell grid never materialises in memory and a killed run
    # keeps every finished row.
    csv_stream = json_stream = None
    if args.csv:
        csv_stream = RowStream(os.path.join(args.csv, "sweep.csv"), headers)
    if args.json:
        json_stream = JsonArrayStream(os.path.join(args.json, "sweep.json"))
    try:
        cells = stream_cells(
            scenarios,
            metrics,
            workers=args.workers,
            backend=_cli_backend(args, args.checkpoint),
            checkpoint=args.checkpoint,
            chunk_size=args.chunk_size,
        )
        audit_violations = 0
        audit_cells = 0
        for cell in cells:
            shares = cell.metrics["shares"]
            row = (
                cell.scheduler,
                cell.cpus,
                cell.quantum,
                cell.metrics["jains"],
                shares["heavy"],
                cell.metrics["context_switches"],
            )
            line = (
                f"{row[0]:16s} {row[1]:4d} {row[2]:8g} {row[3]:7.4f} "
                f"{row[4]:7.4f} {row[5]:8d}"
            )
            if args.audit:
                summary = cell.metrics["audit"]
                audit_cells += 1
                audit_violations += summary["total_violations"]
                row += (summary["total_violations"],)
                if summary["total_violations"]:
                    line += f"  AUDIT {summary['counts']}"
            print(line)
            if csv_stream is not None:
                csv_stream.append(row)
            if json_stream is not None:
                json_stream.append(dict(zip(headers, row)))
    finally:
        for stream in (csv_stream, json_stream):
            if stream is not None:
                stream.close()
                print(f"wrote {stream.path}", file=sys.stderr)
    if args.audit:
        status = (
            "OK" if audit_violations == 0
            else f"{audit_violations} VIOLATION(S)"
        )
        print(f"invariant audit across {audit_cells} cells: {status}")
        if audit_violations:
            return 1
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    class_names = [name for name, _, _ in SERVER_WEIGHT_CLASSES]
    header = (
        f"{'scheduler':16s} {'n':>6s} {'events':>8s} {'wall_s':>7s} "
        f"{'events/s':>9s} {'ctx':>8s}"
        + "".join(f" {name:>7s}" for name in class_names)
    )
    print(
        f"server family: n={args.n} cpus={args.cpus} load={args.load:g} "
        f"seed={args.seed} cost={args.cost_model} "
        f"quantum={args.quantum:g}"
    )
    print(header)
    scenarios = [
        server_scenario(
            args.n,
            cpus=args.cpus,
            scheduler=scheduler,
            seed=args.seed,
            load=args.load,
            quantum=args.quantum,
            cost_model=args.cost_model,
            service_sample_interval=args.sample_interval,
        )
        for scheduler in args.scheduler
    ]
    metrics = ("events_fired", "context_switches", "class_shares")
    if args.audit:
        metrics += ("audit",)
        scenarios = [s.with_(audit=True) for s in scenarios]
    # One cell per scheduler, run through the selected execution
    # backend; class shares travel back as a canned metric, so cells
    # can execute in worker processes (or on other hosts).
    cells = run_cells(
        scenarios,
        metrics,
        workers=args.workers,
        backend=_cli_backend(args, args.checkpoint),
        checkpoint=args.checkpoint,
        chunk_size=args.chunk_size,
    )
    rows = []
    audit_violations = 0
    for scheduler, cell in zip(args.scheduler, cells):
        events = cell.metrics["events_fired"]
        wall = cell.wall_s
        shares = cell.metrics["class_shares"]
        row = {
            "scheduler": scheduler,
            "n": args.n,
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_sec": round(events / wall) if wall > 0 else 0,
            "context_switches": cell.metrics["context_switches"],
            **{f"share_{name}": shares[name] for name in class_names},
        }
        line = (
            f"{scheduler:16s} {args.n:6d} {events:8d} {wall:7.2f} "
            f"{row['events_per_sec']:9,d} {row['context_switches']:8d}"
            + "".join(f" {shares[name]:7.4f}" for name in class_names)
        )
        if args.audit:
            summary = cell.metrics["audit"]
            audit_violations += summary["total_violations"]
            row["audit_violations"] = summary["total_violations"]
            row["audit_examples"] = "; ".join(summary["examples"])
            if summary["total_violations"]:
                line += f"  AUDIT {summary['counts']}"
        rows.append(row)
        print(line)
    headers = list(rows[0])
    if args.csv:
        path = write_rows(
            os.path.join(args.csv, "server.csv"),
            headers,
            [tuple(row[h] for h in headers) for row in rows],
        )
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "server.json")
        with open(path, "w") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")
        print(f"wrote {path}", file=sys.stderr)
    if args.audit:
        status = (
            "OK" if audit_violations == 0
            else f"{audit_violations} VIOLATION(S)"
        )
        print(f"invariant audit across {len(rows)} cells: {status}")
        if audit_violations:
            return 1
    return 0


# ----------------------------------------------------------------------
# config-file mode: `run <file.yaml>` / `sweep <file.yaml>`
# ----------------------------------------------------------------------


def _is_config_path(arg: str) -> bool:
    """Does a positional argument name a scenario config file?"""
    return arg.lower().endswith(CONFIG_SUFFIXES)


def _render_metric(value: Any) -> str:
    """One metric value as a terminal-friendly line fragment."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, dict) and value and all(
        isinstance(v, (int, float)) for v in value.values()
    ):
        if len(value) <= 12:
            return "  ".join(f"{k}={v:.4g}" for k, v in value.items())
        values = sorted(value.values())
        mean = sum(values) / len(values)
        return (
            f"{len(value)} entries  min={values[0]:.4g} "
            f"mean={mean:.4g} max={values[-1]:.4g}"
        )
    return json.dumps(value, default=str, sort_keys=True)


def _load_config_or_die(command: str, path: str) -> Any:
    try:
        return load_config(path)
    except OSError as exc:
        print(f"sfs-experiment {command}: error: {exc}", file=sys.stderr)
        return None
    except ConfigError as exc:
        print(
            f"sfs-experiment {command}: error: {path}: {exc}",
            file=sys.stderr,
        )
        return None


def _cmd_run_config(args: argparse.Namespace) -> int:
    loaded = _load_config_or_die("run", args.config)
    if loaded is None:
        return 2
    if isinstance(loaded, Sweep):
        print(
            f"sfs-experiment run: error: {args.config} is a sweep config; "
            "use `sfs-experiment sweep` to run it",
            file=sys.stderr,
        )
        return 2
    scenario = loaded
    if args.duration is not None:
        scenario = scenario.with_(duration=args.duration)
    metrics = tuple(args.metrics) if args.metrics else scenario.metrics
    if not metrics:
        metrics = ("shares", "jains")
    if args.audit:
        scenario = scenario.with_(audit=True)
        if "audit" not in metrics:
            metrics += ("audit",)
    # The scenario travels through the selected execution backend as
    # one cell (the same pickle path sweeps use), so configs work
    # unchanged under serial, pooled, chunked and ssh execution.
    scenario = scenario.with_(metrics=())
    cell = run_cells(
        [scenario],
        metrics,
        workers=args.workers,
        backend=_cli_backend(args, args.checkpoint),
        checkpoint=args.checkpoint,
        chunk_size=args.chunk_size,
    )[0]
    duration = (
        f"{scenario.duration:g}" if scenario.duration is not None else "auto"
    )
    print(
        f"scenario: {scenario.name}  (scheduler={scenario.scheduler} "
        f"cpus={scenario.cpus} quantum={scenario.quantum:g} "
        f"duration={duration} tasks={len(scenario.tasks)} "
        f"wall={cell.wall_s:.2f}s)"
    )
    for name in metrics:
        print(f"  {name:24s} {_render_metric(cell.metrics[name])}")
    if args.csv:
        rows = []
        for name in metrics:
            value = cell.metrics[name]
            if isinstance(value, dict):
                rows.extend(
                    (name, _key_str(k), v)
                    for k, v in value.items()
                    if isinstance(v, (int, float))
                )
            elif isinstance(value, (int, float)):
                rows.append((name, "", value))
        path = write_rows(
            os.path.join(args.csv, f"{scenario.name}_metrics.csv"),
            ["metric", "key", "value"],
            rows,
        )
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, f"{scenario.name}.json")
        payload = {
            "scenario": scenario.name,
            "scheduler": scenario.scheduler,
            "cpus": scenario.cpus,
            "quantum": scenario.quantum,
            "duration": scenario.duration,
            "tasks": len(scenario.tasks),
            "wall_s": cell.wall_s,
            "metrics": _jsonable(cell.metrics),
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}", file=sys.stderr)
    if args.audit:
        summary = cell.metrics["audit"]
        total = summary["total_violations"]
        status = "OK" if total == 0 else f"{total} VIOLATION(S)"
        print(f"invariant audit: {status}")
        if total:
            return 1
    return 0


def _cmd_sweep_config(args: argparse.Namespace) -> int:
    loaded = _load_config_or_die("sweep", args.config)
    if loaded is None:
        return 2
    if isinstance(loaded, Scenario):
        print(
            f"sfs-experiment sweep: error: {args.config} is a scenario "
            "config; add `kind: sweep` and a `base:` block, or run it "
            "with `sfs-experiment run`",
            file=sys.stderr,
        )
        return 2
    sweep = loaded
    metrics = sweep.metrics
    scenarios = sweep_scenarios(sweep)
    if args.audit:
        if "audit" not in metrics:
            metrics += ("audit",)
        scenarios = [s.with_(audit=True) for s in scenarios]
    print(
        f"sweep: {sweep.base.name}: {len(scenarios)} cells "
        f"({len(sweep.schedulers) or 1} schedulers x "
        f"{len(sweep.cpus) or 1} cpus x {len(sweep.quanta) or 1} quanta)"
    )
    csv_stream = json_stream = None
    headers: list[str] | None = None
    audit_violations = 0
    try:
        for cell in stream_cells(
            scenarios,
            metrics,
            workers=args.workers,
            backend=_cli_backend(args, args.checkpoint),
            checkpoint=args.checkpoint,
            chunk_size=args.chunk_size,
        ):
            if headers is None:
                # Scalar metrics become table/CSV columns; structured
                # ones (shares, audit) stay in the JSON export.
                scalar = [
                    m
                    for m in metrics
                    if isinstance(cell.metrics[m], (int, float))
                ]
                headers = ["scheduler", "cpus", "quantum", *scalar]
                print(
                    f"{'scheduler':16s} {'cpus':>4s} {'quantum':>8s}"
                    + "".join(f" {m:>18s}" for m in scalar)
                )
                if args.csv:
                    csv_stream = RowStream(
                        os.path.join(args.csv, "sweep.csv"), headers
                    )
                if args.json:
                    json_stream = JsonArrayStream(
                        os.path.join(args.json, "sweep.json")
                    )
            row = (
                cell.scheduler,
                cell.cpus,
                cell.quantum,
                *(cell.metrics[m] for m in headers[3:]),
            )
            line = f"{row[0]:16s} {row[1]:4d} {row[2]:8g}" + "".join(
                f" {v:18.6g}" for v in row[3:]
            )
            if args.audit:
                summary = cell.metrics["audit"]
                audit_violations += summary["total_violations"]
                if summary["total_violations"]:
                    line += f"  AUDIT {summary['counts']}"
            print(line)
            if csv_stream is not None:
                csv_stream.append(row)
            if json_stream is not None:
                payload = dict(zip(headers[:3], row[:3]))
                payload["metrics"] = _jsonable(cell.metrics)
                json_stream.append(payload)
    finally:
        for stream in (csv_stream, json_stream):
            if stream is not None:
                stream.close()
                print(f"wrote {stream.path}", file=sys.stderr)
    if args.audit:
        status = (
            "OK" if audit_violations == 0
            else f"{audit_violations} VIOLATION(S)"
        )
        print(f"invariant audit across {len(scenarios)} cells: {status}")
        if audit_violations:
            return 1
    return 0


def _build_config_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"sfs-experiment {command}",
        description=f"{command} a scenario config file "
        "(YAML/JSON; see `sfs-experiment list` for registered names)",
    )
    parser.add_argument(
        "config", help="config file (.yaml/.yml/.json)"
    )
    if command == "run":
        parser.add_argument(
            "--duration", type=float, default=None, metavar="SEC",
            help="override the config's simulated duration",
        )
        parser.add_argument(
            "--metrics", nargs="+", default=None, metavar="NAME",
            help="override the config's metrics (see `list`)",
        )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="export metrics as CSV into DIR",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="export metrics as JSON into DIR",
    )
    _add_exec_args(parser)
    return parser


def _registry_sections() -> list[tuple[str, list[tuple[str, str]]]]:
    """Every user-nameable registry as (heading, [(name, summary)]).

    One consolidated, registry-driven walk: a scheduler, scenario
    family, metric, arrival/demand kind, cost model or audit check
    registered anywhere in the package shows up in ``list`` with no
    CLI change. Summaries come from the registries themselves (family
    descriptions, metric/check docstring first lines).
    """
    from repro.analysis.audit.checks import CHECKS
    from repro.scenario.arrivals import ARRIVALS
    from repro.scenario.demands import DEMANDS
    from repro.scenario.result import METRICS

    def doc_line(obj: Any) -> str:
        doc = (getattr(obj, "__doc__", "") or "").strip()
        return doc.splitlines()[0] if doc else ""

    return [
        (
            "experiments (`run <id>`):",
            [(n, _DESCRIPTIONS.get(n, "")) for n in sorted(EXPERIMENTS)],
        ),
        (
            "schedulers (registry names usable with `sweep --scheduler`):",
            [(n, "") for n in scheduler_names()],
        ),
        (
            "scenario families (builders behind `server`/`flows`):",
            [
                (n, FAMILIES[n][1])
                for n in sorted(FAMILIES)
            ],
        ),
        (
            "metrics (Sweep.metrics / Scenario.metrics names):",
            [(n, doc_line(METRICS[n])) for n in sorted(METRICS)],
        ),
        (
            "arrival processes (`arrival.kind` in config files):",
            [(n, doc_line(ARRIVALS[n])) for n in arrival_names()],
        ),
        (
            "demand distributions (`demand.kind`/`size.kind` in configs):",
            [(n, doc_line(DEMANDS[n])) for n in demand_names()],
        ),
        (
            "cost models (`cost_model` in configs, `server --cost-model`):",
            [(n, "") for n in sorted(COST_MODELS)],
        ),
        (
            "audit checks (run under `--audit`; `audit_params.checks`):",
            [(n, CHECKS[n].title) for n in sorted(CHECKS)],
        ),
    ]


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "build_info", False):
        from repro.sim.engine import build_info

        for key, value in build_info().items():
            print(f"{key}: {value}")
        return 0
    sections = _registry_sections()
    for i, (heading, rows) in enumerate(sections):
        if i:
            print()
        print(heading)
        width = max(len(name) for name, _ in rows)
        for name, summary in rows:
            line = f"  {name:{width}s}  {summary}" if summary else f"  {name}"
            print(line.rstrip())
    return 0


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    """Execution-backend options shared by the grid-running commands."""
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-process count (0 forces serial execution)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="execution backend: serial, process (local pool), chunked "
        "(bounded-memory streaming + resumable checkpoint), or ssh "
        "(shard across `sfs-experiment worker` hosts)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSONL checkpoint file: finished cells are appended as "
        "they complete, and a re-run with the same grid resumes, "
        "skipping them",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=64, metavar="N",
        help="cells in flight per chunk for the chunked backend",
    )
    parser.add_argument(
        "--host", action="append", metavar="HOST", default=None,
        help="worker host for --backend ssh ('local' spawns a local "
        "subprocess); repeat for more hosts",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="run cells under the online invariant auditor "
        "(service conservation, bounded lag, no starvation, surplus "
        "order, monotone virtual time); violations are reported and "
        "make the command exit non-zero. For `run` this applies to the "
        "backend-aware experiments (saturation, sensitivity).",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sfs-experiment",
        description="Regenerate figures/tables from the SFS paper (OSDI 2000) "
        "and run declarative scenario sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="regenerate one paper artifact (or all of them)"
    )
    p_run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    p_run.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also export result data as CSV files into DIR",
    )
    p_run.add_argument(
        "--json", metavar="DIR", default=None,
        help="also export result data as JSON files into DIR",
    )
    _add_exec_args(p_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a policy x machine grid of the canonical workload",
    )
    p_sweep.add_argument(
        "--scheduler", nargs="+", default=["sfs", "sfq"],
        metavar="NAME", help="registry scheduler names (see `list`)",
    )
    p_sweep.add_argument(
        "--cpus", nargs="+", type=int, default=[1, 2, 4], metavar="N",
        help="CPU counts to sweep",
    )
    p_sweep.add_argument(
        "--quantum", nargs="+", type=float, default=[0.2], metavar="SEC",
        help="quantum lengths to sweep",
    )
    p_sweep.add_argument(
        "--tasks", type=int, default=8, metavar="N",
        help="population size (1 heavy + N-1 unit-weight tasks)",
    )
    p_sweep.add_argument(
        "--heavy-weight", type=float, default=4.0, metavar="W",
        help="weight of the heavy task",
    )
    p_sweep.add_argument(
        "--duration", type=float, default=10.0, metavar="SEC",
        help="simulated seconds per cell",
    )
    p_sweep.add_argument("--csv", metavar="DIR", default=None,
                         help="write sweep.csv into DIR")
    p_sweep.add_argument("--json", metavar="DIR", default=None,
                         help="write sweep.json into DIR")
    _add_exec_args(p_sweep)

    p_server = sub.add_parser(
        "server",
        help="run the high-N server scenario family "
        "(Poisson arrivals, heavy-tailed demands, mixed weights)",
    )
    p_server.add_argument(
        "--n", type=int, default=1000, metavar="N",
        help="number of jobs in the arrival stream",
    )
    p_server.add_argument(
        "--scheduler", nargs="+", default=["sfs", "sfq", "round-robin"],
        metavar="NAME", help="registry scheduler names (see `list`)",
    )
    p_server.add_argument(
        "--cpus", type=int, default=4, metavar="P", help="CPU count",
    )
    p_server.add_argument(
        "--seed", type=int, default=42, metavar="S",
        help="PRNG seed for arrivals/demands/weights",
    )
    p_server.add_argument(
        "--load", type=float, default=0.85, metavar="RHO",
        help="offered utilization (arrival rate = load*cpus/mean_service)",
    )
    p_server.add_argument(
        "--quantum", type=float, default=0.05, metavar="SEC",
        help="scheduling quantum",
    )
    p_server.add_argument(
        "--cost-model", choices=sorted(COST_MODELS),
        default="lmbench",
        help="context-switch/decision cost model",
    )
    p_server.add_argument(
        "--sample-interval", type=float, default=0.5, metavar="SEC",
        help="decimate service curves to one point per interval "
        "(0 = every charge boundary)",
    )
    p_server.add_argument("--csv", metavar="DIR", default=None,
                          help="write server.csv into DIR")
    p_server.add_argument("--json", metavar="DIR", default=None,
                          help="write server.json into DIR")
    _add_exec_args(p_server)

    sub.add_parser(
        "worker",
        help="serve the execution-backend worker protocol "
        "(line-JSON over stdio; used by --backend ssh)",
    )
    p_list = sub.add_parser(
        "list", help="list experiment ids and scheduler names"
    )
    p_list.add_argument(
        "--build-info",
        action="store_true",
        help="report which engine build is active (compiled C extension "
        "vs pure Python, and which event queue) instead of the registries",
    )
    # `lint` is dispatched before parsing (it owns its own argparse in
    # repro.analysis.staticcheck); registered here only for --help.
    sub.add_parser(
        "lint",
        add_help=False,
        help="run the repo-specific determinism/soundness linter "
        "(rules SFS001-SFS011; see `lint --list-rules`, `lint --project` "
        "for the interprocedural rules, `lint --cboundary` for the "
        "compiled-boundary conformance checker)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Backwards compatibility: `sfs-experiment fig1` == `... run fig1`.
    if argv and argv[0] in EXPERIMENTS or argv[:1] == ["all"]:
        argv = ["run", *argv]
    if argv[:1] == ["lint"]:
        # The linter owns its own argument parser (also reachable as
        # `python -m repro.analysis.staticcheck`).
        from repro.analysis.staticcheck import main as lint_main

        return lint_main(argv[1:])
    # Config-file mode: `run <file.yaml>` / `sweep <file.yaml>` take a
    # different option set than the experiment-id/built-in-grid forms,
    # so they are dispatched on the positional's suffix before argparse.
    if (
        len(argv) >= 2
        and argv[0] in ("run", "sweep")
        and _is_config_path(argv[1])
    ):
        command = argv[0]
        args = _build_config_parser(command).parse_args(argv[1:])
        handler = _cmd_run_config if command == "run" else _cmd_sweep_config
        try:
            return handler(args)
        except ValueError as exc:
            print(
                f"sfs-experiment {command}: error: {exc}", file=sys.stderr
            )
            return 2
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        try:
            return _cmd_run(args)
        except ValueError as exc:
            print(f"sfs-experiment run: error: {exc}", file=sys.stderr)
            return 2
    if args.command == "sweep":
        try:
            return _cmd_sweep(args)
        except ValueError as exc:
            print(f"sfs-experiment sweep: error: {exc}", file=sys.stderr)
            return 2
    if args.command == "server":
        try:
            return _cmd_server(args)
        except ValueError as exc:
            print(f"sfs-experiment server: error: {exc}", file=sys.stderr)
            return 2
    if args.command == "worker":
        return serve_worker()
    return _cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
