"""Sensitivity study backing the Fig. 5 reproduction notes.

EXPERIMENTS.md claims that the short-jobs outcome is *noise-sensitive*:
quantum-granularity SFS admits a family of neutrally-stable orbits, so
the T_short group's share depends on the timer noise present. This
module quantifies that claim by sweeping ``quantum_jitter`` across
several seeds and reporting the distribution of T_short's share — and,
as the control, showing the GMS-reference scheduler's share is
insensitive to the same noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import resolve_scheduler
from repro.scenario import Scenario, ShortJobs, group, run_cells, task

__all__ = ["SensitivityResult", "run", "render", "scenario", "IDEAL_SHORT_SHARE"]

HORIZON = 30.0
IDEAL_SHORT_SHARE = 5 / 45

#: experiment name -> registry name (the study's pair)
_SCHEDULERS = {"sfs": "sfs", "gms-reference": "gms-reference"}


@dataclass
class SensitivityResult:
    """T_short machine share per (scheduler, jitter, seed)."""

    #: (scheduler, jitter) -> list of shares across seeds
    shares: dict[tuple[str, float], list[float]] = field(default_factory=dict)
    #: invariant-audit summaries per cell (when run with audit=True)
    audit: dict[tuple[str, float, int], dict] = field(default_factory=dict)

    @property
    def audit_violations(self) -> int:
        """Total invariant violations across all audited cells."""
        return sum(s["total_violations"] for s in self.audit.values())

    def spread(self, scheduler: str, jitter: float) -> float:
        values = self.shares[(scheduler, jitter)]
        return max(values) - min(values)

    def mean(self, scheduler: str, jitter: float) -> float:
        values = self.shares[(scheduler, jitter)]
        return sum(values) / len(values)


def scenario(scheduler_name: str, jitter: float, seed: int) -> Scenario:
    """One (scheduler, jitter, seed) cell as a declarative scenario."""
    registry_name = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"sensitivity-{scheduler_name}-j{jitter:g}-s{seed}",
        scheduler=registry_name,
        duration=HORIZON,
        quantum_jitter=jitter,
        jitter_seed=seed,
        record_events=False,
        sample_service=False,
        tasks=(task("T1", 20), *group(20, 1, "T")),
        drivers=(ShortJobs(name="T_short", weight=5, job_cpu=0.3),),
    )


def run(
    jitters: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10),
    seeds: tuple[int, ...] = (1, 2, 3),
    schedulers: tuple[str, ...] = ("sfs", "gms-reference"),
    workers: int | None = 0,
    backend=None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
    audit: bool = False,
) -> SensitivityResult:
    """Sweep jitter x seed for each scheduler.

    Cells run through :func:`repro.scenario.run_cells` using the
    ``driver_shares`` canned metric (the T_short feeder's machine
    share — identical arithmetic to the in-process path, so the golden
    output is byte-stable across backends). ``workers=0`` (the
    default) keeps the historical serial execution; pass
    ``workers=None`` / ``backend`` / ``checkpoint`` to fan the grid
    out like any other sweep.
    """
    result = SensitivityResult()
    grid = [
        (name, jitter, seed)
        for name in schedulers
        for jitter in jitters
        for seed in seeds
    ]
    scenarios = [scenario(name, jitter, seed) for name, jitter, seed in grid]
    metrics = ("driver_shares", "audit") if audit else ("driver_shares",)
    if audit:
        scenarios = [s.with_(audit=True) for s in scenarios]
    cells = run_cells(
        scenarios,
        metrics,
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        chunk_size=chunk_size,
    )
    for (name, jitter, seed), cell in zip(grid, cells):
        result.shares.setdefault((name, jitter), []).append(
            cell.metrics["driver_shares"]["T_short"]
        )
        if audit:
            result.audit[(name, jitter, seed)] = cell.metrics["audit"]
    return result


def render(result: SensitivityResult) -> str:
    lines = [
        "Fig. 5 sensitivity — T_short machine share vs timer jitter "
        f"(ideal {IDEAL_SHORT_SHARE:.3f})",
    ]
    by_sched: dict[str, list[tuple[float, list[float]]]] = {}
    for (name, jitter), values in result.shares.items():
        by_sched.setdefault(name, []).append((jitter, values))
    for name, rows in by_sched.items():
        lines.append(f"  {name}:")
        for jitter, values in sorted(rows):
            formatted = " ".join(f"{v:.3f}" for v in values)
            lines.append(
                f"    jitter={jitter:4.2f}: shares [{formatted}] "
                f"(mean {sum(values) / len(values):.3f})"
            )
    return "\n".join(lines)
