"""Experiment modules — one per figure/table of the paper's evaluation.

=========  =======================================================
module     paper artifact
=========  =======================================================
fig1       Fig. 1 / Example 1: infeasible weights starve SFQ
fig3       Fig. 3: §3.2 heuristic accuracy vs scan depth
fig4       Fig. 4: SFQ with/without weight readjustment
fig5       Fig. 5: short jobs problem, SFQ vs SFS
fig6a      Fig. 6(a): proportionate dhrystone allocation
fig6b      Fig. 6(b): MPEG isolation from compilations
fig6c      Fig. 6(c): interactive response under batch load
table1     Table 1: lmbench scheduling overheads
fig7       Fig. 7: context-switch overhead vs process count
saturation server-family saturation study (beyond the paper)
=========  =======================================================

Each module exposes ``run(...) -> Result`` and ``render(Result) -> str``,
and defines its population as a declarative
:class:`repro.scenario.Scenario` (exposed as ``scenario(...)``) fed
through :func:`repro.scenario.run_scenario`. The CLI
(``sfs-experiment``) and the pytest-benchmark harness in
``benchmarks/`` drive these.
"""

from repro.experiments import (
    fig1_infeasible,
    fig3_heuristic,
    fig4_readjustment,
    fig5_shortjobs,
    fig6a_proportional,
    fig6b_isolation,
    fig6c_interactive,
    fig7_ctxswitch,
    saturation,
    sensitivity,
    table1_lmbench,
)

__all__ = [
    "fig1_infeasible",
    "fig3_heuristic",
    "fig4_readjustment",
    "fig5_shortjobs",
    "fig6a_proportional",
    "fig6b_isolation",
    "fig6c_interactive",
    "fig7_ctxswitch",
    "saturation",
    "sensitivity",
    "table1_lmbench",
]
