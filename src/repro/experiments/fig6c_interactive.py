"""Figure 6(c) — interactive performance under background simulations.

§4.4: *"Our final experiment consisted of an I/O-bound interactive
application Interact that ran in the presence of a background
simulation workload (represented by some number of disksim processes).
Each application was assigned a weight of 1, and we measured the
response time of Interact for different background loads."*

Expected shape: SFS response times are comparable to the time-sharing
scheduler (which deliberately privileges I/O-bound processes), both in
the single-to-low-tens of milliseconds and roughly flat in the number
of disksim processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.experiments.common import resolve_scheduler
from repro.scenario import Disksim, InteractiveLoop, Scenario, run_scenario, task

__all__ = ["Fig6cResult", "run", "render", "scenario"]

THINK_TIME = 0.5
BURST = 0.005
HORIZON = 60.0

#: experiment name -> registry name (restricted to the paper's pair)
_SCHEDULERS = {"sfs": "sfs", "linux-ts": "linux-ts"}


@dataclass
class Fig6cResult:
    """Mean response time vs number of disksim processes."""

    #: scheduler name -> list of (n_disksim, mean response seconds)
    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    #: scheduler name -> n -> all response samples (for percentiles)
    samples: dict[str, dict[int, list[float]]] = field(default_factory=dict)


def scenario(scheduler_name: str, n_disksim: int, seed: int) -> Scenario:
    """Interact + ``n`` disksim processes as a declarative scenario."""
    registry_name = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"fig6c-{scheduler_name}-n{n_disksim}",
        scheduler=registry_name,
        duration=HORIZON,
        record_events=False,
        sample_service=False,
        tasks=(
            task(
                "Interact",
                1,
                InteractiveLoop(think_time=THINK_TIME, burst=BURST, seed=seed),
            ),
            *(
                task(f"disksim-{i + 1}", 1, Disksim())
                for i in range(n_disksim)
            ),
        ),
    )


def _run_one(scheduler_name: str, n_disksim: int, seed: int) -> list[float]:
    result = run_scenario(scenario(scheduler_name, n_disksim, seed))
    return result.behavior("Interact").response_times


def run(
    disksim_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    schedulers: tuple[str, ...] = ("sfs", "linux-ts"),
    seed: int = 11,
) -> Fig6cResult:
    """Sweep disksim counts for each scheduler."""
    result = Fig6cResult()
    for name in schedulers:
        result.curves[name] = []
        result.samples[name] = {}
        for n in disksim_counts:
            samples = _run_one(name, n, seed)
            mean = sum(samples) / len(samples) if samples else 0.0
            result.curves[name].append((n, mean))
            result.samples[name][n] = samples
    return result


def render(result: Fig6cResult) -> str:
    lines = ["Figure 6(c) — Interact mean response time vs disksim load"]
    for name, points in result.curves.items():
        row = "  ".join(f"n={n}:{1000 * rt:6.2f}ms" for n, rt in points)
        lines.append(f"  {name:10s} {row}")
    lines.append("")
    series = {
        name: [(float(n), 1000 * rt) for n, rt in pts]
        for name, pts in result.curves.items()
    }
    lines.append(
        line_chart(
            series,
            title="mean response time (ms) — paper: SFS comparable to TS",
            xlabel="disksim processes",
            ylabel="response (ms)",
        )
    )
    return "\n".join(lines)
