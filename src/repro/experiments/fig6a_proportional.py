"""Figure 6(a) — proportionate allocation of dhrystone benchmarks.

§4.4: *"we ran 20 background dhrystone processes, each with a weight of
1. We then ran two more dhrystone processes and assigned them different
weights (1:1, 1:2, 1:4 and 1:7). In each case, we measured the number
of loops executed by the two dhrystone benchmarks per unit time (the
background dhrystone processes were necessary to ensure that all
weights were feasible at all times)."*

Expected: the two foreground processes' loop rates stand in the ratio
of their weights under SFS. ``run()`` accepts any registry scheduler
name, so the same scenario doubles as a policy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import bar_chart
from repro.scenario import Scenario, group, run_scenario, task
from repro.workloads.cpu_bound import DHRYSTONE_ITER_RATE

__all__ = ["Fig6aResult", "run", "render", "scenario", "WEIGHT_PAIRS"]

WEIGHT_PAIRS = ((1, 1), (1, 2), (1, 4), (1, 7))
HORIZON = 90.0
#: tag-equilibration transient excluded from the measurement (see
#: EXPERIMENTS.md: from a synchronized cold start, exact SFS needs a few
#: background rounds before tags spread into their steady-state ordering)
WARMUP = 30.0
BACKGROUND = 20
#: timer-tick noise of the real testbed (Linux 2.2 quanta end on 10 ms
#: tick boundaries); keeps the run off the synchronized lockstep orbit
JITTER = 0.05


@dataclass
class Fig6aResult:
    """Loop rates of the two foreground dhrystones per assignment."""

    scheduler: str
    #: (w1, w2) -> (loops/sec of D1, loops/sec of D2)
    rates: dict[tuple[int, int], tuple[float, float]] = field(default_factory=dict)

    def measured_ratio(self, pair: tuple[int, int]) -> float:
        r1, r2 = self.rates[pair]
        return r2 / r1 if r1 > 0 else float("inf")


def scenario(
    scheduler_name: str,
    w1: int,
    w2: int,
    duration: float = HORIZON,
    quantum_jitter: float = JITTER,
) -> Scenario:
    """One weight assignment of Fig. 6(a) as a declarative scenario."""
    return Scenario(
        name=f"fig6a-{scheduler_name}-{w1}:{w2}",
        scheduler=scheduler_name,
        duration=duration,
        quantum_jitter=quantum_jitter,
        record_events=False,
        tasks=(
            *group(BACKGROUND, 1, "bg"),
            task("D1", w1),
            task("D2", w2),
        ),
    )


def run(
    scheduler_name: str = "sfs",
    weight_pairs: tuple[tuple[int, int], ...] = WEIGHT_PAIRS,
    horizon: float = HORIZON,
    warmup: float = WARMUP,
    quantum_jitter: float = JITTER,
) -> Fig6aResult:
    """Measure foreground dhrystone loop rates for each weight pair."""
    result = Fig6aResult(scheduler=scheduler_name)
    window = horizon - warmup
    for w1, w2 in weight_pairs:
        res = run_scenario(
            scenario(scheduler_name, w1, w2, horizon, quantum_jitter)
        )
        result.rates[(w1, w2)] = (
            res.service_between("D1", warmup, horizon) / window
            * DHRYSTONE_ITER_RATE,
            res.service_between("D2", warmup, horizon) / window
            * DHRYSTONE_ITER_RATE,
        )
    return result


def render(result: Fig6aResult) -> str:
    lines = [
        f"Figure 6(a) — dhrystone loop rates under {result.scheduler} "
        "(20 background dhrystones, weight 1 each)",
    ]
    bars: dict[str, float] = {}
    for pair, (r1, r2) in result.rates.items():
        w1, w2 = pair
        ratio = result.measured_ratio(pair)
        lines.append(
            f"  weights {w1}:{w2} -> {r1:,.0f} and {r2:,.0f} loops/s  "
            f"(measured ratio {ratio:.2f}, requested {w2 / w1:.2f})"
        )
        bars[f"{w1}:{w2} D1"] = r1
        bars[f"{w1}:{w2} D2"] = r2
    lines.append("")
    lines.append(bar_chart(bars, title="loops per second", unit=" loops/s"))
    return "\n".join(lines)
