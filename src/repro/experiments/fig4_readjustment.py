"""Figure 4 — impact of the weight readjustment algorithm on SFQ.

§4.2: *"At t=0, we started two Inf applications (T1 and T2) with
weights 1:10. At t=15s, we started a third Inf application (T3) with a
weight of 1. Task T2 was then stopped at t=30s."* Measured on the
dual-processor testbed with quantum 200 ms.

Expected behaviour:

- **SFQ without readjustment** (Fig. 4(a)): T1 starves when T3 arrives
  (its curve goes flat at t=15 s) until the others' tags catch up.
- **SFQ with readjustment** (Fig. 4(b)): shares follow instantaneous
  weights — 1:1 while only T1, T2 run (T2's weight is capped to one
  CPU), 1:2:1 after T3 arrives, 1:1 after T2 stops.

``run()`` executes the scenario once for a given configuration and
reports phase shares and iteration curves (Inf loop rate calibrated in
:mod:`repro.workloads.cpu_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.experiments.common import resolve_scheduler
from repro.scenario import Kill, Scenario, run_scenario, task
from repro.sim.task import Task
from repro.workloads.cpu_bound import INF_ITER_RATE

__all__ = ["Fig4Result", "run", "render", "scenario"]

T3_ARRIVAL = 15.0
T2_STOP = 30.0
HORIZON = 40.0

#: experiment name -> (registry name, constructor params)
_SCHEDULERS = {
    "sfq": ("sfq", {"readjust": False}),
    "sfq-readjust": ("sfq", {"readjust": True}),
    "sfs": ("sfs", {}),
}


@dataclass
class Fig4Result:
    """Shares per phase and iteration curves for one configuration."""

    scheduler: str
    #: machine share of each task in [0, 15) — phase 1
    phase1: dict[str, float]
    #: machine share of each task in [15, 30) — phase 2
    phase2: dict[str, float]
    #: machine share of each task in [30, 40) — phase 3
    phase3: dict[str, float]
    #: longest T1 no-progress interval in phase 2 (starvation detector)
    t1_starvation: float
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    tasks: dict[str, Task] = field(default_factory=dict)


def scenario(scheduler_name: str = "sfq") -> Scenario:
    """The Fig. 4 population as a declarative scenario."""
    registry_name, params = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"fig4-{scheduler_name}",
        scheduler=registry_name,
        scheduler_params=params,
        duration=HORIZON,
        tasks=(
            task("T1", 1),
            task("T2", 10),
            task("T3", 1, at=T3_ARRIVAL),
        ),
        events=(Kill("T2", at=T2_STOP),),
    )


def run(scheduler_name: str = "sfq", sample_step: float = 0.5) -> Fig4Result:
    """Run the Fig. 4 scenario under ``sfq``/``sfq-readjust``/``sfs``."""
    result = run_scenario(scenario(scheduler_name))
    names = ("T1", "T2", "T3")
    series = result.sampled_series(names, sample_step, scale=INF_ITER_RATE)
    return Fig4Result(
        scheduler=result.scheduler.name,
        phase1=result.shares(names, 0.0, T3_ARRIVAL),
        phase2=result.shares(names, T3_ARRIVAL, T2_STOP),
        phase3=result.shares(names, T2_STOP, HORIZON),
        t1_starvation=result.starvation("T1", T3_ARRIVAL, T2_STOP),
        series=series,
        tasks=dict(result.tasks),
    )


def render(result: Fig4Result) -> str:
    def fmt(shares: dict[str, float]) -> str:
        return "  ".join(f"{k}={v:.3f}" for k, v in shares.items())

    lines = [
        f"Figure 4 — SFQ weight readjustment scenario under {result.scheduler}",
        f"  phase [0,15)s shares:  {fmt(result.phase1)}   (readjusted ideal: T1=0.5 T2=0.5)",
        f"  phase [15,30)s shares: {fmt(result.phase2)}   (readjusted ideal: T1=0.25 T2=0.5 T3=0.25)",
        f"  phase [30,40)s shares: {fmt(result.phase3)}   (readjusted ideal: T1=0.5 T3=0.5)",
        f"  T1 longest starvation in [15,30)s: {result.t1_starvation:.2f} s",
        "",
        line_chart(
            result.series,
            title="cumulative Inf iterations (cf. paper Fig. 4)",
            xlabel="time (s)",
            ylabel="iterations",
        ),
    ]
    return "\n".join(lines)
