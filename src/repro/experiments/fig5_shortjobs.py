"""Figure 5 — the short jobs problem: SFQ vs SFS.

§4.3: *"we started an Inf application (T1) with a weight of 20, and 20
Inf applications (collectively referred to as T2-21), each with weight
of 1. To simulate frequent arrivals and departures, we then introduced
a sequence of short Inf tasks (T_short) into the system. Each of these
short tasks was assigned a weight of 5 and ran for 300ms each; each
short task was introduced only after the previous one finished."*

Group weights are 20 : 20 : 5, so ideally T1 and the T2-21 group each
receive 4/9 of the machine and the T_short sequence 1/9 — the 4:4:1
proportion. The paper reports SFQ giving each *set* roughly equal
shares (≈1:1:1) while SFS delivers ~4:4:1.

Reproduction note (detailed in EXPERIMENTS.md): the outcome of this
workload is **noise-sensitive**. Quantum-granularity SFS admits a
family of neutrally-stable orbits parameterized by the gap between the
virtual-time floor and the background pack's tags; each fresh T_short
arrival starts at the floor (Eq. 4 clamps surpluses at zero, so no
thread can be *behind* a new arrival), and how much the sequence
over-collects depends on that gap. On a perfectly sterile simulator the
cold-start transient leaves a large gap and T_short over-collects; with
realistic timer jitter (``quantum_jitter``) the system moves toward the
paper's orbit. Scheduling by the paper's *exact* Eq. 3 surplus (the
:class:`~repro.schedulers.gms_reference.GMSReferenceScheduler`, whose
deficits are not clamped at zero) reproduces 4:4:1 precisely — the
clamp in the Eq. 4 approximation is what leaks. ``run()`` therefore
accepts ``sfq`` / ``sfs`` / ``sfs-heuristic`` / ``gms-reference`` and a
jitter knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.analysis.timeseries import regular_times
from repro.experiments.common import resolve_scheduler
from repro.scenario import Scenario, ShortJobs, group, run_scenario, task
from repro.workloads.cpu_bound import INF_ITER_RATE

__all__ = ["Fig5Result", "run", "render", "scenario", "IDEAL_SHARES"]

HORIZON = 30.0

#: group weights 20:20:5 normalized — the paper's requested proportions
IDEAL_SHARES = {"T1": 20 / 45, "T2-21": 20 / 45, "T_short": 5 / 45}

#: experiment name -> (registry name, constructor params); note that the
#: paper's SFQ baseline runs *with* readjustment here (the short-jobs
#: pathology is distinct from the infeasible-weights one)
_SCHEDULERS = {
    "sfq": ("sfq", {"readjust": True}),
    "sfs": ("sfs", {}),
    "sfs-heuristic": ("sfs-heuristic", {}),
    "gms-reference": ("gms-reference", {}),
}


@dataclass
class Fig5Result:
    """Group services and curves for one scheduler."""

    scheduler: str
    #: total CPU service per group over the run
    group_service: dict[str, float]
    #: fraction of machine capacity per group
    group_share: dict[str, float]
    #: number of short jobs completed
    short_jobs_completed: int
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)


def scenario(
    scheduler_name: str = "sfq", quantum_jitter: float = 0.0
) -> Scenario:
    """The Fig. 5 population as a declarative scenario."""
    registry_name, params = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"fig5-{scheduler_name}",
        scheduler=registry_name,
        scheduler_params=params,
        duration=HORIZON,
        quantum_jitter=quantum_jitter,
        tasks=(task("T1", 20), *group(20, 1, "T")),
        drivers=(ShortJobs(name="T_short", weight=5, job_cpu=0.3),),
    )


def run(
    scheduler_name: str = "sfq",
    sample_step: float = 0.5,
    quantum_jitter: float = 0.0,
) -> Fig5Result:
    """Run the Fig. 5 scenario.

    ``scheduler_name`` is one of ``sfq``, ``sfs``, ``sfs-heuristic``,
    ``gms-reference``; ``quantum_jitter`` adds testbed-like timer noise
    (see module docstring).
    """
    result = run_scenario(scenario(scheduler_name, quantum_jitter))
    feeder = result.driver("T_short")
    background = [f"T-{i + 1}" for i in range(20)]

    capacity = result.capacity()
    group_service = {
        "T1": result.service("T1"),
        "T2-21": sum(result.service(n) for n in background),
        "T_short": feeder.total_service(),
    }
    group_share = {k: v / capacity for k, v in group_service.items()}

    times = regular_times(0.0, HORIZON, sample_step)
    bg_curves = [result.series(n, times) for n in background]
    series = {
        "T1": result.series("T1", times, scale=INF_ITER_RATE),
        "T2-21": [
            (t, sum(curve[i][1] for curve in bg_curves) * INF_ITER_RATE)
            for i, t in enumerate(times)
        ],
    }
    short_points = feeder.service_series()
    series["T_short"] = [
        (t, s * INF_ITER_RATE)
        for t, s in _downsample(short_points, times)
    ]
    return Fig5Result(
        scheduler=result.scheduler.name,
        group_service=group_service,
        group_share=group_share,
        short_jobs_completed=feeder.completed,
        series=series,
    )


def _downsample(
    points: list[tuple[float, float]], times: list[float]
) -> list[tuple[float, float]]:
    """Last cumulative value at or before each sample time."""
    out: list[tuple[float, float]] = []
    idx = 0
    last = 0.0
    for t in times:
        while idx < len(points) and points[idx][0] <= t:
            last = points[idx][1]
            idx += 1
        out.append((t, last))
    return out


def render(result: Fig5Result) -> str:
    share = result.group_share
    ratio = [share["T1"], share["T2-21"], share["T_short"]]
    base = ratio[2] if ratio[2] > 0 else 1.0
    lines = [
        f"Figure 5 — short jobs problem under {result.scheduler}",
        "  group shares (ideal 0.444 : 0.444 : 0.111):",
        f"    T1={share['T1']:.3f}  T2-21={share['T2-21']:.3f}  "
        f"T_short={share['T_short']:.3f}",
        "  ratio T1 : T2-21 : T_short = "
        f"{ratio[0] / base:.2f} : {ratio[1] / base:.2f} : 1  (ideal 4 : 4 : 1)",
        f"  short jobs completed: {result.short_jobs_completed}",
        "",
        line_chart(
            result.series,
            title="cumulative Inf iterations (cf. paper Fig. 5)",
            xlabel="time (s)",
            ylabel="iterations",
        ),
    ]
    return "\n".join(lines)
