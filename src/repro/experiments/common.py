"""Shared scaffolding for the per-figure experiment modules.

Every experiment module exposes ``run(...) -> <Result dataclass>`` and
``render(result) -> str``; the helpers here build machines and standard
task populations so the experiment files read like the paper's §4
prose.
"""

from __future__ import annotations

from repro.sim.costs import CostModel, ZERO_COST
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite

__all__ = [
    "make_machine",
    "add_inf",
    "add_inf_group",
    "PAPER_QUANTUM",
    "PAPER_CPUS",
]

#: the paper's testbed parameters (§4.1)
PAPER_QUANTUM = 0.2
PAPER_CPUS = 2


def make_machine(
    scheduler: Scheduler,
    cpus: int = PAPER_CPUS,
    quantum: float = PAPER_QUANTUM,
    cost_model: CostModel = ZERO_COST,
    **kwargs,
) -> Machine:
    """A machine configured like the paper's testbed by default."""
    return Machine(
        scheduler,
        cpus=cpus,
        quantum=quantum,
        cost_model=cost_model,
        **kwargs,
    )


def add_inf(
    machine: Machine,
    weight: float,
    name: str,
    at: float = 0.0,
    ts_priority: int = 20,
) -> Task:
    """Add one Inf (compute-bound) application."""
    task = Task(Infinite(), weight=weight, name=name, ts_priority=ts_priority)
    return machine.add_task(task, at=at)


def add_inf_group(
    machine: Machine,
    count: int,
    weight: float,
    prefix: str,
    at: float = 0.0,
) -> list[Task]:
    """Add ``count`` identical Inf applications named ``prefix-i``."""
    return [
        add_inf(machine, weight, f"{prefix}-{i + 1}", at=at)
        for i in range(count)
    ]
