"""Imperative helpers for ad-hoc simulation scripts.

The experiment modules themselves are declarative now — each defines a
:class:`repro.scenario.Scenario` and feeds it through
:func:`repro.scenario.run_scenario` (see any ``figN_*.py``). These
helpers remain for quick interactive exploration where constructing a
:class:`~repro.sim.machine.Machine` by hand reads better than a spec;
they build machines and standard task populations matching the paper's
§4.1 testbed.
"""

from __future__ import annotations

from repro.sim.costs import CostModel, ZERO_COST
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite

__all__ = [
    "make_machine",
    "add_inf",
    "add_inf_group",
    "resolve_scheduler",
    "PAPER_QUANTUM",
    "PAPER_CPUS",
]


def resolve_scheduler(mapping: dict, name: str):
    """Look up an experiment's scheduler alias, with a uniform error.

    Each experiment module restricts itself to the schedulers its
    figure compares (a ``name -> registry spec`` mapping); anything
    else is rejected with ``ValueError`` rather than silently running
    an unrelated policy.
    """
    try:
        return mapping[name]
    except KeyError:
        raise ValueError(f"unsupported scheduler {name!r}") from None

#: the paper's testbed parameters (§4.1)
PAPER_QUANTUM = 0.2
PAPER_CPUS = 2


def make_machine(
    scheduler: Scheduler,
    cpus: int = PAPER_CPUS,
    quantum: float = PAPER_QUANTUM,
    cost_model: CostModel = ZERO_COST,
    **kwargs,
) -> Machine:
    """A machine configured like the paper's testbed by default."""
    return Machine(
        scheduler,
        cpus=cpus,
        quantum=quantum,
        cost_model=cost_model,
        **kwargs,
    )


def add_inf(
    machine: Machine,
    weight: float,
    name: str,
    at: float = 0.0,
    ts_priority: int = 20,
) -> Task:
    """Add one Inf (compute-bound) application."""
    task = Task(Infinite(), weight=weight, name=name, ts_priority=ts_priority)
    return machine.add_task(task, at=at)


def add_inf_group(
    machine: Machine,
    count: int,
    weight: float,
    prefix: str,
    at: float = 0.0,
) -> list[Task]:
    """Add ``count`` identical Inf applications named ``prefix-i``."""
    return [
        add_inf(machine, weight, f"{prefix}-{i + 1}", at=at)
        for i in range(count)
    ]
