"""Figure 3 — efficacy of the §3.2 scheduling heuristic.

The paper: *"Figure 3 plots the percentage of the time our heuristic
successfully picks the thread with the minimum surplus [...] in a
quad-processor system, examining the first 20 threads in each queue
provides sufficient accuracy (> 99%) even when the number of runnable
threads is as large as 400."*

``run()`` drives a quad-processor scenario with N compute-bound threads
of randomized weights under :class:`HeuristicSurplusFairScheduler` with
``track_accuracy=True`` and sweeps the scan depth k; accuracy is the
fraction of scheduling decisions whose pick had the true minimum
surplus (ties count as success, as in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.scenario import Scenario, run_scenario, task

__all__ = ["Fig3Result", "run", "render", "scenario", "measure_accuracy"]

CPUS = 4
#: a short quantum generates many scheduling decisions quickly
QUANTUM = 0.01


@dataclass
class Fig3Result:
    """accuracy[(n_threads, scan_depth)] -> fraction of exact picks."""

    thread_counts: list[int]
    scan_depths: list[int]
    accuracy: dict[tuple[int, int], float] = field(default_factory=dict)
    decisions: dict[tuple[int, int], int] = field(default_factory=dict)


def scenario(
    n_threads: int,
    scan_depth: int,
    decisions: int = 1500,
    refresh_every: int = 50,
    seed: int = 42,
) -> Scenario:
    """One (N, k) cell of Fig. 3 as a declarative scenario."""
    rng = random.Random(seed)
    tasks = tuple(
        task(f"w{i}", weight=rng.choice([1, 1, 1, 2, 2, 4, 5, 8, 10, 20]))
        for i in range(n_threads)
    )
    # decisions/quantum: each quantum expiry triggers one pick per CPU.
    horizon = decisions * QUANTUM / CPUS + 1.0
    return Scenario(
        name=f"fig3-n{n_threads}-k{scan_depth}",
        scheduler="sfs-heuristic",
        scheduler_params={
            "scan_depth": scan_depth,
            "refresh_every": refresh_every,
            "track_accuracy": True,
        },
        cpus=CPUS,
        quantum=QUANTUM,
        duration=horizon,
        tasks=tasks,
        sample_service=False,
        record_events=False,
    )


def measure_accuracy(
    n_threads: int,
    scan_depth: int,
    decisions: int = 1500,
    refresh_every: int = 50,
    seed: int = 42,
) -> tuple[float, int]:
    """Accuracy of one (N, k) cell; returns (accuracy, tracked count)."""
    result = run_scenario(
        scenario(n_threads, scan_depth, decisions, refresh_every, seed)
    )
    return result.scheduler.accuracy, result.scheduler.tracked_decisions


def run(
    thread_counts: tuple[int, ...] = (100, 200, 300, 400),
    scan_depths: tuple[int, ...] = (1, 2, 5, 10, 20, 40, 80, 100),
    decisions: int = 1500,
    seed: int = 42,
) -> Fig3Result:
    """Sweep the (N, k) grid of Fig. 3."""
    result = Fig3Result(list(thread_counts), list(scan_depths))
    for n in thread_counts:
        for k in scan_depths:
            acc, tracked = measure_accuracy(
                n, k, decisions=decisions, seed=seed
            )
            result.accuracy[(n, k)] = acc
            result.decisions[(n, k)] = tracked
    return result


def render(result: Fig3Result) -> str:
    series = {
        f"{n} runnable threads": [
            (k, 100.0 * result.accuracy[(n, k)]) for k in result.scan_depths
        ]
        for n in result.thread_counts
    }
    lines = [
        "Figure 3 — heuristic accuracy vs threads examined per queue "
        f"(quad-processor, k={result.scan_depths})",
    ]
    for n in result.thread_counts:
        row = "  ".join(
            f"k={k}:{100 * result.accuracy[(n, k)]:5.1f}%"
            for k in result.scan_depths
        )
        lines.append(f"  N={n:4d}  {row}")
    lines.append("")
    lines.append(
        line_chart(
            series,
            title="heuristic accuracy (%) — paper: k=20 gives >99% up to N=400",
            xlabel="threads examined per queue (k)",
            ylabel="accuracy %",
        )
    )
    return "\n".join(lines)
