"""Flows study: fair queueing on a link, single- and multi-resource.

The paper pitches surplus fair scheduling as the multiprocessor
generalization of the fair-queueing line — start-time fair queueing
(SFQ) and weighted fair queueing (WFQ) were built for *packet links*,
where each quantum is one packet transmission and its cost varies with
packet size. The flow domain (:mod:`repro.flows`) closes that loop: it
drives the very same tagged schedulers with packet flows sharing a
link, so the CPU results and the network results come from one
simulator core.

``run()`` measures two grids through
:func:`~repro.scenario.sweep.run_cells`:

- a **single-link** policy x load grid (``sfs``, ``wfq``, ``sfq`` by
  default): per-flow throughput, Jain's fairness index over
  weight-normalized service, and packet-delay percentiles as offered
  load crosses 1.0 — under overload a fair queue keeps weighted
  throughput shares pinned while delays grow, which is exactly what
  the tables show;
- a **multi-resource** cell per policy at the overload point, where
  every flow declares a {cpu, memory, bandwidth} demand vector
  (:data:`~repro.flows.scenario.FLOW_RESOURCE_PROFILES`): per-resource
  shares, dominant-resource shares and per-resource Jain indices — the
  DRF-style view of what a single-tag scheduler delivers when demand
  is multi-dimensional.

``render()`` is fully deterministic (no wall-clock numbers), so the
golden transcript pins the comparison byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.flows import FLOW_RESOURCE_PROFILES, flow_scenario
from repro.scenario import run_cells

__all__ = ["FlowsResult", "run", "render"]

#: horizon padding for sub-saturation cells (matches flow_scenario)
DRAIN_FACTOR = 1.5

#: canned metrics each grid cell reports back from the worker pool
CELL_METRICS = (
    "completed",
    "jains",
    "flow_throughput",
    "packet_delay_p50",
    "packet_delay_p95",
    "packet_delay_p99",
    "resource_shares",
    "dominant_shares",
    "resource_jains",
)


@dataclass
class FlowsResult:
    """Grid measurements keyed by (policy, load), plus the DRF cells."""

    n_flows: int
    packets_per_flow: int
    loads: list[float]
    policies: list[str]
    #: flows that drained all their packets within the horizon
    completed: dict[tuple[str, float], int] = field(default_factory=dict)
    #: aggregate delivered throughput in bytes/sec (the "all" row)
    throughput: dict[tuple[str, float], float] = field(default_factory=dict)
    #: Jain's index over weight-normalized per-flow service
    jains: dict[tuple[str, float], float] = field(default_factory=dict)
    delay_p50: dict[tuple[str, float], float] = field(default_factory=dict)
    delay_p95: dict[tuple[str, float], float] = field(default_factory=dict)
    delay_p99: dict[tuple[str, float], float] = field(default_factory=dict)
    #: per-flow throughput: (policy, load, flow) -> bytes/sec
    flow_throughput: dict[tuple[str, float, str], float] = field(
        default_factory=dict
    )
    #: the load at which the multi-resource cells run (max of loads)
    mr_load: float = 0.0
    #: DRF cells: (policy, flow) -> dominant-resource share
    dominant_shares: dict[tuple[str, str], float] = field(default_factory=dict)
    #: DRF cells: (policy, resource) -> Jain index over shares/weight
    resource_jains: dict[tuple[str, str], float] = field(default_factory=dict)
    #: invariant-audit summaries per cell (when run with audit=True)
    audit: dict[tuple[str, float, str], dict] = field(default_factory=dict)

    @property
    def audit_violations(self) -> int:
        """Total invariant violations across all audited cells."""
        return sum(s["total_violations"] for s in self.audit.values())


def run(
    n_flows: int = 12,
    packets_per_flow: int = 120,
    loads: tuple[float, ...] = (0.7, 1.0, 1.4),
    policies: tuple[str, ...] = ("sfs", "wfq", "sfq"),
    seed: int = 42,
    workers: int | None = None,
    backend=None,
    checkpoint: str | None = None,
    chunk_size: int | None = None,
    audit: bool = False,
) -> FlowsResult:
    """Run the single-link grid and the multi-resource cells.

    Every cell is one :func:`~repro.flows.scenario.flow_scenario` —
    the same seeded flow population under each policy, so rows differ
    only by scheduling. ``workers``/``backend``/``checkpoint``/
    ``chunk_size`` are forwarded to
    :func:`repro.scenario.run_cells`; ``audit=True`` runs every cell
    under the online invariant auditor (the multi-resource cells
    exercise the ``resource_conservation`` check, the single-link
    cells record it as skipped).
    """
    result = FlowsResult(
        n_flows=n_flows,
        packets_per_flow=packets_per_flow,
        loads=list(loads),
        policies=list(policies),
        mr_load=max(loads),
    )
    grid = [("link", policy, load) for policy in policies for load in loads]
    grid += [("drf", policy, result.mr_load) for policy in policies]
    scenarios = []
    for kind, policy, load in grid:
        scenario = flow_scenario(
            n_flows=n_flows,
            packets_per_flow=packets_per_flow,
            scheduler=policy,
            load=load,
            seed=seed,
            drain_factor=DRAIN_FACTOR,
            resource_profiles=(
                FLOW_RESOURCE_PROFILES if kind == "drf" else None
            ),
        )
        if load > 1.0:
            # Under overload, cut the run at the arrival window instead
            # of letting the backlog drain: the link stays saturated
            # with every flow backlogged, so the delivered shares are
            # the *scheduler's* weighted allocation (Jain's index over
            # service/weight -> 1 for a fair queue), not just each
            # flow's demand. The full horizon is drain_factor times
            # the serialization time, which exceeds the arrival window
            # by another factor of load.
            scenario = scenario.with_(
                duration=scenario.duration / (DRAIN_FACTOR * load)
            )
        scenarios.append(scenario)
    metrics = CELL_METRICS + ("audit",) if audit else CELL_METRICS
    if audit:
        scenarios = [s.with_(audit=True) for s in scenarios]
    cells = run_cells(
        scenarios,
        metrics,
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        chunk_size=chunk_size,
    )
    for (kind, policy, load), cell in zip(grid, cells):
        if audit:
            result.audit[(policy, load, kind)] = cell.metrics["audit"]
        if kind == "drf":
            for flow, share in cell.metrics["dominant_shares"].items():
                result.dominant_shares[(policy, flow)] = share
            for resource, index in cell.metrics["resource_jains"].items():
                result.resource_jains[(policy, resource)] = index
            continue
        key = (policy, load)
        result.completed[key] = cell.metrics["completed"]
        result.jains[key] = cell.metrics["jains"]
        throughput = cell.metrics["flow_throughput"]
        result.throughput[key] = throughput.get("all", 0.0)
        for flow, rate in throughput.items():
            if flow != "all":
                result.flow_throughput[(policy, load, flow)] = rate
        for name, into in (
            ("packet_delay_p50", result.delay_p50),
            ("packet_delay_p95", result.delay_p95),
            ("packet_delay_p99", result.delay_p99),
        ):
            into[key] = cell.metrics[name].get("all", float("nan"))
    return result


def render(result: FlowsResult) -> str:
    lines = [
        "Flows study — packet fair queueing on a shared link "
        f"(n={result.n_flows} flows, {result.packets_per_flow} "
        "packets/flow)",
        "",
        f"{'policy':12s} {'load':>5s} {'done':>5s} {'KB/s':>8s} "
        f"{'jains':>7s} {'p50ms':>8s} {'p95ms':>8s} {'p99ms':>8s}",
    ]
    for policy in result.policies:
        for load in result.loads:
            key = (policy, load)
            lines.append(
                f"{policy:12s} {load:5.2f} "
                f"{result.completed[key]:5d} "
                f"{result.throughput[key] / 1e3:8.1f} "
                f"{result.jains[key]:7.4f} "
                f"{1e3 * result.delay_p50[key]:8.3f} "
                f"{1e3 * result.delay_p95[key]:8.3f} "
                f"{1e3 * result.delay_p99[key]:8.3f}"
            )
    lines.append("")
    lines.append(
        line_chart(
            {
                policy: [
                    (load, 1e3 * result.delay_p95[(policy, load)])
                    for load in result.loads
                ]
                for policy in result.policies
            },
            title="p95 packet delay vs offered load (ms)",
            xlabel="offered load (of link capacity)",
            ylabel="p95 delay (ms)",
        )
    )
    lines.append("")
    lines.append(
        line_chart(
            {
                policy: [
                    (load, result.jains[(policy, load)])
                    for load in result.loads
                ]
                for policy in result.policies
            },
            title="Jain's index over weight-normalized service vs load",
            xlabel="offered load (of link capacity)",
            ylabel="Jain's index",
        )
    )
    lines.append("")
    resources = sorted({r for _, r in result.resource_jains})
    lines.append(
        "multi-resource cells (DRF view, every flow declares a "
        f"{{cpu, memory, bandwidth}} demand vector, load={result.mr_load:g}):"
    )
    lines.append(
        f"{'policy':12s} {'max-dom':>8s} {'min-dom':>8s}"
        + "".join(f" {'J(' + r + ')':>12s}" for r in resources)
    )
    for policy in result.policies:
        dominant = [
            share
            for (p, _), share in sorted(result.dominant_shares.items())
            if p == policy
        ]
        lines.append(
            f"{policy:12s} {max(dominant):8.4f} {min(dominant):8.4f}"
            + "".join(
                f" {result.resource_jains[(policy, r)]:12.4f}"
                for r in resources
            )
        )
    if result.audit:
        lines.append("")
        total = result.audit_violations
        status = "OK" if total == 0 else f"{total} VIOLATION(S)"
        lines.append(f"invariant audit across {len(result.audit)} cells: {status}")
        for key in sorted(result.audit):
            summary = result.audit[key]
            if summary["total_violations"]:
                policy, load, kind = key
                lines.append(
                    f"  {policy} load={load:g} ({kind}): {summary['counts']}"
                )
    return "\n".join(lines)
