"""Figure 7 — context-switch overhead vs number of processes (0 KB).

§4.5: *"Figure 7 plots the context switch overhead imposed by the two
schedulers for varying number of 0 KB processes [...] the context
switch overhead increases sharply as the number of processes increases
from 0 to 5, and then grows with the number of processes. [...]
Interestingly, the Linux time sharing scheduler also imposes an
overhead that grows with the number of processes."*

Runs the lmbench lat_ctx ring (0 KB working sets) for a sweep of ring
sizes under both schedulers — each measurement is one
:func:`repro.experiments.table1_lmbench.scenario` cell. Expected
shape: both curves grow with the process count; SFS sits a few
microseconds above time sharing; both stay within the paper's 0-10 us
band at 50 processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.experiments.table1_lmbench import measure_ctx, scenario

__all__ = ["Fig7Result", "run", "render", "scenario"]

RING_SIZES = (2, 3, 5, 8, 12, 16, 24, 32, 40, 50)


@dataclass
class Fig7Result:
    """scheduler name -> list of (nprocs, seconds per switch)."""

    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)


def run(
    ring_sizes: tuple[int, ...] = RING_SIZES,
    passes: int = 1500,
) -> Fig7Result:
    """Sweep ring sizes for both schedulers."""
    result = Fig7Result()
    for name in ("linux-ts", "sfs"):
        result.curves[name] = [
            (n, measure_ctx(name, n, kb=0.0, passes=passes))
            for n in ring_sizes
        ]
    return result


def render(result: Fig7Result) -> str:
    lines = ["Figure 7 — context-switch time vs number of 0 KB processes"]
    for name, points in result.curves.items():
        row = "  ".join(f"n={n}:{1e6 * s:5.2f}us" for n, s in points)
        lines.append(f"  {name:10s} {row}")
    lines.append("")
    series = {
        name: [(float(n), 1e6 * s) for n, s in pts]
        for name, pts in result.curves.items()
    }
    lines.append(
        line_chart(
            series,
            title="context switch time (us) — paper: both grow, SFS above TS",
            xlabel="number of processes",
            ylabel="microseconds",
        )
    )
    return "\n".join(lines)
