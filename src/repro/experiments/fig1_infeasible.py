"""Figure 1 / Example 1 — the infeasible weights problem under SFQ.

The scenario (§1.2): a dual-processor running SFQ with quantum 1 ms.
Threads 1 and 2 (weights 1 and 10) arrive at t=0 and are compute-bound;
at t = 1000 quanta a third compute-bound thread with weight 1 arrives,
initialized at the minimum start tag (100). Threads 2 and 3 then run
continuously until their tags catch up with thread 1's tag of 1000 —
thread 1, despite sharing thread 3's weight, **starves for ~900
quanta**.

``run()`` reproduces the trace; the result records the tag values at
arrival, the measured starvation interval of thread 1, and the
cumulative-service series of all three threads. Running the same
scenario with ``readjust=True`` (or with SFS) removes the starvation —
the per-figure benchmark asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.analysis.fairness import longest_starvation
from repro.analysis.timeseries import cumulative_series, regular_times
from repro.core.sfs import SurplusFairScheduler
from repro.experiments.common import add_inf, make_machine
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.task import Task

__all__ = ["Fig1Result", "run", "render"]

#: Example 1 parameters
QUANTUM = 0.001  # 1 ms
ARRIVAL_QUANTA = 1000  # thread 3 arrives after 1000 quanta


@dataclass
class Fig1Result:
    """Outcome of the Example 1 scenario for one scheduler."""

    scheduler: str
    #: start tags (S1, S2) the instant thread 3 arrives
    tags_at_arrival: tuple[float, float]
    #: thread 3's initial start tag (the virtual time at arrival)
    s3_initial: float
    #: longest no-progress interval of thread 1 after thread 3 arrives, s
    t1_starvation: float
    #: cumulative service curves per thread
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    tasks: dict[str, Task] = field(default_factory=dict)


def run(
    scheduler_name: str = "sfq",
    horizon_quanta: int = 2500,
    sample_step: float = 0.05,
) -> Fig1Result:
    """Run Example 1 under ``sfq``, ``sfq-readjust`` or ``sfs``."""
    if scheduler_name == "sfq":
        scheduler = StartTimeFairScheduler(readjust=False)
    elif scheduler_name == "sfq-readjust":
        scheduler = StartTimeFairScheduler(readjust=True)
    elif scheduler_name == "sfs":
        scheduler = SurplusFairScheduler()
    else:
        raise ValueError(f"unsupported scheduler {scheduler_name!r}")

    machine = make_machine(scheduler, cpus=2, quantum=QUANTUM)
    arrival_time = ARRIVAL_QUANTA * QUANTUM
    horizon = horizon_quanta * QUANTUM

    t1 = add_inf(machine, 1, "T1")
    t2 = add_inf(machine, 10, "T2")
    t3 = add_inf(machine, 1, "T3", at=arrival_time)

    # Sample the tags the moment thread 3 arrives.
    machine.run_until(arrival_time)
    s1 = t1.sched.get("S", 0.0)
    s2 = t2.sched.get("S", 0.0)
    machine.run_until(arrival_time + QUANTUM)  # let the arrival process
    s3 = t3.sched.get("S", 0.0)
    machine.run_until(horizon)

    times = regular_times(0.0, horizon, sample_step)
    series = {
        task.name: cumulative_series(task, times)
        for task in (t1, t2, t3)
    }
    starvation = longest_starvation(
        t1, arrival_time, horizon, resolution=QUANTUM * 10
    )
    return Fig1Result(
        scheduler=scheduler.name,
        tags_at_arrival=(s1, s2),
        s3_initial=s3,
        t1_starvation=starvation,
        series=series,
        tasks={t.name: t for t in (t1, t2, t3)},
    )


def render(result: Fig1Result) -> str:
    """Text rendition of Figure 1 plus the Example 1 tag table."""
    s1, s2 = result.tags_at_arrival
    lines = [
        f"Figure 1 / Example 1 under {result.scheduler}",
        f"  start tags when T3 arrives: S1={s1:.1f}  S2={s2:.1f}  "
        f"(paper: S1=1000q, S2=100q in units of q/w)",
        f"  T3 initialized at S3={result.s3_initial:.1f} (the minimum tag)",
        f"  T1 longest starvation after T3's arrival: "
        f"{result.t1_starvation:.3f} s "
        f"(paper: ~900 quanta = {900 * QUANTUM:.1f} s under plain SFQ)",
        "",
        line_chart(
            result.series,
            title="cumulative CPU service (s)",
            xlabel="time (s)",
            ylabel="service (s)",
        ),
    ]
    return "\n".join(lines)
