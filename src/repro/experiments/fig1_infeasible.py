"""Figure 1 / Example 1 — the infeasible weights problem under SFQ.

The scenario (§1.2): a dual-processor running SFQ with quantum 1 ms.
Threads 1 and 2 (weights 1 and 10) arrive at t=0 and are compute-bound;
at t = 1000 quanta a third compute-bound thread with weight 1 arrives,
initialized at the minimum start tag (100). Threads 2 and 3 then run
continuously until their tags catch up with thread 1's tag of 1000 —
thread 1, despite sharing thread 3's weight, **starves for ~900
quanta**.

``run()`` reproduces the trace via a declarative
:class:`~repro.scenario.spec.Scenario`; the result records the tag
values at arrival, the measured starvation interval of thread 1, and
the cumulative-service series of all three threads. Running the same
scenario with ``readjust=True`` (or with SFS) removes the starvation —
the per-figure benchmark asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.analysis.timeseries import regular_times
from repro.experiments.common import resolve_scheduler
from repro.scenario import Probe, Scenario, run_scenario, task
from repro.sim.task import Task

__all__ = ["Fig1Result", "run", "render", "scenario"]

#: Example 1 parameters
QUANTUM = 0.001  # 1 ms
ARRIVAL_QUANTA = 1000  # thread 3 arrives after 1000 quanta

#: experiment name -> (registry name, constructor params)
_SCHEDULERS = {
    "sfq": ("sfq", {"readjust": False}),
    "sfq-readjust": ("sfq", {"readjust": True}),
    "sfs": ("sfs", {}),
}


@dataclass
class Fig1Result:
    """Outcome of the Example 1 scenario for one scheduler."""

    scheduler: str
    #: start tags (S1, S2) the instant thread 3 arrives
    tags_at_arrival: tuple[float, float]
    #: thread 3's initial start tag (the virtual time at arrival)
    s3_initial: float
    #: longest no-progress interval of thread 1 after thread 3 arrives, s
    t1_starvation: float
    #: cumulative service curves per thread
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    tasks: dict[str, Task] = field(default_factory=dict)


def _probe_t1_t2_tags(machine, tasks) -> tuple[float, float]:
    """Start tags of T1/T2 the moment thread 3 arrives."""
    return (tasks["T1"].sched.get("S", 0.0), tasks["T2"].sched.get("S", 0.0))


def _probe_t3_tag(machine, tasks) -> float:
    """T3's start tag once its arrival has been processed."""
    return tasks["T3"].sched.get("S", 0.0)


def scenario(
    scheduler_name: str = "sfq", horizon_quanta: int = 2500
) -> Scenario:
    """The Example 1 population as a declarative scenario."""
    registry_name, params = resolve_scheduler(_SCHEDULERS, scheduler_name)
    arrival_time = ARRIVAL_QUANTA * QUANTUM
    return Scenario(
        name=f"fig1-{scheduler_name}",
        scheduler=registry_name,
        scheduler_params=params,
        cpus=2,
        quantum=QUANTUM,
        duration=horizon_quanta * QUANTUM,
        tasks=(
            task("T1", 1),
            task("T2", 10),
            task("T3", 1, at=arrival_time),
        ),
        probes=(
            Probe(arrival_time, _probe_t1_t2_tags),
            Probe(arrival_time + QUANTUM, _probe_t3_tag),
        ),
    )


def run(
    scheduler_name: str = "sfq",
    horizon_quanta: int = 2500,
    sample_step: float = 0.05,
) -> Fig1Result:
    """Run Example 1 under ``sfq``, ``sfq-readjust`` or ``sfs``."""
    spec = scenario(scheduler_name, horizon_quanta)
    result = run_scenario(spec)
    arrival_time = ARRIVAL_QUANTA * QUANTUM
    horizon = spec.duration
    (s1, s2), s3 = result.probes
    times = regular_times(0.0, horizon, sample_step)
    series = {
        name: result.series(name, times) for name in ("T1", "T2", "T3")
    }
    return Fig1Result(
        scheduler=result.scheduler.name,
        tags_at_arrival=(s1, s2),
        s3_initial=s3,
        t1_starvation=result.starvation(
            "T1", arrival_time, horizon, resolution=QUANTUM * 10
        ),
        series=series,
        tasks=dict(result.tasks),
    )


def render(result: Fig1Result) -> str:
    """Text rendition of Figure 1 plus the Example 1 tag table."""
    s1, s2 = result.tags_at_arrival
    lines = [
        f"Figure 1 / Example 1 under {result.scheduler}",
        f"  start tags when T3 arrives: S1={s1:.1f}  S2={s2:.1f}  "
        "(paper: S1=1000q, S2=100q in units of q/w)",
        f"  T3 initialized at S3={result.s3_initial:.1f} (the minimum tag)",
        "  T1 longest starvation after T3's arrival: "
        f"{result.t1_starvation:.3f} s "
        f"(paper: ~900 quanta = {900 * QUANTUM:.1f} s under plain SFQ)",
        "",
        line_chart(
            result.series,
            title="cumulative CPU service (s)",
            xlabel="time (s)",
            ylabel="service (s)",
        ),
    ]
    return "\n".join(lines)
