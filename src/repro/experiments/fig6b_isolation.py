"""Figure 6(b) — application isolation: MPEG decoding vs compilations.

§4.4: *"we ran the mpeg_play software decoder in the presence of a
background compilation workload. The decoder was given a large weight
[...] Simultaneously, we ran a varying number of gcc compile jobs, each
with a weight of 1. [...] assigning a large weight to the decoder
ensures that the readjustment algorithm will effectively assign it the
bandwidth of one processor, and the compilation jobs share the
bandwidth of the other processor."*

Expected shape: under SFS the frame rate stays ~flat (slight droop) as
compilations increase; under Linux time sharing it collapses roughly as
``2/(n+1)`` of the machine goes to the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import line_chart
from repro.experiments.common import resolve_scheduler
from repro.scenario import Compile, Mpeg, Scenario, run_scenario, task

__all__ = ["Fig6bResult", "run", "render", "scenario"]

#: decoder parameters: ~30 fps clip, 27 ms/frame decode cost
FRAME_COST = 0.027
TARGET_FPS = 30.0
DECODER_WEIGHT = 100.0
HORIZON = 30.0
WARMUP = 2.0

#: experiment name -> registry name (restricted to the paper's pair)
_SCHEDULERS = {"sfs": "sfs", "linux-ts": "linux-ts"}


@dataclass
class Fig6bResult:
    """Frame rate vs number of simultaneous compilations."""

    #: scheduler name -> list of (n_compilations, achieved fps)
    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)


def scenario(scheduler_name: str, n_compiles: int, seed: int) -> Scenario:
    """Decoder + ``n`` compile jobs as a declarative scenario."""
    registry_name = resolve_scheduler(_SCHEDULERS, scheduler_name)
    return Scenario(
        name=f"fig6b-{scheduler_name}-n{n_compiles}",
        scheduler=registry_name,
        duration=HORIZON,
        record_events=False,
        tasks=(
            task(
                "mpeg_play",
                DECODER_WEIGHT,
                Mpeg(frame_cost=FRAME_COST, target_fps=TARGET_FPS),
            ),
            *(
                task(f"gcc-{i + 1}", 1, Compile(seed=seed * 1000 + i))
                for i in range(n_compiles)
            ),
        ),
    )


def _run_one(scheduler_name: str, n_compiles: int, seed: int) -> float:
    result = run_scenario(scenario(scheduler_name, n_compiles, seed))
    return result.behavior("mpeg_play").achieved_fps(WARMUP, HORIZON)


def run(
    compile_counts: tuple[int, ...] = (0, 1, 2, 4, 6, 8, 10),
    schedulers: tuple[str, ...] = ("sfs", "linux-ts"),
    seed: int = 7,
) -> Fig6bResult:
    """Sweep compilation counts for each scheduler."""
    result = Fig6bResult()
    for name in schedulers:
        result.curves[name] = [
            (n, _run_one(name, n, seed)) for n in compile_counts
        ]
    return result


def render(result: Fig6bResult) -> str:
    lines = ["Figure 6(b) — MPEG frame rate vs background compilations"]
    for name, points in result.curves.items():
        row = "  ".join(f"n={n}:{fps:5.1f}" for n, fps in points)
        lines.append(f"  {name:10s} fps: {row}")
    lines.append("")
    series = {
        name: [(float(n), fps) for n, fps in pts]
        for name, pts in result.curves.items()
    }
    lines.append(
        line_chart(
            series,
            title="MPEG frame rate (fps) — paper: SFS flat ~30, TS collapsing",
            xlabel="simultaneous compilations",
            ylabel="frames/sec",
        )
    )
    return "\n".join(lines)
