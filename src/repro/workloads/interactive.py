"""The ``Interact`` application: an I/O-bound interactive workload.

Fig. 6(c) of the paper measures the *response time* of an interactive
application running against a compute-intensive background (disksim
processes): the time from an input event (end of think time / I/O
completion) to the completion of the short CPU burst that handles it.

:class:`Interactive` alternates ``Block(think)`` and ``Run(burst)``;
think times and burst lengths may be randomized (exponential around the
mean) to avoid lockstep artifacts. Every response time is recorded.
"""

from __future__ import annotations

import random

from repro.sim.events import Block, Run, Segment
from repro.workloads.base import Behavior

__all__ = ["Interactive"]


class Interactive(Behavior):
    """Think/compute loop with response-time accounting.

    Parameters
    ----------
    think_time:
        Mean wall-clock pause between requests (seconds).
    burst:
        Mean CPU demand of handling one request (seconds).
    rng:
        Randomize think/burst exponentially with this generator; if
        None, both are deterministic constants.
    """

    def __init__(
        self,
        think_time: float = 1.0,
        burst: float = 0.005,
        rng: random.Random | None = None,
    ) -> None:
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {think_time}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.think_time = think_time
        self.burst = burst
        self.rng = rng
        #: (wake time, response time) pairs, one per completed request
        self.responses: list[tuple[float, float]] = []
        self._woke_at: float | None = None
        self._in_burst = False

    def _sample(self, mean: float) -> float:
        if self.rng is None:
            return mean
        return self.rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def start(self, now: float) -> Segment:
        return Block(self._sample(self.think_time))

    def next_segment(self, now: float) -> Segment:
        if self._in_burst:
            # The CPU burst just completed: record the response time.
            assert self._woke_at is not None
            self.responses.append((self._woke_at, now - self._woke_at))
            self._in_burst = False
            return Block(self._sample(self.think_time))
        # Think time elapsed: a request arrived, handle it.
        self._woke_at = now
        self._in_burst = True
        return Run(self._sample(self.burst))

    @property
    def response_times(self) -> list[float]:
        """Response times of all completed requests, in order."""
        return [r for _, r in self.responses]

    def mean_response_time(self) -> float:
        """Average response time (0 if no request completed)."""
        times = self.response_times
        return sum(times) / len(times) if times else 0.0
