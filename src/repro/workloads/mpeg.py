"""The ``mpeg_play`` software MPEG-1 decoder workload.

Fig. 6(b) gives the decoder a large weight and measures the achieved
frame rate while gcc compilations compete for the CPU. The decoder
model captures exactly the properties that figure exercises:

- each frame costs ``frame_cost`` seconds of CPU to decode;
- the clip plays at ``target_fps``; when the decoder is *ahead* of the
  display schedule it sleeps until the next frame's display time (a
  real decoder paces itself against the clip clock);
- when it is *behind* (CPU-starved) it decodes back-to-back, and the
  achieved frame rate drops below the target — frames are delivered
  late rather than dropped, matching the Berkeley ``mpeg_play``.

The paper's clip: 5 minutes of 1.49 Mb/s MPEG-1. At ~30 fps target and
the default 27 ms/frame decode cost the decoder needs ~81 % of one
500 MHz CPU, so it saturates near 30 fps with a full processor and
degrades proportionally with its CPU share — the Fig. 6(b) behaviour.
"""

from __future__ import annotations

from repro.sim.events import Block, Exit, Run, Segment
from repro.workloads.base import Behavior

__all__ = ["MpegDecoder"]


class MpegDecoder(Behavior):
    """Paced frame-decoding loop with achieved-fps accounting.

    Parameters
    ----------
    frame_cost:
        CPU seconds to decode one frame.
    target_fps:
        The clip's nominal display rate.
    total_frames:
        Stop (exit) after this many frames; None plays forever.
    """

    def __init__(
        self,
        frame_cost: float = 0.027,
        target_fps: float = 30.0,
        total_frames: int | None = None,
    ) -> None:
        if frame_cost <= 0:
            raise ValueError(f"frame_cost must be > 0, got {frame_cost}")
        if target_fps <= 0:
            raise ValueError(f"target_fps must be > 0, got {target_fps}")
        self.frame_cost = frame_cost
        self.target_fps = target_fps
        self.total_frames = total_frames
        #: completion (display) time of each decoded frame
        self.frame_times: list[float] = []
        self._playback_start: float | None = None
        self._decoding = False

    def start(self, now: float) -> Segment:
        self._playback_start = now
        self._decoding = True
        return Run(self.frame_cost)

    def next_segment(self, now: float) -> Segment:
        if not self._decoding:
            # Pacing sleep elapsed: begin decoding the next frame.
            self._decoding = True
            return Run(self.frame_cost)
        # A frame just finished decoding.
        self.frame_times.append(now)
        if self.total_frames is not None and len(self.frame_times) >= self.total_frames:
            return Exit()
        assert self._playback_start is not None
        next_due = self._playback_start + len(self.frame_times) / self.target_fps
        if now < next_due:
            # Ahead of schedule: sleep to the next frame's display time.
            self._decoding = False
            return Block(next_due - now)
        # Behind schedule: decode the next frame immediately.
        return Run(self.frame_cost)

    def achieved_fps(self, t0: float, t1: float) -> float:
        """Frames completed per second over the window [t0, t1)."""
        if t1 <= t0:
            return 0.0
        count = sum(1 for t in self.frame_times if t0 <= t < t1)
        return count / (t1 - t0)
