"""Compute-bound workloads: the paper's ``Inf`` and ``dhrystone``.

``Inf`` "performs computations in an infinite loop" — the workhorse of
Figs. 1, 4 and 5, where the y-axis is the cumulative number of loop
iterations. ``dhrystone`` is the integer benchmark of Fig. 6(a); for
scheduling purposes both are pure CPU loops, differing only in the
calibrated iterations-per-second rate used to convert CPU service to
loop counts.

The default rate (~80 k iterations/s for Inf) is chosen so a thread
owning a full CPU for 30 s reaches ~2.4 M iterations, matching the
scale of the paper's Fig. 4/5 axes on the 500 MHz Pentium-III.
"""

from __future__ import annotations

from repro.sim.events import Exit, Run, RUN_FOREVER, Segment
from repro.sim.task import Task
from repro.workloads.base import Behavior

__all__ = [
    "Infinite",
    "FiniteCompute",
    "INF_ITER_RATE",
    "DHRYSTONE_ITER_RATE",
    "iterations",
]

#: calibrated loop rates (iterations per CPU-second) on the testbed
INF_ITER_RATE = 80_000.0
DHRYSTONE_ITER_RATE = 230_000.0


class Infinite(Behavior):
    """Run forever (the paper's Inf application and dhrystone loop)."""

    def start(self, now: float) -> Segment:
        return Run(RUN_FOREVER)

    def next_segment(self, now: float) -> Segment:  # pragma: no cover
        # An infinite Run never completes, so this is unreachable in a
        # correct machine; raise loudly if it ever happens.
        raise AssertionError("Infinite behaviour asked for a next segment")


class FiniteCompute(Behavior):
    """Consume ``cpu_seconds`` of CPU, then exit.

    The building block of the short-lived tasks of Fig. 5 (``T_short``
    runs 300 ms each) and Example 2's transient jobs.
    """

    def __init__(self, cpu_seconds: float) -> None:
        if cpu_seconds < 0:
            raise ValueError(f"cpu_seconds must be >= 0, got {cpu_seconds}")
        self.cpu_seconds = cpu_seconds
        self.completed_at: float | None = None

    def start(self, now: float) -> Segment:
        return Run(self.cpu_seconds)

    def next_segment(self, now: float) -> Segment:
        self.completed_at = now
        return Exit()


def iterations(task: Task, rate: float = INF_ITER_RATE) -> float:
    """Cumulative loop iterations executed by a compute-bound task."""
    return task.service * rate
