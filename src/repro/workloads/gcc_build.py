"""gcc compilation jobs — the background load of Fig. 6(b).

The paper runs "a varying number of gcc compile jobs, each with a
weight of 1", noting that multiple simultaneous compilations correspond
to ``make -j``. A compile job is mostly CPU-bound but periodically
touches the filesystem (reading headers, writing intermediate files),
so it is modelled as exponential CPU bursts separated by short I/O
waits. An endless stream of compilation units keeps the load steady for
the duration of the experiment (the paper's clip runs five minutes).
"""

from __future__ import annotations

import random

from repro.sim.events import Block, Exit, Run, Segment
from repro.workloads.base import Behavior

__all__ = ["CompileJob"]


class CompileJob(Behavior):
    """A gcc-like compile process.

    Parameters
    ----------
    rng:
        Source of burst/IO randomness (required; compile jobs with the
        same seed are identical, which experiments rely on).
    burst_mean:
        Mean CPU burst between file operations (seconds).
    io_mean:
        Mean blocking time of one file operation (seconds).
    total_cpu:
        CPU seconds after which the job exits; None compiles forever.
    """

    def __init__(
        self,
        rng: random.Random,
        burst_mean: float = 0.08,
        io_mean: float = 0.004,
        total_cpu: float | None = None,
    ) -> None:
        if burst_mean <= 0:
            raise ValueError(f"burst_mean must be > 0, got {burst_mean}")
        if io_mean < 0:
            raise ValueError(f"io_mean must be >= 0, got {io_mean}")
        self.rng = rng
        self.burst_mean = burst_mean
        self.io_mean = io_mean
        self.total_cpu = total_cpu
        self.cpu_consumed = 0.0
        self._in_burst = False
        self._burst_len = 0.0

    def _next_burst(self) -> Segment:
        burst = self.rng.expovariate(1.0 / self.burst_mean)
        if self.total_cpu is not None:
            remaining = self.total_cpu - self.cpu_consumed
            if remaining <= 0:
                return Exit()
            burst = min(burst, remaining)
        self._in_burst = True
        self._burst_len = burst
        return Run(burst)

    def start(self, now: float) -> Segment:
        return self._next_burst()

    def next_segment(self, now: float) -> Segment:
        if self._in_burst:
            self.cpu_consumed += self._burst_len
            self._in_burst = False
            if self.total_cpu is not None and self.cpu_consumed >= self.total_cpu:
                return Exit()
            io = self.rng.expovariate(1.0 / self.io_mean) if self.io_mean > 0 else 0.0
            return Block(io)
        return self._next_burst()
