"""Workloads used in the paper's evaluation (§4.1).

- :class:`Infinite` — the ``Inf`` compute loop (Figs. 1, 4, 5);
- :class:`FiniteCompute` — fixed-CPU jobs (T_short of Fig. 5);
- :class:`ShortJobFeeder` — the back-to-back short-job arrival process;
- :class:`Interactive` — the ``Interact`` I/O-bound app (Fig. 6(c));
- :class:`MpegDecoder` — ``mpeg_play`` software decoding (Fig. 6(b));
- :class:`CompileJob` — gcc compile jobs (Fig. 6(b));
- :class:`DisksimBatch` — disksim background simulations (Fig. 6(c));
- :class:`TokenRing` — lmbench ``lat_ctx`` (Table 1, Fig. 7);
- :class:`GeneratorBehavior` — adapter for ad-hoc behaviours.
"""

from repro.workloads.base import Behavior, GeneratorBehavior
from repro.workloads.cpu_bound import (
    DHRYSTONE_ITER_RATE,
    FiniteCompute,
    INF_ITER_RATE,
    Infinite,
    iterations,
)
from repro.workloads.disksim import DisksimBatch
from repro.workloads.gcc_build import CompileJob
from repro.workloads.interactive import Interactive
from repro.workloads.lmbench import RingProcess, TokenRing
from repro.workloads.mpeg import MpegDecoder
from repro.workloads.shortjobs import ShortJobFeeder

__all__ = [
    "Behavior",
    "CompileJob",
    "DHRYSTONE_ITER_RATE",
    "DisksimBatch",
    "FiniteCompute",
    "GeneratorBehavior",
    "INF_ITER_RATE",
    "Infinite",
    "Interactive",
    "MpegDecoder",
    "RingProcess",
    "ShortJobFeeder",
    "TokenRing",
    "iterations",
]
