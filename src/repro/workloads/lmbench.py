"""lmbench ``lat_ctx`` — the context-switch latency micro-benchmark.

Table 1 and Fig. 7 of the paper report lmbench's context-switch times
under the time-sharing scheduler and SFS. ``lat_ctx`` arranges N
processes in a ring connected by pipes; each process reads a token
(blocking), optionally sums an array of a given size (to dirty the
cache), and writes the token to the next process. The time per switch
is the measured round time divided by N, minus the pure work time.

:class:`TokenRing` reproduces this inside the simulator using
``Block(inf)`` waits and ``Machine.signal_later`` wakeups. Each pass
therefore costs ``work_cost`` of CPU plus whatever the machine's cost
model charges for the dispatch (context-switch base + cache restoration
for the process footprint + scheduler decision cost), which is exactly
the quantity lmbench observes.
"""

from __future__ import annotations

from repro.sim.events import Block, Exit, Run, Segment
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import Behavior

__all__ = ["TokenRing", "RingProcess"]


class RingProcess(Behavior):
    """One process of the lat_ctx ring (see :class:`TokenRing`)."""

    def __init__(self, ring: "TokenRing", index: int) -> None:
        self.ring = ring
        self.index = index
        self._working = False

    def start(self, now: float) -> Segment:
        if self.index == 0:
            # Process 0 holds the token initially.
            self.ring.work_started(now)
            self._working = True
            return Run(self.ring.work_cost)
        return Block(float("inf"))

    def next_segment(self, now: float) -> Segment:
        if self._working:
            self._working = False
            return self.ring.work_finished(self.index, now)
        # Token arrived (signal woke us): do this pass's work.
        self._working = True
        return Run(self.ring.work_cost)


class TokenRing:
    """Coordinator for the lat_ctx ring.

    Parameters
    ----------
    machine:
        Machine to run on (normally with ``TESTBED_COST``).
    nprocs:
        Ring size (Table 1 uses 2, 8 and 16; Fig. 7 sweeps 2..50).
    passes:
        Token passes to measure before finishing.
    work_cost:
        CPU seconds of array-summing work per pass (0 for "0 KB").
    footprint_kb:
        Working-set size of each process (drives cache restoration).
    start_at:
        Arrival time of the ring processes.
    """

    def __init__(
        self,
        machine: Machine,
        nprocs: int,
        passes: int,
        work_cost: float = 0.0,
        footprint_kb: float = 0.0,
        start_at: float = 0.0,
    ) -> None:
        if nprocs < 2:
            raise ValueError(f"a ring needs >= 2 processes, got {nprocs}")
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.machine = machine
        self.nprocs = nprocs
        self.passes = passes
        self.work_cost = work_cost
        self.pass_count = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.tasks: list[Task] = []
        for i in range(nprocs):
            task = Task(
                RingProcess(self, i),
                weight=1.0,
                name=f"ring-{i}",
                footprint_kb=footprint_kb,
            )
            self.tasks.append(task)
            machine.add_task(task, at=start_at)

    # -- callbacks from RingProcess ------------------------------------

    def work_started(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now

    def work_finished(self, index: int, now: float) -> Segment:
        self.pass_count += 1
        if self.pass_count >= self.passes:
            self.finished_at = now
            return Exit()
        nxt = self.tasks[(index + 1) % self.nprocs]
        # Deferred signal: fires after the current event completes, by
        # which time this process is safely blocked.
        self.machine.signal_later(nxt, 0.0)
        return Block(float("inf"))

    # -- results ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def switch_time(self) -> float:
        """Measured context-switch latency: round time minus work time.

        This is lmbench's computation: elapsed / passes - work.
        """
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError("ring has not completed its passes yet")
        elapsed = self.finished_at - self.started_at
        per_pass = elapsed / self.pass_count
        return max(0.0, per_pass - self.work_cost)

    def run(self, max_time: float = 3600.0) -> float:
        """Drive the machine until the ring completes; return switch time."""
        step = 1.0
        t = self.machine.now
        while not self.done and t < max_time:
            t = min(max_time, t + step)
            self.machine.run_until(t)
        if not self.done:
            raise RuntimeError(f"ring did not finish within {max_time} s")
        return self.switch_time()
