"""The short-jobs arrival process of Example 2 and Fig. 5.

§4.3: *"we then introduced a sequence of short Inf tasks (T_short) into
the system. Each of these short tasks was assigned a weight of 5 and
ran for 300 ms each; each short task was introduced only after the
previous one finished."*

:class:`ShortJobFeeder` reproduces that process: it creates a
:class:`~repro.workloads.cpu_bound.FiniteCompute` task, and when the
machine reports its exit, immediately introduces the next one (with an
optional gap). The cumulative service of the whole T_short *sequence*
is what Fig. 5 plots as one curve.
"""

from __future__ import annotations

from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import FiniteCompute

__all__ = ["ShortJobFeeder"]


class ShortJobFeeder:
    """Back-to-back short CPU jobs, next arriving when previous exits.

    Parameters
    ----------
    machine:
        The machine to feed (the feeder registers an exit observer).
    weight:
        Weight of every short job (paper: 5; Example 2 uses 100).
    job_cpu:
        CPU seconds each job consumes (paper: 300 ms).
    first_arrival:
        Absolute time of the first job's arrival.
    gap:
        Wall-clock pause between a job's exit and the next arrival.
    name_prefix:
        Tasks are named ``{prefix}-1``, ``{prefix}-2``, ...
    """

    def __init__(
        self,
        machine: Machine,
        weight: float = 5.0,
        job_cpu: float = 0.3,
        first_arrival: float = 0.0,
        gap: float = 0.0,
        name_prefix: str = "T_short",
    ) -> None:
        if job_cpu <= 0:
            raise ValueError(f"job_cpu must be > 0, got {job_cpu}")
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        self.machine = machine
        self.weight = weight
        self.job_cpu = job_cpu
        self.gap = gap
        self.name_prefix = name_prefix
        self.jobs: list[Task] = []
        machine.on_task_exit.append(self._on_exit)
        self._spawn(first_arrival)

    def _spawn(self, at: float) -> None:
        task = Task(
            FiniteCompute(self.job_cpu),
            weight=self.weight,
            name=f"{self.name_prefix}-{len(self.jobs) + 1}",
        )
        self.jobs.append(task)
        self.machine.add_task(task, at=at)

    def _on_exit(self, task: Task, now: float) -> None:
        if self.jobs and task is self.jobs[-1]:
            self._spawn(now + self.gap)

    @property
    def completed(self) -> int:
        """Number of short jobs that have finished."""
        return sum(1 for t in self.jobs if t.exit_time is not None)

    def total_service(self) -> float:
        """CPU service consumed by the whole short-job sequence."""
        return sum(t.service for t in self.jobs)

    def service_series(self) -> list[tuple[float, float]]:
        """Merged cumulative (time, service) series across all jobs.

        Fig. 5 plots T_short as a single cumulative curve; jobs run
        one-at-a-time, so concatenating their sample points with a
        running offset gives the sequence's curve.
        """
        points: list[tuple[float, float]] = []
        offset = 0.0
        for task in self.jobs:
            for t, s in task.series:
                points.append((t, offset + s))
            offset += task.service
        points.sort(key=lambda p: p[0])
        return points
