"""Behaviour interface for workloads.

A *behaviour* tells the machine what a task does: the machine calls
:meth:`Behavior.start` when the task arrives and
:meth:`Behavior.next_segment` every time the previous segment completes
(a Run finished, or a Block's sleep elapsed). Both receive the current
simulation time, so behaviours can implement real-time logic such as an
MPEG decoder sleeping until its next frame deadline.

For one-off behaviours, :class:`GeneratorBehavior` adapts a plain
generator::

    def two_bursts():
        now = yield Run(0.5)      # run half a second of CPU
        now = yield Block(1.0)    # sleep one second
        now = yield Run(0.25)
        yield Exit()

    task = Task(GeneratorBehavior(two_bursts()), weight=1)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator

from repro.sim.events import Exit, Segment

__all__ = ["Behavior", "GeneratorBehavior"]


class Behavior(ABC):
    """Produces the segment sequence of a task."""

    @abstractmethod
    def start(self, now: float) -> Segment:
        """First segment, produced when the task arrives."""

    @abstractmethod
    def next_segment(self, now: float) -> Segment:
        """Next segment, produced when the previous one completes."""


class GeneratorBehavior(Behavior):
    """Adapts ``Generator[Segment, float, None]`` to the Behavior API.

    The generator yields segments and receives the completion time of
    each yielded segment via ``send``. Plain iterators (lists of
    segments, ``iter([...])``) are accepted too — they just cannot see
    completion times. When the source is exhausted the task exits.
    """

    def __init__(self, gen: Generator[Segment, float, None]) -> None:
        self._gen = gen
        self._can_send = hasattr(gen, "send")
        self._started = False

    def start(self, now: float) -> Segment:
        if self._started:
            raise RuntimeError("GeneratorBehavior cannot be restarted")
        self._started = True
        try:
            return next(self._gen)
        except StopIteration:
            return Exit()

    def next_segment(self, now: float) -> Segment:
        try:
            if self._can_send:
                return self._gen.send(now)
            return next(self._gen)
        except StopIteration:
            return Exit()
