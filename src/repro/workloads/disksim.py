"""disksim — the compute-intensive background simulation of Fig. 6(c).

The paper uses the publicly available disksim disk simulator purely as
"a background simulation workload": a long-running, CPU-hungry batch
process. A trace-driven simulator spends virtually all its time in
event-processing loops with rare checkpoint writes, so the model is a
long CPU loop with optional, infrequent, short blocking pauses.
"""

from __future__ import annotations

import random

from repro.sim.events import Block, Run, RUN_FOREVER, Segment
from repro.workloads.base import Behavior

__all__ = ["DisksimBatch"]


class DisksimBatch(Behavior):
    """A disksim-like batch simulation process.

    Parameters
    ----------
    checkpoint_every:
        Mean CPU seconds between checkpoint writes; None disables
        checkpoints entirely (pure CPU loop).
    checkpoint_io:
        Blocking time of one checkpoint write (seconds).
    rng:
        Randomness for checkpoint spacing (required if checkpoints on).
    """

    def __init__(
        self,
        checkpoint_every: float | None = None,
        checkpoint_io: float = 0.002,
        rng: random.Random | None = None,
    ) -> None:
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise ValueError(
                    f"checkpoint_every must be > 0, got {checkpoint_every}"
                )
            if rng is None:
                raise ValueError("rng is required when checkpoints are enabled")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_io = checkpoint_io
        self.rng = rng
        self._computing = False

    def _compute(self) -> Segment:
        self._computing = True
        if self.checkpoint_every is None:
            return Run(RUN_FOREVER)
        assert self.rng is not None
        return Run(self.rng.expovariate(1.0 / self.checkpoint_every))

    def start(self, now: float) -> Segment:
        return self._compute()

    def next_segment(self, now: float) -> Segment:
        if self._computing:
            self._computing = False
            return Block(self.checkpoint_io)
        return self._compute()
