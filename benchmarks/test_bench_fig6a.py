"""Figure 6(a) — proportionate allocation of dhrystone benchmarks.

Paper shape: the two foreground dhrystones' loop rates stand in the
requested weight ratios 1:1, 1:2, 1:4, 1:7.
"""

from conftest import record, run_once
from repro.experiments import fig6a_proportional


def test_fig6a_sfs_proportional(benchmark):
    result = run_once(benchmark, fig6a_proportional.run, "sfs")
    record(
        benchmark,
        fig6a_proportional.render(result),
        **{
            f"ratio_{w1}_{w2}": result.measured_ratio((w1, w2))
            for (w1, w2) in result.rates
        },
    )
    for (w1, w2) in result.rates:
        requested = w2 / w1
        measured = result.measured_ratio((w1, w2))
        assert abs(measured - requested) / requested < 0.25, (w1, w2)
    # Ratios are strictly increasing across the four assignments.
    ratios = [result.measured_ratio(p) for p in result.rates]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


def test_fig6a_gms_reference_exact(benchmark):
    result = run_once(
        benchmark,
        fig6a_proportional.run,
        "gms-reference",
        horizon=60.0,
        warmup=10.0,
        quantum_jitter=0.0,
    )
    record(benchmark, fig6a_proportional.render(result))
    for (w1, w2) in result.rates:
        assert abs(result.measured_ratio((w1, w2)) - w2 / w1) / (w2 / w1) < 0.1
