"""Ablation — weight readjustment on/off across the GPS baselines.

§2.1: "Our weight readjustment algorithm can be employed with most
existing GPS-based scheduling algorithms ... doing so enables these
schedulers to significantly reduce (but not eliminate) the unfairness."
This bench runs the Example-1 workload under every GPS baseline with
readjustment off and on, and reports the starvation each exhibits.
"""

import pytest

from conftest import record
from repro.analysis.fairness import longest_starvation
from repro.schedulers.bvt import BorrowedVirtualTimeScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.schedulers.stride import StrideScheduler
from repro.schedulers.wfq import WeightedFairQueueingScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite

BASELINES = {
    "sfq": StartTimeFairScheduler,
    "stride": StrideScheduler,
    "wfq": WeightedFairQueueingScheduler,
    "bvt": BorrowedVirtualTimeScheduler,
}


def example1_starvation(scheduler) -> float:
    machine = Machine(scheduler, cpus=2, quantum=0.001, record_events=False)
    t1 = machine.add_task(Task(Infinite(), weight=1, name="T1"))
    machine.add_task(Task(Infinite(), weight=10, name="T2"))
    machine.add_task(Task(Infinite(), weight=1, name="T3"), at=1.0)
    machine.run_until(2.2)
    return longest_starvation(t1, 1.0, 2.2, resolution=0.01)


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_readjustment_rescues_gps_baseline(benchmark, name):
    cls = BASELINES[name]

    def both():
        return example1_starvation(cls()), example1_starvation(cls(readjust=True))

    plain, readjusted = benchmark.pedantic(both, rounds=1, iterations=1)
    record(
        benchmark,
        f"{name}: Example-1 starvation plain={plain:.3f}s "
        f"readjusted={readjusted:.3f}s",
        plain_starvation_s=plain,
        readjusted_starvation_s=readjusted,
    )
    # Plain GPS baselines starve T1 for most of the 0.9 s window ...
    assert plain > 0.5, f"{name} unexpectedly avoided starvation"
    # ... and readjustment (§2.1) removes it.
    assert readjusted < 0.2, f"{name}+readjust still starves"
    assert readjusted < plain / 3
