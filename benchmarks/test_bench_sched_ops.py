"""Real (wall-clock) microbenchmarks of the scheduler implementations.

Complements the simulated overheads of Table 1 / Fig. 7 with genuine
measurements of *this* code base: the §3.2 complexity claims translate
into pick-next cost that grows with run-queue length for exact SFS,
stays ~constant for the bounded-scan heuristic, and a readjustment pass
that costs O(p) beyond its sort.
"""

import random

import pytest

from repro.core.sfs import SurplusFairScheduler
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.core.weights import readjust
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite


def populated_machine(scheduler, n_tasks, cpus=4, seed=1):
    """A machine advanced into steady state with ``n_tasks`` runnable."""
    rng = random.Random(seed)
    machine = Machine(scheduler, cpus=cpus, quantum=0.05,
                      sample_service=False, record_events=False)
    for i in range(n_tasks):
        w = rng.choice([1, 1, 2, 4, 8, 16])
        machine.add_task(Task(Infinite(), weight=w, name=f"T{i}"))
    machine.run_until(5.0)
    return machine


SCHEDULERS = {
    "sfs-exact": SurplusFairScheduler,
    "sfs-heuristic": HeuristicSurplusFairScheduler,
    "sfq": StartTimeFairScheduler,
    "linux-ts": LinuxTimeSharingScheduler,
}


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
@pytest.mark.parametrize("n_tasks", [10, 100, 400])
def test_pick_next_cost(benchmark, name, n_tasks):
    machine = populated_machine(SCHEDULERS[name](), n_tasks)
    scheduler = machine.scheduler
    now = machine.now

    benchmark.extra_info["scheduler"] = name
    benchmark.extra_info["runnable"] = n_tasks
    benchmark(scheduler.pick_next, 0, now)


@pytest.mark.parametrize("n_tasks", [10, 100, 400])
def test_quantum_end_bookkeeping_cost_sfs(benchmark, n_tasks):
    """Tag update + surplus reposition at a quantum boundary."""
    machine = populated_machine(SurplusFairScheduler(), n_tasks)
    scheduler = machine.scheduler
    task = machine.processors[0].task
    assert task is not None

    def quantum_end_and_repick():
        scheduler.on_preempt(task, machine.now, 0.05)
        scheduler.pick_next(0, machine.now)

    benchmark(quantum_end_and_repick)


@pytest.mark.parametrize("n_threads", [10, 100, 1000])
def test_weight_readjustment_cost(benchmark, n_threads):
    rng = random.Random(7)
    weights = [rng.choice([1, 2, 4, 100, 1000]) for _ in range(n_threads)]
    benchmark(readjust, weights, 8)


def test_engine_event_throughput(benchmark):
    """Baseline: raw discrete-event engine dispatch rate."""
    from repro.sim.engine import Engine

    def run_10k_events():
        engine = Engine()

        def chain(count):
            if count:
                engine.schedule_after(0.001, chain, count - 1)

        chain(10_000)
        engine.run()

    benchmark.pedantic(run_10k_events, rounds=3, iterations=1)
