"""Real (wall-clock) microbenchmarks of the scheduler implementations.

Complements the simulated overheads of Table 1 / Fig. 7 with genuine
measurements of *this* code base: the §3.2 complexity claims translate
into pick-next cost that grows with run-queue length for exact SFS,
stays ~constant for the bounded-scan heuristic, and a per-event
readjustment whose cost is now *sublinear* in the runnable-set size —
the incremental frontier repairs the §2.1 cap point in O(log n + p)
where the batch scan pays O(n) (compare
``test_readjustment_per_op_cost_server`` against
``test_weight_readjustment_batch_cost`` across the N ladder).
"""

import random

import pytest

from repro.core.sfs import SurplusFairScheduler
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.core.weights import readjust
from repro.scenario import server_scenario
from repro.scenario.runner import build_machine
from repro.schedulers.linux_ts import LinuxTimeSharingScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite


def populated_machine(scheduler, n_tasks, cpus=4, seed=1):
    """A machine advanced into steady state with ``n_tasks`` runnable."""
    rng = random.Random(seed)
    machine = Machine(scheduler, cpus=cpus, quantum=0.05,
                      sample_service=False, record_events=False)
    for i in range(n_tasks):
        w = rng.choice([1, 1, 2, 4, 8, 16])
        machine.add_task(Task(Infinite(), weight=w, name=f"T{i}"))
    machine.run_until(5.0)
    return machine


def overloaded_server_machine(n_tasks, scheduler="sfs", load=1.8):
    """A server-family machine advanced to the end of its arrival window.

    At load > 1 the backlog accumulates, so the runnable set holds a
    large fraction of ``n_tasks`` — the regime where the per-event
    readjustment cost used to be the dominant O(n) term.
    """
    scn = server_scenario(
        n_tasks,
        cpus=4,
        scheduler=scheduler,
        load=load,
        sample_service=False,
        record_events=False,
    )
    machine, _, _ = build_machine(scn)
    machine.run_until(scn.tasks[-1].at)  # last arrival: peak backlog
    return machine


SCHEDULERS = {
    "sfs-exact": SurplusFairScheduler,
    "sfs-heuristic": HeuristicSurplusFairScheduler,
    "sfq": StartTimeFairScheduler,
    "linux-ts": LinuxTimeSharingScheduler,
}


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
@pytest.mark.parametrize("n_tasks", [10, 100, 400])
def test_pick_next_cost(benchmark, name, n_tasks):
    machine = populated_machine(SCHEDULERS[name](), n_tasks)
    scheduler = machine.scheduler
    now = machine.now

    benchmark.extra_info["scheduler"] = name
    benchmark.extra_info["runnable"] = n_tasks
    benchmark(scheduler.pick_next, 0, now)


@pytest.mark.parametrize("n_tasks", [10, 100, 400])
def test_quantum_end_bookkeeping_cost_sfs(benchmark, n_tasks):
    """Tag update + surplus reposition at a quantum boundary."""
    machine = populated_machine(SurplusFairScheduler(), n_tasks)
    scheduler = machine.scheduler
    task = machine.processors[0].task
    assert task is not None

    def quantum_end_and_repick():
        scheduler.on_preempt(task, machine.now, 0.05)
        scheduler.pick_next(0, machine.now)

    benchmark(quantum_end_and_repick)


@pytest.mark.parametrize("n_threads", [10, 100, 1000, 5000])
def test_weight_readjustment_batch_cost(benchmark, n_threads):
    """The batch §2.1 oracle: O(n log n) — the per-event cost SFS paid
    before the incremental frontier, kept as the scaling contrast."""
    rng = random.Random(7)
    weights = [rng.choice([1, 2, 4, 100, 1000]) for _ in range(n_threads)]
    benchmark.extra_info["n_threads"] = n_threads
    benchmark(readjust, weights, 8)


@pytest.mark.parametrize("n_tasks", [100, 1000, 5000])
def test_readjustment_per_op_cost_server(benchmark, n_tasks):
    """Per-event frontier repair on the overloaded server family.

    One runnable-set delta (leave + rejoin, the block/wakeup shape)
    against a backlog that scales with N. The acceptance claim: per-op
    cost grows *sublinearly* from N=100 to N=5000 — O(log n) queue ops
    plus an O(p) repair, versus the old O(n) batch rescan.
    """
    machine = overloaded_server_machine(n_tasks)
    frontier = machine.scheduler.frontier
    assert frontier is not None
    task = frontier.queue.head()

    def leave_and_rejoin():
        frontier.remove(task)
        frontier.add(task)

    benchmark.extra_info["n_tasks"] = n_tasks
    benchmark.extra_info["runnable"] = machine.runnable_count
    benchmark(leave_and_rejoin)
    machine.scheduler.verify_readjustment()


@pytest.mark.parametrize("n_tasks", [100, 1000, 5000])
def test_block_wakeup_event_cost_sfs_server(benchmark, n_tasks):
    """Full scheduler-hook cost of a block + wakeup pair under SFS.

    Covers everything a runnable-set change triggers — tag update,
    start-queue and surplus-queue maintenance, and the frontier repair —
    so regressions anywhere on the event path show up, not just in the
    readjustment term.
    """
    machine = overloaded_server_machine(n_tasks)
    sched = machine.scheduler
    now = machine.now
    task = sched.frontier.queue.head()

    def block_then_wake():
        sched.on_block(task, now, 0.01)
        sched.on_wakeup(task, now)

    benchmark.extra_info["n_tasks"] = n_tasks
    benchmark.extra_info["runnable"] = machine.runnable_count
    benchmark(block_then_wake)


def test_engine_event_throughput(benchmark):
    """Baseline: raw discrete-event engine dispatch rate."""
    from repro.sim.engine import Engine

    def run_10k_events():
        engine = Engine()

        def chain(count):
            if count:
                engine.schedule_after(0.001, chain, count - 1)

        chain(10_000)
        engine.run()

    benchmark.pedantic(run_10k_events, rounds=3, iterations=1)
