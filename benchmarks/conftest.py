"""Shared helpers for the figure/table regeneration benches.

Every bench regenerates one paper artifact: it runs the experiment
(timed by pytest-benchmark), prints the same rows/series the paper
reports (visible with ``pytest benchmarks/ --benchmark-only -s`` and
stored in ``benchmark.extra_info``), and asserts the paper's *shape* —
who wins, by roughly what factor, where crossovers fall.
"""

from __future__ import annotations


def record(benchmark, result_text: str, **extra) -> None:
    """Attach the rendered artifact and shape facts to the bench."""
    benchmark.extra_info["rendered"] = result_text
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    print()
    print(result_text)


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (simulations are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
