"""Figure 1 / Example 1 — infeasible weights starve SFQ.

Paper shape: under plain SFQ thread 1 starves for ~900 quanta after
thread 3 arrives; SFS (and SFQ+readjustment) remove the starvation.
"""

from conftest import record, run_once
from repro.experiments import fig1_infeasible


def test_fig1_sfq_starvation(benchmark):
    result = run_once(benchmark, fig1_infeasible.run, "sfq")
    text = fig1_infeasible.render(result)
    record(
        benchmark,
        text,
        t1_starvation_s=result.t1_starvation,
        paper_starvation_s=0.9,
        s1_at_arrival=result.tags_at_arrival[0],
        s2_at_arrival=result.tags_at_arrival[1],
    )
    # Paper: S1=1000 quanta, S2=100 quanta, ~900 quanta starved.
    assert result.tags_at_arrival[0] > 9 * result.tags_at_arrival[1]
    assert 0.7 <= result.t1_starvation <= 1.0


def test_fig1_sfs_no_starvation(benchmark):
    result = run_once(benchmark, fig1_infeasible.run, "sfs")
    record(benchmark, fig1_infeasible.render(result),
           t1_starvation_s=result.t1_starvation)
    assert result.t1_starvation < 0.1
