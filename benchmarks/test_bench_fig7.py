"""Figure 7 — context-switch overhead vs number of 0 KB processes.

Paper shape: both schedulers' per-switch cost grows with the process
count; SFS sits a few microseconds above time sharing throughout; the
curves stay inside the paper's 0-10 us band up to 50 processes.
"""

from conftest import record, run_once
from repro.experiments import fig7_ctxswitch

RINGS = (2, 5, 10, 20, 35, 50)


def test_fig7_ctx_switch_growth(benchmark):
    result = run_once(
        benchmark, fig7_ctxswitch.run, ring_sizes=RINGS, passes=1000
    )
    text = fig7_ctxswitch.render(result)
    sfs = dict(result.curves["sfs"])
    ts = dict(result.curves["linux-ts"])
    record(
        benchmark,
        text,
        sfs_us_at_2=1e6 * sfs[2],
        sfs_us_at_50=1e6 * sfs[50],
        ts_us_at_2=1e6 * ts[2],
        ts_us_at_50=1e6 * ts[50],
    )
    for name, curve in result.curves.items():
        values = [v for _, v in curve]
        # Monotone growth with process count.
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), name
        # Paper band: under 10 us at 50 processes.
        assert values[-1] < 10e-6, name
    # SFS above time sharing at every ring size.
    for n in RINGS:
        assert sfs[n] > ts[n]
    # "The percentage difference between the two schedulers decreases"
    # as bookkeeping grows relative to the constant gap.
    assert (sfs[50] - ts[50]) / ts[50] < (sfs[2] - ts[2]) / ts[2]
