"""Figure 4 — impact of the weight readjustment algorithm on SFQ.

Paper shape: without readjustment T1's curve flattens (starves) when
T3 arrives at t=15 s; with readjustment shares are 1:1, then 1:2:1,
then 1:1 across the three phases.
"""

from conftest import record, run_once
from repro.experiments import fig4_readjustment


def test_fig4a_sfq_without_readjustment(benchmark):
    result = run_once(benchmark, fig4_readjustment.run, "sfq")
    record(
        benchmark,
        fig4_readjustment.render(result),
        t1_phase2_share=result.phase2["T1"],
        t1_starvation_s=result.t1_starvation,
    )
    assert result.phase2["T1"] < 0.08  # T1 starved
    assert result.t1_starvation > 5.0


def test_fig4b_sfq_with_readjustment(benchmark):
    result = run_once(benchmark, fig4_readjustment.run, "sfq-readjust")
    record(
        benchmark,
        fig4_readjustment.render(result),
        phase1=str(result.phase1),
        phase2=str(result.phase2),
        phase3=str(result.phase3),
    )
    # Phase shares: 1:1 -> 1:2:1 -> 1:1 (paper's stated outcome).
    assert abs(result.phase1["T1"] - 0.5) < 0.05
    assert abs(result.phase2["T1"] - 0.25) < 0.05
    assert abs(result.phase2["T2"] - 0.50) < 0.05
    assert abs(result.phase2["T3"] - 0.25) < 0.05
    assert abs(result.phase3["T1"] - 0.5) < 0.05
    assert result.t1_starvation < 1.0


def test_fig4_sfs_variant(benchmark):
    result = run_once(benchmark, fig4_readjustment.run, "sfs")
    record(benchmark, fig4_readjustment.render(result))
    assert abs(result.phase2["T2"] - 0.50) < 0.05
