"""Ablation — fixed-point tag arithmetic scale factor (§3.2).

The paper chose a 10^4 scale factor as "adequate for most purposes",
with wrap-around rebasing to compensate for the faster tag growth.
This bench sweeps the scale and measures (a) allocation error against
the float reference and (b) the rebase frequency cost.
"""

import pytest

from conftest import record
from repro.core.fixed_point import FixedTags
from repro.core.sfs import SurplusFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite

WEIGHTS = (1, 2, 3, 4)
IDEAL = [w / sum(WEIGHTS) for w in WEIGHTS]


def allocation_error(tag_math, horizon=20.0) -> float:
    sched = SurplusFairScheduler(tag_math=tag_math)
    machine = Machine(sched, cpus=2, quantum=0.2, record_events=False)
    tasks = [
        machine.add_task(Task(Infinite(), weight=w, name=f"w{w}"))
        for w in WEIGHTS
    ]
    machine.run_until(horizon)
    total = sum(t.service for t in tasks)
    shares = [t.service / total for t in tasks]
    return sum(abs(a - b) for a, b in zip(shares, IDEAL))


@pytest.mark.parametrize("n", [0, 1, 2, 4, 6])
def test_fixed_point_scale_sweep(benchmark, n):
    err = benchmark.pedantic(
        allocation_error, args=(FixedTags(n=n),), rounds=1, iterations=1
    )
    float_err = allocation_error(None)
    record(
        benchmark,
        f"scale=10^{n}: allocation L1 error {err:.4f} "
        f"(float reference {float_err:.4f})",
        l1_error=err,
        float_reference_error=float_err,
    )
    if n >= 4:
        # Paper: 10^4 is adequate — indistinguishable from float.
        assert err < float_err + 0.02


def test_wraparound_rebase_overhead(benchmark):
    """Frequent rebases (tiny wrap threshold) must not disturb shares."""

    def run():
        # wrap_bits=16 wraps at 3.28 virtual seconds — reached several
        # times in a 30 s run at these weights.
        tags = FixedTags(n=4, wrap_bits=16)
        sched = SurplusFairScheduler(tag_math=tags)
        machine = Machine(sched, cpus=2, quantum=0.2, record_events=False)
        tasks = [
            machine.add_task(Task(Infinite(), weight=w, name=f"w{w}"))
            for w in WEIGHTS
        ]
        machine.run_until(30.0)
        total = sum(t.service for t in tasks)
        return sched.rebase_count, [t.service / total for t in tasks]

    rebases, shares = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        f"rebases={rebases} shares={[round(s, 3) for s in shares]}",
        rebase_count=rebases,
    )
    assert rebases > 0
    err = sum(abs(a - b) for a, b in zip(shares, IDEAL))
    assert err < 0.08
