"""Figure 6(c) — interactive performance under background simulations.

Paper shape: SFS response times are comparable to the time-sharing
scheduler (which deliberately privileges I/O-bound processes): both in
the 0-20 ms band and roughly flat in the number of disksim processes.
"""

from conftest import record, run_once
from repro.experiments import fig6c_interactive

COUNTS = (1, 2, 4, 6, 8, 10)


def test_fig6c_interactive(benchmark):
    result = run_once(benchmark, fig6c_interactive.run, disksim_counts=COUNTS)
    text = fig6c_interactive.render(result)
    sfs = dict(result.curves["sfs"])
    ts = dict(result.curves["linux-ts"])
    record(
        benchmark,
        text,
        sfs_ms_at_10=1000 * sfs[10],
        ts_ms_at_10=1000 * ts[10],
        paper_band_ms=20.0,
    )
    for n in COUNTS:
        # Paper's y-axis: both schedulers stay inside 0-20 ms.
        assert sfs[n] < 0.020, f"SFS response at n={n}"
        assert ts[n] < 0.020, f"TS response at n={n}"
    # "Comparable": SFS within ~3x of time sharing at the heaviest load.
    assert sfs[10] < 3 * ts[10] + 0.002
