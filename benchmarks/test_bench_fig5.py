"""Figure 5 — the short jobs problem: SFQ vs SFS (vs the GMS ideal).

Paper shape: group weights 20:20:5 should yield shares 4:4:1. SFQ gives
each *set* roughly equal bandwidth (T_short wildly over-served); SFS
comes much closer to 4:4:1; the paper's own Eq. 3 ideal (GMS-reference)
delivers it exactly. See EXPERIMENTS.md for the orbit-stability analysis
of the residual SFS-vs-ideal gap.
"""

from conftest import record, run_once
from repro.experiments import fig5_shortjobs

IDEAL = fig5_shortjobs.IDEAL_SHARES


def test_fig5a_sfq_fails_proportions(benchmark):
    result = run_once(benchmark, fig5_shortjobs.run, "sfq")
    record(benchmark, fig5_shortjobs.render(result), **result.group_share)
    # T_short grabs way beyond its 1/9 entitlement under SFQ.
    assert result.group_share["T_short"] > 2.0 * IDEAL["T_short"]


def test_fig5b_sfs_close_to_4_4_1(benchmark):
    result = run_once(
        benchmark, fig5_shortjobs.run, "sfs", quantum_jitter=0.05
    )
    record(benchmark, fig5_shortjobs.render(result), **result.group_share)
    sfq = fig5_shortjobs.run("sfq")
    # SFS is strictly closer to the ideal on every group than SFQ.
    for group in ("T1", "T2-21", "T_short"):
        assert abs(result.group_share[group] - IDEAL[group]) < abs(
            sfq.group_share[group] - IDEAL[group]
        ), group
    # And T_short is held within 2x of its entitlement (the Eq. 4
    # zero-clamp keeps it from reaching the exact 1/9; see EXPERIMENTS.md).
    assert result.group_share["T_short"] < 2.0 * IDEAL["T_short"]


def test_fig5_gms_reference_delivers_4_4_1(benchmark):
    result = run_once(benchmark, fig5_shortjobs.run, "gms-reference")
    record(benchmark, fig5_shortjobs.render(result), **result.group_share)
    assert abs(result.group_share["T1"] - IDEAL["T1"]) < 0.04
    assert abs(result.group_share["T2-21"] - IDEAL["T2-21"]) < 0.04
    assert abs(result.group_share["T_short"] - IDEAL["T_short"]) < 0.04
