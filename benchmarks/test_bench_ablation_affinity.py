"""Ablation — the §5 processor-affinity extension to SFS.

§5: "SMP-based time-sharing schedulers ... take processor affinities
into account while making scheduling decisions ... SFS currently
ignores processor affinities while making scheduling decisions. We plan
to explore the implications of doing so."

This bench quantifies the trade: the ``affinity_bonus`` knob reduces
cross-CPU migrations (fewer context switches, better cache behaviour —
modelled via the cache cost of the testbed cost model) at a bounded
cost in allocation accuracy.
"""

import pytest

from conftest import record
from repro.core.sfs import SurplusFairScheduler
from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.cpu_bound import Infinite

WEIGHTS = (1, 1, 2, 2, 3, 3)
HORIZON = 30.0
#: processes with a 8 KB working set: migrations cost cache refills
COSTS = CostModel()


def run_with_bonus(bonus: float):
    sched = SurplusFairScheduler(affinity_bonus=bonus)
    machine = Machine(sched, cpus=2, quantum=0.1, cost_model=COSTS,
                      record_events=False)
    tasks = [
        machine.add_task(
            Task(Infinite(), weight=w, name=f"w{w}-{i}", footprint_kb=8.0)
        )
        for i, w in enumerate(WEIGHTS)
    ]
    machine.run_until(HORIZON)
    total = sum(t.service for t in tasks)
    ideal = [w / sum(WEIGHTS) for w in WEIGHTS]
    err = sum(abs(t.service / total - i) for t, i in zip(tasks, ideal))
    return {
        "switches": machine.trace.context_switches,
        "overhead_s": machine.trace.overhead_time,
        "share_l1_error": err,
        "affinity_hits": sched.affinity_hits,
    }


@pytest.mark.parametrize("bonus", [0.0, 0.02, 0.05, 0.15])
def test_affinity_bonus_tradeoff(benchmark, bonus):
    stats = benchmark.pedantic(run_with_bonus, args=(bonus,), rounds=1,
                               iterations=1)
    record(
        benchmark,
        f"bonus={bonus}s: switches={stats['switches']} "
        f"overhead={1e6 * stats['overhead_s']:.0f}us "
        f"share L1 err={stats['share_l1_error']:.4f} "
        f"hits={stats['affinity_hits']}",
        **stats,
    )
    # Allocation must stay proportional for every bonus level.
    assert stats["share_l1_error"] < 0.15


def test_affinity_reduces_switch_overhead(benchmark):
    def compare():
        return run_with_bonus(0.0), run_with_bonus(0.15)

    plain, sticky = benchmark.pedantic(compare, rounds=1, iterations=1)
    record(
        benchmark,
        f"plain: {plain['switches']} switches, "
        f"{1e6 * plain['overhead_s']:.0f}us overhead | "
        f"sticky(0.15s): {sticky['switches']} switches, "
        f"{1e6 * sticky['overhead_s']:.0f}us overhead",
        plain_switches=plain["switches"],
        sticky_switches=sticky["switches"],
    )
    assert sticky["switches"] < plain["switches"]
    assert sticky["overhead_s"] < plain["overhead_s"]
