"""Scale benchmark: simulator throughput on the server scenario family.

The hot-path work (O(log n) run queues, incremental live-task
accounting, decimated service sampling) is only worth anything if the
simulator actually sustains thousands of tasks. This bench runs the
``server`` preset — Poisson arrivals, bounded-Pareto demands, mixed
weight classes — at N ∈ {100, 1000, 5000} under the ``lmbench`` cost
model (whose per-dispatch decision cost reads ``Machine.live_count``,
the path that used to scan every task ever created) and records
**events/sec** in ``benchmark.extra_info`` so CI can chart the perf
trajectory across PRs (``--benchmark-json`` → ``BENCH_scale.json``).

Reference points (this machine, PR 2, same run as the README table):
pre-PR the N=5000 SFS run sustained ~6.0k events/sec; eliminating the
quadratic live_count scan and the linear run-queue removals lifted it
to ~32k (SFQ ~59k, round-robin ~108k). Wall-clock noise between runs
is ±20%; treat the trajectory, not single cells, as signal.
"""

import time

import pytest

from repro.scenario import class_shares, run_scenario, server_scenario

#: the family's scaling ladder; 5000 is the acceptance-criteria point
SIZES = [100, 1000, 5000]
SCHEDULERS = ["sfs", "sfq", "round-robin"]


def run_server(n, scheduler):
    scenario = server_scenario(
        n,
        cpus=4,
        scheduler=scheduler,
        cost_model="lmbench",
        service_sample_interval=0.5,
    )
    t0 = time.perf_counter()
    result = run_scenario(scenario)
    wall = time.perf_counter() - t0
    return scenario, result, wall


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("n", SIZES)
def test_server_scale_events_per_sec(benchmark, n, scheduler):
    def once():
        return run_server(n, scheduler)

    scenario, result, wall = benchmark.pedantic(once, rounds=1, iterations=1)
    events = result.machine.engine.events_fired
    benchmark.extra_info["scheduler"] = scheduler
    benchmark.extra_info["n_tasks"] = n
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = round(events / wall)
    benchmark.extra_info["context_switches"] = result.trace.context_switches

    # Sanity, not speed: the run did real scheduling work and stayed
    # within machine capacity.
    assert events > n  # every task at least arrived + ran
    total = sum(t.service for t in result.tasks.values())
    assert 0 < total <= result.capacity() + 1e-6
    shares = class_shares(result)
    assert all(s >= 0 for s in shares.values())


def test_server_scale_decimation_bounds_series_memory():
    """At N=5000 the decimated curves must stay far below one point per
    event — the whole point of service_sample_interval."""
    scenario, result, _ = run_server(5000, "sfs")
    points = sum(len(t.series) for t in result.tasks.values())
    events = result.machine.engine.events_fired
    assert points < events
    # Totals are exact even with decimation: final service equals the
    # per-task behaviour demand for every completed job.
    for t in result.tasks.values():
        assert t.service <= t.behavior.cpu_seconds + 1e-9
