"""Scale benchmark: simulator throughput on the server scenario family.

The hot-path work (O(log n) run queues, incremental live-task
accounting, decimated service sampling) is only worth anything if the
simulator actually sustains thousands of tasks. This bench runs the
``server`` preset — Poisson arrivals, bounded-Pareto demands, mixed
weight classes — at N ∈ {100, 1000, 5000} under the ``lmbench`` cost
model (whose per-dispatch decision cost reads ``Machine.live_count``,
the path that used to scan every task ever created) and records
**events/sec** in ``benchmark.extra_info`` so CI can chart the perf
trajectory across PRs (``--benchmark-json`` → ``BENCH_scale.json``).

Reference points (this machine, PR 2, same run as the README table):
pre-PR the N=5000 SFS run sustained ~6.0k events/sec; eliminating the
quadratic live_count scan and the linear run-queue removals lifted it
to ~32k (SFQ ~59k, round-robin ~108k). Wall-clock noise between runs
is ±20%; treat the trajectory, not single cells, as signal.
"""

import json
import os
import time

import pytest

from repro.flows import FLOW_RESOURCE_PROFILES, flow_scenario
from repro.scenario import (
    METRICS,
    class_shares,
    run_cells,
    run_scenario,
    server_scenario,
)
from repro.sim.engine import build_info

#: the family's scaling ladder; 5000 is the acceptance-criteria point
SIZES = [100, 1000, 5000]
#: grid rows: (cell label, scheduler name, offered load). The overload
#: rows (load > 1: runnable set grows into the thousands) are the
#: regime the incremental weight-readjustment frontier targets — the
#: perf-trend gate watches them so that win can't silently regress.
CONFIGS = [
    ("sfs", "sfs", 0.85),
    ("sfs-heuristic", "sfs-heuristic", 0.85),
    ("sfq", "sfq", 0.85),
    ("round-robin", "round-robin", 0.85),
    ("sfs-overload", "sfs", 1.6),
    ("sfs-heuristic-overload", "sfs-heuristic", 1.6),
    ("sfq-overload", "sfq", 1.6),
    # Cheapest per-decision policy under overload: the cell where the
    # event loop itself (not the scheduler) dominates, i.e. the purest
    # measure of the calendar-queue/compiled-engine work.
    ("round-robin-overload", "round-robin", 1.6),
]
LABELS = [label for label, _, _ in CONFIGS]


#: walls per cell; the *best* of these feeds the trend gate, damping
#: one-off scheduler hiccups on shared CI runners (the simulation is
#: deterministic, so only the wall clock varies between rounds)
ROUNDS = 3


def run_server(n, scheduler, load=0.85, rounds=ROUNDS):
    scenario = server_scenario(
        n,
        cpus=4,
        scheduler=scheduler,
        load=load,
        cost_model="lmbench",
        service_sample_interval=0.5,
    )
    wall = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_scenario(scenario)
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    return scenario, result, wall


@pytest.mark.parametrize("label", LABELS)
@pytest.mark.parametrize("n", SIZES)
def test_server_scale_events_per_sec(benchmark, n, label):
    _, scheduler, load = next(row for row in CONFIGS if row[0] == label)

    def once():
        return run_server(n, scheduler, load)

    scenario, result, wall = benchmark.pedantic(once, rounds=1, iterations=1)
    events = result.machine.engine.events_fired
    benchmark.extra_info["scheduler"] = label
    benchmark.extra_info["n_tasks"] = n
    # Which hot path produced this number (compiled C engine vs pure
    # Python, and which event queue) — without it the perf trajectory
    # across PRs can't be attributed.
    benchmark.extra_info["engine_build"] = build_info()["engine"]
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = round(events / wall)
    benchmark.extra_info["context_switches"] = result.trace.context_switches
    sched = result.machine.scheduler
    if hasattr(sched, "widened_scans"):
        # Heuristic decision-path health: how often the bounded window
        # held only running threads (widening rounds) and how often a
        # setweight/rebase forced an off-cadence full refresh.
        benchmark.extra_info["heuristic_widened_scans"] = sched.widened_scans
        benchmark.extra_info["heuristic_forced_refreshes"] = (
            sched.forced_refreshes
        )
    frontier = getattr(result.machine.scheduler, "frontier", None)
    if frontier is not None:
        # How often the feasible fast path spared a frontier repair —
        # the "small fix" this PR's gate should keep honest.
        benchmark.extra_info["readjust_fast_skips"] = frontier.fast_skips
        benchmark.extra_info["readjust_repairs"] = frontier.repairs
        benchmark.extra_info["readjust_phi_writes"] = frontier.phi_writes

    # Sanity, not speed: the run did real scheduling work and stayed
    # within machine capacity.
    assert events > n  # every task at least arrived + ran
    total = sum(t.service for t in result.tasks.values())
    assert 0 < total <= result.capacity() + 1e-6
    shares = class_shares(result)
    assert all(s >= 0 for s in shares.values())


#: flow-domain rows: same trend gate, packet workload. The overload
#: cell keeps every flow backlogged (the fair-queueing analog of the
#: server overload rows); the multi-resource cell adds the DRF metric
#: arithmetic to the timed region, so the post-run accounting layer
#: can't quietly go quadratic in the flow count.
FLOW_N = 200
FLOW_CONFIGS = [
    ("flows-overload", 1.4, None),
    ("flows-multi-resource", 0.9, FLOW_RESOURCE_PROFILES),
]


def run_flows(load, resource_profiles, rounds=ROUNDS):
    scenario = flow_scenario(
        n_flows=FLOW_N,
        packets_per_flow=150,
        scheduler="sfs",
        load=load,
        resource_profiles=resource_profiles,
        service_sample_interval=0.5,
    )
    wall = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_scenario(scenario)
        if resource_profiles is not None:
            METRICS["dominant_shares"](result)
            METRICS["resource_jains"](result)
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    return scenario, result, wall


@pytest.mark.parametrize("label", [label for label, _, _ in FLOW_CONFIGS])
def test_flow_scale_events_per_sec(benchmark, label):
    _, load, profiles = next(row for row in FLOW_CONFIGS if row[0] == label)

    def once():
        return run_flows(load, profiles)

    scenario, result, wall = benchmark.pedantic(once, rounds=1, iterations=1)
    events = result.machine.engine.events_fired
    benchmark.extra_info["scheduler"] = label
    benchmark.extra_info["n_tasks"] = FLOW_N
    benchmark.extra_info["engine_build"] = build_info()["engine"]
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = round(events / wall)

    # Sanity, not speed: real packets moved and capacity held.
    assert events > FLOW_N
    sent = sum(t.behavior.bytes_sent for t in result.tasks.values())
    capacity = 1.25e6 * scenario.cpus * result.duration
    assert 0 < sent <= capacity * (1 + 1e-9)


def test_server_grid_per_cell_walls(tmp_path):
    """Run a small server grid through an execution backend and record
    per-cell worker-side wall clocks.

    The backend is selected by ``SFS_BENCH_BACKEND`` (default
    ``chunked``, exercising the streaming/checkpoint path CI relies
    on); when ``SFS_BENCH_CELLS`` names a file, the per-cell ``wall_s``
    rows are dumped there as JSON so CI can upload them alongside
    ``BENCH_scale.json`` — the raw material for spotting a *single*
    slow cell that the aggregate events/sec rows would average away.
    """
    backend = os.environ.get("SFS_BENCH_BACKEND", "chunked")
    grid = CONFIGS[:4]
    scenarios = [
        server_scenario(
            100,
            cpus=4,
            scheduler=scheduler,
            load=load,
            cost_model="lmbench",
            service_sample_interval=0.5,
        )
        for _, scheduler, load in grid
    ]
    cells = run_cells(
        scenarios,
        ("events_fired",),
        backend=backend,
        checkpoint=(
            str(tmp_path / "bench_ck.jsonl") if backend == "chunked" else None
        ),
    )
    assert len(cells) == len(grid)
    rows = []
    for (label, _, load), cell in zip(grid, cells):
        assert cell.wall_s > 0
        assert cell.metrics["events_fired"] > 100
        rows.append(
            {
                "label": label,
                "n_tasks": 100,
                "load": load,
                "backend": backend,
                "wall_s": cell.wall_s,
                "events": cell.metrics["events_fired"],
                "events_per_sec": round(
                    cell.metrics["events_fired"] / cell.wall_s
                ),
            }
        )
    out = os.environ.get("SFS_BENCH_CELLS")
    if out:
        with open(out, "w") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")


def test_server_scale_decimation_bounds_series_memory():
    """At N=5000 the decimated curves must stay far below one point per
    event — the whole point of service_sample_interval."""
    scenario, result, _ = run_server(5000, "sfs", rounds=1)
    points = sum(len(t.series) for t in result.tasks.values())
    events = result.machine.engine.events_fired
    assert points < events
    # Totals are exact even with decimation: final service equals the
    # per-task behaviour demand for every completed job.
    for t in result.tasks.values():
        assert t.service <= t.behavior.cpu_seconds + 1e-9
