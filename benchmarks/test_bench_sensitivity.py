"""Sensitivity bench — quantifies the Fig. 5 orbit-noise claim.

Shape asserted: the GMS-reference (Eq. 3) scheduler's T_short share is
tight around the 1/9 ideal regardless of timer jitter, while quantum-
granularity SFS's share is (a) above the ideal and (b) pulled toward it
by jitter — the behaviour EXPERIMENTS.md documents.
"""

from conftest import record, run_once
from repro.experiments import sensitivity


def test_fig5_orbit_sensitivity(benchmark):
    result = run_once(
        benchmark,
        sensitivity.run,
        jitters=(0.0, 0.05),
        seeds=(1, 2),
    )
    text = sensitivity.render(result)
    record(
        benchmark,
        text,
        sfs_mean_no_jitter=result.mean("sfs", 0.0),
        sfs_mean_jitter=result.mean("sfs", 0.05),
        gms_mean_no_jitter=result.mean("gms-reference", 0.0),
    )
    ideal = sensitivity.IDEAL_SHORT_SHARE
    # GMS-reference: insensitive and on the ideal.
    for jitter in (0.0, 0.05):
        assert abs(result.mean("gms-reference", jitter) - ideal) < 0.03
        assert result.spread("gms-reference", jitter) < 0.02
    # SFS: above the ideal (the Eq. 4 clamp) but within 2x with noise.
    assert result.mean("sfs", 0.05) > ideal
    assert result.mean("sfs", 0.05) < 2.2 * ideal