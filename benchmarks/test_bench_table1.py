"""Table 1 — lmbench scheduling overheads: time sharing vs SFS.

Paper rows (time sharing / SFS): syscall 0.7/0.7 us, fork 400/400 us,
exec 2/2 ms, ctx switch 2proc/0KB 1/4 us, 8proc/16KB 15/19 us,
16proc/64KB 178/179 us. Shape: SFS costs a few microseconds more, and
the *relative* difference shrinks as process size grows (cache
restoration dominates).
"""

from conftest import record, run_once
from repro.experiments import table1_lmbench


def test_table1_lmbench_rows(benchmark):
    result = run_once(benchmark, table1_lmbench.run, passes=1500)
    text = table1_lmbench.render(result)
    flat = {
        label.replace(" ", "_"): f"{ts * 1e6:.1f}/{sfs * 1e6:.1f} us"
        for label, (ts, sfs) in result.rows.items()
    }
    record(benchmark, text, **flat)

    ts0, sfs0 = result.rows["Context switch (2 proc/0KB)"]
    ts16, sfs16 = result.rows["Context switch (8 proc/16KB)"]
    ts64, sfs64 = result.rows["Context switch (16 proc/64KB)"]

    # Row magnitudes within ~50% of the paper's values.
    assert abs(ts0 - 1e-6) < 1e-6
    assert abs(sfs0 - 4e-6) < 2e-6
    assert abs(ts16 - 15e-6) < 6e-6
    assert abs(sfs16 - 19e-6) < 6e-6
    assert abs(ts64 - 178e-6) < 30e-6
    assert abs(sfs64 - 179e-6) < 30e-6

    # SFS above TS in every context-switch row ...
    assert sfs0 > ts0 and sfs16 > ts16 and sfs64 > ts64
    # ... but the percentage difference shrinks with process size (§4.5).
    assert (sfs64 - ts64) / ts64 < (sfs16 - ts16) / ts16 < (sfs0 - ts0) / ts0

    # Scheduler-independent rows are identical under both schedulers.
    for label in ("syscall overhead", "fork()", "exec()"):
        ts, sfs = result.rows[label]
        assert ts == sfs
