"""Figure 6(b) — application isolation: MPEG decoding vs compilations.

Paper shape: SFS keeps the decoder near its full frame rate (~30 fps,
with at most a slight droop) as gcc jobs are added; the Linux
time-sharing scheduler lets the frame rate collapse roughly as 1/(n+1).
"""

from conftest import record, run_once
from repro.experiments import fig6b_isolation

COUNTS = (0, 2, 4, 6, 8, 10)


def test_fig6b_isolation(benchmark):
    result = run_once(benchmark, fig6b_isolation.run, compile_counts=COUNTS)
    text = fig6b_isolation.render(result)
    sfs = dict(result.curves["sfs"])
    ts = dict(result.curves["linux-ts"])
    record(
        benchmark,
        text,
        sfs_fps_at_10=sfs[10],
        ts_fps_at_10=ts[10],
        paper_sfs_at_10=28.0,
        paper_ts_at_10=10.0,
    )
    # SFS: flat, within 15% of the unloaded rate at full load.
    assert sfs[10] > 0.85 * sfs[0]
    # Time sharing: collapses by more than 2.5x.
    assert ts[10] < ts[0] / 2.5
    # Crossover: TS tracks SFS with no load, loses by >= 2x at n=10.
    assert abs(ts[0] - sfs[0]) < 3.0
    assert sfs[10] > 2 * ts[10]
    # TS frame rate decays monotonically with load.
    ts_values = [ts[n] for n in COUNTS]
    assert all(a >= b - 0.8 for a, b in zip(ts_values, ts_values[1:]))
