#!/usr/bin/env python
"""CI perf-trend gate: diff a fresh BENCH_scale.json against the baseline.

Usage (CI runs this right after the scale benchmark)::

    python benchmarks/check_trend.py BENCH_scale.json
    python benchmarks/check_trend.py BENCH_scale.json --update-baseline

Exits non-zero — turning the (non-blocking) CI job red — when any
(scheduler, N) cell's events/sec regressed more than ``--threshold``x
against ``benchmarks/baseline_scale.json``, or when a baseline cell is
missing from the fresh run. Writes a summary table to stdout and, when
``$GITHUB_STEP_SUMMARY`` is set, to the workflow step summary.

``--update-baseline`` rewrites the committed baseline from the fresh
report instead of comparing — commit the result after intentional
perf changes or when runner-generation drift turns the job red.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

# Allow running straight from a checkout (CI does), where src/ is not
# installed into site-packages.
_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.trend import (  # noqa: E402
    compare,
    dump_baseline,
    extract_cells,
    load_baseline,
    to_markdown,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline_scale.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="pytest-benchmark JSON from the scale bench")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline file (default: benchmarks/baseline_scale.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression factor that turns the gate red (default: 2.0)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the fresh report instead of comparing",
    )
    parser.add_argument(
        "--note",
        default="",
        help="free-form provenance note stored with --update-baseline",
    )
    args = parser.parse_args(argv)

    fresh_cells = extract_cells(json.loads(Path(args.fresh).read_text()))
    if not fresh_cells:
        print(f"error: no scale-grid cells found in {args.fresh}", file=sys.stderr)
        return 2

    if args.update_baseline:
        dump_baseline(fresh_cells, args.baseline, note=args.note)
        print(f"baseline updated: {args.baseline} ({len(fresh_cells)} cells)")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(
            f"error: baseline {baseline_path} not found; create it with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 2

    report = compare(
        load_baseline(baseline_path), fresh_cells, threshold=args.threshold
    )
    table = to_markdown(report)
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")

    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
