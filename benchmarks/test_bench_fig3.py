"""Figure 3 — efficacy of the §3.2 scheduling heuristic.

Paper shape: on a quad-processor with up to 400 runnable threads,
examining the first 20 threads of each queue picks the true
minimum-surplus thread > 99 % of the time; accuracy rises steeply with
the scan depth.
"""

from conftest import record, run_once
from repro.experiments import fig3_heuristic

#: trimmed grid: full 400-thread sweeps are exercised by the slower
#: `sfs-experiment fig3`; the bench checks the paper's headline cells.
THREADS = (100, 200, 400)
DEPTHS = (1, 5, 20, 60)


def test_fig3_heuristic_accuracy(benchmark):
    result = run_once(
        benchmark,
        fig3_heuristic.run,
        thread_counts=THREADS,
        scan_depths=DEPTHS,
        decisions=800,
    )
    text = fig3_heuristic.render(result)
    record(
        benchmark,
        text,
        **{
            f"acc_n{n}_k{k}": result.accuracy[(n, k)]
            for n in THREADS
            for k in DEPTHS
        },
    )
    for n in THREADS:
        # Paper: k=20 gives > 99% accuracy even at 400 threads.
        assert result.accuracy[(n, 20)] > 0.99
        # Accuracy grows with scan depth.
        assert result.accuracy[(n, 1)] <= result.accuracy[(n, 20)] + 1e-9
