"""Setup shim: metadata lives in pyproject.toml.

Exists so that ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 517 editable-wheel support (no ``wheel`` package).
"""

from setuptools import setup

setup()
