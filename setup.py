"""Setup shim: metadata lives in pyproject.toml.

Exists so that ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 517 editable-wheel support (no ``wheel`` package),
and to drive the *optional* C extension build.

The extension (``repro.sim._engine``, built from
``src/repro/sim/_engine.c``) is the compiled hot path for the event
engine and the SFS surplus recompute. It is strictly optional — the
pure-Python implementations are behaviourally identical — so the build
must never make installation fail:

- ``python setup.py build_ext --inplace`` builds it explicitly (the
  normal development route; CI's compiled leg uses this);
- ``SFS_BUILD_EXT=1 pip install -e .`` requests it during install;
- ``SFS_BUILD_EXT=0`` (or any build failure, e.g. no C compiler)
  falls back to pure Python with a warning rather than an error.
"""

from __future__ import annotations

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

_EXT = Extension(
    "repro.sim._engine",
    sources=["src/repro/sim/_engine.c"],
)


def _want_ext() -> bool:
    """Build the extension? Explicit build_ext always; installs opt in."""
    if any(arg.startswith("build_ext") for arg in sys.argv[1:]):
        return True
    return os.environ.get("SFS_BUILD_EXT", "0") not in ("0", "", "false")


class optional_build_ext(build_ext):
    """A build_ext that degrades to pure Python instead of failing."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # compiler missing entirely
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile/link error
            self._warn(exc)

    def _warn(self, exc: Exception) -> None:
        if any(arg.startswith("build_ext") for arg in sys.argv[1:]):
            raise exc  # an explicit build_ext should fail loudly
        print(
            f"WARNING: building repro.sim._engine failed ({exc}); "
            "falling back to the pure-Python engine",
            file=sys.stderr,
        )


setup(
    ext_modules=[_EXT] if _want_ext() else [],
    cmdclass={"build_ext": optional_build_ext},
)
