"""Tests for the interprocedural rules SFS008/SFS009 and lint satellites.

A synthetic mini-repo (pyproject marker + ``src/repro`` tree) drives
the positive cases: a sim-scope function calling through the exec
layer to a wall-clock read (SFS008, full chain in the message), a
sim-scope loop over a set returned across the boundary (SFS009), and
the inline pragma waiving each at the call site. The real repository
is then dogfooded — the blocking CI invocation must be clean. The
engine satellites ride along: repo-root-relative path rendering,
``--output`` JSON emission, and ``--baseline``/``--write-baseline``.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis.staticcheck import lint_paths, main
from repro.analysis.staticcheck.engine import find_repo_root
from repro.analysis.staticcheck.project import project_violations

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write_pkg(root, sim_body):
    """Lay out a minimal repo: marker file + src/repro/{sim,exec,util}."""
    (root / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = root / "src" / "repro"
    for sub in ("sim", "exec", "util"):
        (pkg / sub).mkdir(parents=True, exist_ok=True)
        (pkg / sub / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "util" / "clock.py").write_text(
        textwrap.dedent(
            """
            import time


            def now():
                return time.time()


            def tags():
                return {"a", "b"}
            """
        )
    )
    (pkg / "exec" / "backend.py").write_text(
        textwrap.dedent(
            """
            from repro.util import clock


            def submit():
                return clock.now()
            """
        )
    )
    (pkg / "sim" / "driver.py").write_text(textwrap.dedent(sim_body))
    return root


def test_sfs008_reports_full_chain(tmp_path):
    _write_pkg(
        tmp_path,
        """
        from repro.exec import backend


        def step():
            return backend.submit()
        """,
    )
    found = project_violations(tmp_path)
    assert [v.rule for v in found] == ["SFS008"]
    v = found[0]
    assert v.path == "src/repro/sim/driver.py"
    assert (
        "repro.sim.driver.step -> repro.exec.backend.submit "
        "-> repro.util.clock.now" in v.message
    )
    assert "time.time" in v.message
    assert "src/repro/util/clock.py" in v.message


def test_sfs008_pragma_waives_the_boundary_call(tmp_path):
    _write_pkg(
        tmp_path,
        """
        from repro.exec import backend


        def step():
            return backend.submit()  # sfs-lint: disable=SFS008
        """,
    )
    assert project_violations(tmp_path) == []


def test_sfs009_fires_when_set_is_iterated_across_boundary(tmp_path):
    _write_pkg(
        tmp_path,
        """
        from repro.util.clock import tags


        def spread():
            total = 0
            for tag in tags():
                total += len(tag)
            return total
        """,
    )
    found = project_violations(tmp_path)
    assert [v.rule for v in found] == ["SFS009"]
    assert "repro.util.clock.tags" in found[0].message
    assert "returns a set" in found[0].message


def test_sfs009_quiet_when_sorted_or_not_iterated(tmp_path):
    _write_pkg(
        tmp_path,
        """
        from repro.util.clock import tags


        def materialize():
            return sorted(tags())


        def count():
            return len(tags())
        """,
    )
    assert project_violations(tmp_path) == []


def test_sim_internal_calls_are_not_boundaries(tmp_path):
    _write_pkg(
        tmp_path,
        """
        def helper():
            return {"a", "b"}


        def spread():
            return [t for t in helper()]
        """,
    )
    assert [v.rule for v in project_violations(tmp_path)] == []


def test_cli_project_flag_reports_and_fails(tmp_path, capsys):
    _write_pkg(
        tmp_path,
        """
        from repro.exec import backend


        def step():
            return backend.submit()
        """,
    )
    status = main([str(tmp_path / "src"), "--project"])
    out = capsys.readouterr().out
    assert status == 1
    assert "SFS008" in out
    assert "src/repro/sim/driver.py" in out


# ----------------------------------------------------------------------
# satellites: path rendering, --output, --baseline
# ----------------------------------------------------------------------


def test_find_repo_root_walks_up_to_marker(tmp_path):
    _write_pkg(tmp_path, "\n")
    nested = tmp_path / "src" / "repro" / "sim" / "driver.py"
    assert find_repo_root([nested]) == tmp_path


def test_paths_render_repo_root_relative(tmp_path):
    _write_pkg(
        tmp_path,
        """
        import random


        def draw():
            return random.random()
        """,
    )
    found, _ = lint_paths([tmp_path / "src"])
    assert [v.path for v in found] == ["src/repro/sim/driver.py"]


def test_output_writes_json_report(tmp_path, capsys):
    _write_pkg(
        tmp_path,
        """
        import random


        def draw():
            return random.random()
        """,
    )
    out_file = tmp_path / "report.json"
    status = main([str(tmp_path / "src"), "--output", str(out_file)])
    capsys.readouterr()
    assert status == 1
    report = json.loads(out_file.read_text())
    assert report["violations"][0]["rule"] == "SFS001"
    assert report["violations"][0]["path"] == "src/repro/sim/driver.py"


def test_baseline_roundtrip_suppresses_known_findings(tmp_path, capsys):
    _write_pkg(
        tmp_path,
        """
        import random


        def draw():
            return random.random()
        """,
    )
    base = tmp_path / "lint-baseline.json"
    assert main([str(tmp_path / "src"), "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path / "src"), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out
    assert "1 baselined" in out


def test_baseline_still_fails_on_new_findings(tmp_path, capsys):
    repo = _write_pkg(
        tmp_path,
        """
        import random


        def draw():
            return random.random()
        """,
    )
    base = tmp_path / "lint-baseline.json"
    assert main([str(tmp_path / "src"), "--write-baseline", str(base)]) == 0
    driver = repo / "src" / "repro" / "sim" / "driver.py"
    driver.write_text(
        driver.read_text()
        + "\n\ndef draw2():\n    return random.randint(0, 9)\n"
    )
    capsys.readouterr()
    assert main([str(tmp_path / "src"), "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "randint" in out
    assert "1 baselined" in out


def test_malformed_baseline_is_a_usage_error(tmp_path, capsys):
    _write_pkg(tmp_path, "\n")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main([str(tmp_path / "src"), "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# dogfood: this repository is clean under the blocking CI invocation
# ----------------------------------------------------------------------


def test_real_repo_has_no_project_violations():
    assert project_violations(REPO_ROOT) == []


def test_real_repo_clean_under_full_blocking_invocation(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    status = main(["--project", "--cboundary"])
    out = capsys.readouterr().out
    assert status == 0, out
