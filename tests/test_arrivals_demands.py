"""Tests for the arrival-process and demand-distribution registries.

The load-bearing property is the rebase contract: ``server_scenario``
now composes ``PoissonArrivals`` + ``BoundedParetoDemand`` through
``generated_tasks``, and its output must stay bit-identical to the
pre-registry inline loop for every seed. The replica of that old loop
lives here as the oracle.
"""

import math
import random

import pytest

from repro.scenario import (
    ARRIVALS,
    DEMANDS,
    arrival_names,
    demand_names,
    generated_tasks,
    make_arrival,
    make_demand,
    register_arrival,
    server_scenario,
)
from repro.scenario.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.scenario.demands import (
    BimodalDemand,
    BoundedParetoDemand,
    ExponentialDemand,
    FixedDemand,
    LognormalDemand,
)
from repro.scenario.spec import Compute


def _times(arrival, n, seed=42):
    rng = random.Random(seed)
    it = arrival.times(rng)
    return [next(it) for _ in range(n)]


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------


class TestRegistries:
    def test_at_least_four_arrivals_and_demands(self):
        assert len(arrival_names()) >= 4
        assert len(demand_names()) >= 4

    def test_expected_names_present(self):
        assert {"poisson", "bursty", "diurnal", "flash-crowd", "trace"} <= set(
            arrival_names()
        )
        assert {
            "exponential",
            "bounded-pareto",
            "lognormal",
            "bimodal",
            "fixed",
        } <= set(demand_names())

    def test_make_arrival_dispatches_with_presets(self):
        arrival = make_arrival("poisson", rate=10.0)
        assert isinstance(arrival, PoissonArrivals)
        assert arrival.rate == 10.0

    def test_make_demand_dispatches(self):
        demand = make_demand("bounded-pareto", mean=0.05)
        assert isinstance(demand, BoundedParetoDemand)
        assert demand.cap == pytest.approx(5.0)

    def test_unknown_names_rejected_with_catalog(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrival("weibull")
        with pytest.raises(ValueError, match="poisson"):
            make_arrival("weibull")
        with pytest.raises(ValueError, match="unknown demand distribution"):
            make_demand("weibull")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_arrival("poisson")(PoissonArrivals)

    def test_registries_share_no_name(self):
        assert not set(ARRIVALS) & set(DEMANDS)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------


class TestArrivals:
    def test_poisson_matches_raw_expovariate_stream(self):
        rng = random.Random(7)
        expected, t = [], 0.0
        for _ in range(50):
            t += rng.expovariate(20.0)
            expected.append(t)
        assert _times(PoissonArrivals(20.0), 50, seed=7) == expected

    def test_poisson_is_lazy_one_draw_per_next(self):
        # interleaving draws with another consumer must not perturb the
        # stream beyond the draws actually taken — the property the
        # per-task gap/demand/class interleave depends on
        rng = random.Random(5)
        it = PoissonArrivals(10.0).times(rng)
        first = next(it)
        ref = random.Random(5)
        assert first == ref.expovariate(10.0)

    def test_times_are_strictly_increasing(self):
        for arrival in (
            PoissonArrivals(30.0),
            BurstyArrivals(80.0, 5.0, mean_burst=0.5, mean_lull=1.5),
            DiurnalArrivals(30.0, period=20.0, amplitude=0.9),
            FlashCrowdArrivals(20.0, spike_at=4.0, spike_duration=2.0, spike_factor=8.0),
        ):
            times = _times(arrival, 200)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_bursty_mean_rate_sits_between_extremes(self):
        times = _times(
            BurstyArrivals(100.0, 1.0, mean_burst=0.5, mean_lull=0.5), 2000
        )
        rate = len(times) / times[-1]
        assert 1.0 < rate < 100.0

    def test_bursty_validates_parameters(self):
        with pytest.raises(ValueError, match="rate_hi"):
            BurstyArrivals(0.0, 1.0, mean_burst=1.0, mean_lull=1.0)
        with pytest.raises(ValueError, match="mean_lull"):
            BurstyArrivals(10.0, 1.0, mean_burst=1.0, mean_lull=0.0)

    def test_diurnal_peak_and_trough_density(self):
        # peak_at=0 with period 10: arrivals cluster near t % 10 == 0
        times = _times(DiurnalArrivals(50.0, period=10.0, amplitude=0.9), 3000)
        phases = [t % 10.0 for t in times]
        near_peak = sum(1 for p in phases if p < 2.5 or p >= 7.5)
        near_trough = len(phases) - near_peak
        assert near_peak > 2 * near_trough

    def test_diurnal_validates_amplitude(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(10.0, period=5.0, amplitude=1.5)

    def test_flash_crowd_concentrates_in_spike(self):
        arrival = FlashCrowdArrivals(
            10.0, spike_at=5.0, spike_duration=1.0, spike_factor=20.0
        )
        times = [t for t in _times(arrival, 600) if t < 10.0]
        in_spike = sum(1 for t in times if 5.0 <= t < 6.0)
        # 1s spike at 200/s vs 9s background at 10/s
        assert in_spike > len(times) / 2

    def test_trace_replays_exactly_and_draws_nothing(self):
        rng = random.Random(3)
        before = rng.getstate()
        assert _times(TraceArrivals((0.5, 1.0, 4.0)), 3, seed=3) == [0.5, 1.0, 4.0]
        assert random.Random(3).getstate() == before

    def test_trace_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            TraceArrivals((1.0, 0.5))

    def test_trace_exhaustion_surfaces_in_generated_tasks(self):
        with pytest.raises(ValueError, match="produced only 2 of 3"):
            generated_tasks(
                3,
                arrival=TraceArrivals((0.0, 1.0)),
                demand=FixedDemand(0.1),
                weight_classes=(("a", 1.0, 1.0),),
            )


# ----------------------------------------------------------------------
# demand distributions
# ----------------------------------------------------------------------


class TestDemands:
    def test_exponential_matches_raw_expovariate(self):
        rng = random.Random(9)
        ref = random.Random(9)
        demand = ExponentialDemand(0.05)
        assert [demand.sample(rng) for _ in range(20)] == [
            ref.expovariate(1 / 0.05) for _ in range(20)
        ]

    def test_bounded_pareto_matches_server_math(self):
        mean, shape, cap_factor = 0.05, 1.5, 100.0
        scale = mean * (shape - 1) / shape
        cap = cap_factor * mean
        rng = random.Random(11)
        ref = random.Random(11)
        demand = BoundedParetoDemand(mean, shape=shape, cap_factor=cap_factor)
        assert [demand.sample(rng) for _ in range(200)] == [
            min(scale * ref.paretovariate(shape), cap) for _ in range(200)
        ]

    def test_bounded_pareto_never_exceeds_cap(self):
        demand = BoundedParetoDemand(0.05, shape=1.1, cap_factor=10.0)
        rng = random.Random(1)
        assert all(demand.sample(rng) <= 0.5 for _ in range(2000))

    def test_lognormal_mean_parameterisation(self):
        demand = LognormalDemand(0.04, sigma=1.2)
        rng = random.Random(2)
        mean = sum(demand.sample(rng) for _ in range(20000)) / 20000
        assert mean == pytest.approx(0.04, rel=0.15)

    def test_bimodal_mixes_two_sizes(self):
        demand = BimodalDemand(0.02, 0.5, p_small=0.9)
        rng = random.Random(4)
        draws = [demand.sample(rng) for _ in range(1000)]
        assert set(draws) == {0.02, 0.5}
        assert 0.85 < draws.count(0.02) / len(draws) < 0.95

    def test_fixed_demand_consumes_one_draw_for_parity(self):
        rng = random.Random(6)
        demand = FixedDemand(0.3)
        assert demand.sample(rng) == 0.3
        # one rng.random() consumed per sample, keeping class-choice
        # draws aligned when a fixed demand stands in for a random one
        assert rng.random() != random.Random(6).random()

    def test_validation_messages(self):
        with pytest.raises(ValueError, match="mean"):
            ExponentialDemand(0.0)
        with pytest.raises(ValueError, match="shape"):
            BoundedParetoDemand(0.05, shape=1.0)
        with pytest.raises(ValueError, match="p_small"):
            BimodalDemand(0.1, 0.2, p_small=1.5)


# ----------------------------------------------------------------------
# generated_tasks + the server rebase contract
# ----------------------------------------------------------------------


def _legacy_server_population(
    n_tasks,
    *,
    cpus=4,
    seed=42,
    load=0.85,
    mean_service=0.05,
    pareto_shape=1.5,
    service_cap_factor=100.0,
    weight_classes=(("std", 1.0, 0.7), ("pro", 4.0, 0.2), ("ent", 10.0, 0.1)),
):
    """The pre-registry inline generation loop, replicated verbatim."""
    rng = random.Random(seed)
    lam = load * cpus / mean_service
    scale = mean_service * (pareto_shape - 1) / pareto_shape
    cap = service_cap_factor * mean_service
    names = [c[0] for c in weight_classes]
    probs = [c[2] for c in weight_classes]
    out, t = [], 0.0
    for i in range(n_tasks):
        t += rng.expovariate(lam)
        demand = min(scale * rng.paretovariate(pareto_shape), cap)
        cls = rng.choices(names, weights=probs)[0]
        out.append((f"{cls}-{i:05d}", t, demand))
    return out


class TestGeneratedTasks:
    def test_names_arrivals_and_behaviors(self):
        specs = generated_tasks(
            5,
            arrival=TraceArrivals((0.0, 1.0, 2.0, 3.0, 4.0)),
            demand=FixedDemand(0.25),
            weight_classes=(("only", 2.0, 1.0),),
            prefix="s_",
            start=10.0,
        )
        assert [s.name for s in specs] == [f"s_only-{i:05d}" for i in range(5)]
        assert [s.at for s in specs] == [10.0, 11.0, 12.0, 13.0, 14.0]
        assert all(isinstance(s.behavior, Compute) for s in specs)
        assert all(s.behavior.cpu_seconds == 0.25 for s in specs)
        assert all(s.weight == 2.0 for s in specs)

    def test_rejects_bad_population_size(self):
        with pytest.raises(ValueError, match="n_tasks"):
            generated_tasks(
                0,
                arrival=PoissonArrivals(1.0),
                demand=FixedDemand(0.1),
                weight_classes=(("a", 1.0, 1.0),),
            )

    def test_rejects_unnormalised_class_probabilities(self):
        with pytest.raises(ValueError, match="sum to 1"):
            generated_tasks(
                1,
                arrival=PoissonArrivals(1.0),
                demand=FixedDemand(0.1),
                weight_classes=(("a", 1.0, 0.5), ("b", 2.0, 0.2)),
            )

    @pytest.mark.parametrize("seed", [42, 7, 123])
    @pytest.mark.parametrize("n", [50, 400])
    def test_server_scenario_bit_identical_to_legacy_loop(self, seed, n):
        scenario = server_scenario(n, seed=seed)
        legacy = _legacy_server_population(n, seed=seed)
        got = [(s.name, s.at, s.behavior.cpu_seconds) for s in scenario.tasks]
        assert got == legacy
        assert scenario.duration == legacy[-1][1] * 1.5

    def test_server_scenario_bit_identical_nondefault_params(self):
        scenario = server_scenario(
            80,
            cpus=2,
            seed=9,
            load=1.2,
            mean_service=0.02,
            pareto_shape=2.0,
            service_cap_factor=50.0,
            drain_factor=2.0,
        )
        legacy = _legacy_server_population(
            80,
            cpus=2,
            seed=9,
            load=1.2,
            mean_service=0.02,
            pareto_shape=2.0,
            service_cap_factor=50.0,
        )
        got = [(s.name, s.at, s.behavior.cpu_seconds) for s in scenario.tasks]
        assert got == legacy
        assert scenario.duration == legacy[-1][1] * 2.0

    def test_weights_follow_class_membership(self):
        scenario = server_scenario(100, seed=42)
        by_class = {"std": 1.0, "pro": 4.0, "ent": 10.0}
        for spec in scenario.tasks:
            cls = spec.name.split("-")[0]
            assert spec.weight == by_class[cls]

    def test_mmpp_rate_zero_lull_still_terminates(self):
        arrival = BurstyArrivals(
            50.0, 0.0, mean_burst=0.2, mean_lull=0.2, start_in_burst=True
        )
        times = _times(arrival, 100)
        assert len(times) == 100
        assert all(map(math.isfinite, times))
