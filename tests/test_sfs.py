"""Tests for the SFS scheduler: surplus invariants, three queues,
proportional allocation, SFQ equivalence on uniprocessors."""

import math

import pytest

from tests.conftest import add_inf
from repro.core.sfs import SurplusFairScheduler
from repro.schedulers.sfq import StartTimeFairScheduler
from repro.sim.events import Block, Run
from repro.sim.machine import Machine
from repro.sim.task import Task
from repro.workloads.base import GeneratorBehavior
from repro.workloads.cpu_bound import Infinite


def sfs_machine(cpus=2, quantum=0.2, **kw):
    sched = SurplusFairScheduler()
    return Machine(sched, cpus=cpus, quantum=quantum, **kw), sched


class TestSurplusInvariants:
    def test_all_surpluses_nonnegative(self):
        m, sched = sfs_machine(cpus=2, quantum=0.1)
        for i in range(6):
            add_inf(m, i + 1, f"T{i}")
        for step in range(1, 30):
            m.run_until(step * 0.35)
            for tid, alpha in sched.surpluses().items():
                assert alpha >= -1e-9, f"negative surplus for tid {tid}"

    def test_at_least_one_zero_surplus(self):
        # §2.3: the thread at the virtual time has surplus zero.
        m, sched = sfs_machine(cpus=2, quantum=0.1)
        for i in range(5):
            add_inf(m, i + 1, f"T{i}")
        for step in range(1, 20):
            m.run_until(step * 0.3)
            values = list(sched.surpluses().values())
            assert min(values) == pytest.approx(0.0, abs=1e-9)

    def test_pick_matches_exact_minimum(self):
        m, sched = sfs_machine(cpus=2, quantum=0.1)
        for i in range(8):
            add_inf(m, (i % 3) + 1, f"T{i}")
        m.run_until(2.0)
        # At an arbitrary settled instant, pick_next must return the
        # schedulable task with the minimum fresh surplus.
        pick = sched.pick_next(0, m.now)
        exact = sched.exact_minimum_surplus_task()
        assert pick is not None and exact is not None
        assert sched.surplus_of(pick) == pytest.approx(sched.surplus_of(exact))

    def test_queue_membership_tracks_runnable_set(self):
        m, sched = sfs_machine(cpus=1)

        def gen():
            yield Run(0.05)
            yield Block(10.0)
            yield Run(math.inf)

        t = m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="b"))
        add_inf(m, 1, "bg")
        m.run_until(1.0)
        assert t not in sched.surplus_queue
        assert t not in sched.weight_queue
        m.run_until(11.0)
        assert t in sched.surplus_queue
        assert t in sched.weight_queue

    def test_weight_queue_sorted_descending_by_user_weight(self):
        m, sched = sfs_machine(cpus=2)
        weights = [5, 1, 9, 3]
        for i, w in enumerate(weights):
            add_inf(m, w, f"T{i}")
        m.run_until(0.05)
        listed = [t.weight for t in sched.weight_queue]
        assert listed == sorted(weights, reverse=True)


class TestProportionalAllocation:
    def test_shares_follow_weights_1_2_1(self):
        m, _ = sfs_machine(cpus=2, quantum=0.2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 2, "B")
        c = add_inf(m, 1, "C")
        m.run_until(40.0)
        total = a.service + b.service + c.service
        assert total == pytest.approx(80.0)
        assert b.service / total == pytest.approx(0.5, abs=0.05)

    def test_readjustment_embedded_for_infeasible_weights(self):
        # 1:10 on 2 CPUs: both get a full processor (phi 1:1).
        m, _ = sfs_machine(cpus=2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 10, "B")
        m.run_until(10.0)
        assert a.service == pytest.approx(10.0)
        assert b.service == pytest.approx(10.0)
        assert b.phi == pytest.approx(1.0)

    def test_uniprocessor_proportionality(self):
        m, _ = sfs_machine(cpus=1, quantum=0.1)
        add_inf(m, 1, "A")
        b = add_inf(m, 3, "B")
        m.run_until(20.0)
        assert b.service / 20.0 == pytest.approx(0.75, abs=0.03)

    def test_blocked_threads_do_not_accumulate_credit(self):
        # §2.3: a thread sleeping a long time must not starve others
        # after waking.
        m, _ = sfs_machine(cpus=1, quantum=0.1)

        def gen():
            yield Run(0.01)
            yield Block(10.0)
            yield Run(math.inf)

        m.add_task(Task(GeneratorBehavior(gen()), weight=1, name="s"))
        hog = add_inf(m, 1, "hog")
        m.run_until(10.0)
        hog_before = hog.service
        m.run_until(14.0)
        # After waking, the sleeper competes 1:1 — it must not get the
        # CPU exclusively to "catch up" its sleep time.
        hog_delta = hog.service - hog_before
        assert hog_delta == pytest.approx(2.0, abs=0.3)

    def test_heavier_task_unaffected_by_light_churn(self):
        # Application isolation: a weight-10 task keeps ~10/12 of a
        # uniprocessor while two light tasks churn.
        m, _ = sfs_machine(cpus=1, quantum=0.1)
        heavy = add_inf(m, 10, "heavy")
        add_inf(m, 1, "l1")
        add_inf(m, 1, "l2")
        m.run_until(24.0)
        assert heavy.service / 24.0 == pytest.approx(10 / 12, abs=0.05)


class TestSfqEquivalence:
    def test_uniprocessor_sfs_equals_sfq_decisions(self):
        """§2.3: "surplus fair scheduling reduces to start-time fair
        queuing (SFQ) in a uniprocessor system"."""

        def run(scheduler):
            m = Machine(scheduler, cpus=1, quantum=0.2)
            tasks = [
                m.add_task(Task(Infinite(), weight=w, name=f"w{w}-{i}"))
                for i, w in enumerate((1, 2, 4, 1))
            ]
            order = []
            orig = scheduler.pick_next

            def spy(cpu, now):
                t = orig(cpu, now)
                if t is not None:
                    order.append(t.name)
                return t

            scheduler.pick_next = spy
            m.run_until(10.0)
            return order, [t.service for t in tasks]

        sfs_order, sfs_service = run(SurplusFairScheduler())
        sfq_order, sfq_service = run(StartTimeFairScheduler())
        assert sfs_order == sfq_order
        assert sfs_service == pytest.approx(sfq_service)


class TestInstrumentation:
    def test_resort_count_grows_with_vtime_changes(self):
        m, sched = sfs_machine(cpus=2, quantum=0.1)
        for i in range(4):
            add_inf(m, 1, f"T{i}")
        m.run_until(2.0)
        assert sched.resort_count > 0
        assert sched.decision_count > 0

    def test_surpluses_keyed_by_tid(self):
        m, sched = sfs_machine(cpus=2)
        a = add_inf(m, 1, "A")
        b = add_inf(m, 2, "B")
        m.run_until(0.5)
        surp = sched.surpluses()
        assert set(surp) == {a.tid, b.tid}
