"""Tests for the §3.2 bounded-scan heuristic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import add_inf
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.sim.machine import Machine
from repro.sim.task import Task, TaskState
from repro.workloads.cpu_bound import Infinite


def machine(scan_depth=20, cpus=4, quantum=0.01, **kw):
    sched = HeuristicSurplusFairScheduler(scan_depth=scan_depth, **kw)
    return Machine(sched, cpus=cpus, quantum=quantum), sched


def populate(m, n, seed=1):
    rng = random.Random(seed)
    for i in range(n):
        w = rng.choice([1, 1, 2, 4, 8, 16])
        add_inf(m, w, f"T{i}")


class TestAccuracy:
    def test_scan_covering_all_threads_is_exact(self):
        m, sched = machine(scan_depth=100, track_accuracy=True)
        populate(m, 30)
        m.run_until(2.0)
        assert sched.accuracy == 1.0
        assert sched.tracked_decisions > 100

    def test_paper_claim_k20_over_99_percent(self):
        # Fig. 3: k=20 gives >99% accuracy even at 400 runnable threads
        # on a quad-processor. Use 150 threads to keep the test fast.
        m, sched = machine(scan_depth=20, track_accuracy=True)
        populate(m, 150)
        m.run_until(2.0)
        assert sched.accuracy > 0.99

    def test_tiny_scan_is_less_accurate(self):
        m1, s1 = machine(scan_depth=1, track_accuracy=True, refresh_every=1000)
        populate(m1, 100)
        m1.run_until(2.0)
        m2, s2 = machine(scan_depth=50, track_accuracy=True, refresh_every=1000)
        populate(m2, 100)
        m2.run_until(2.0)
        assert s1.accuracy <= s2.accuracy

    def test_accuracy_defaults_to_one_without_decisions(self):
        sched = HeuristicSurplusFairScheduler(track_accuracy=True)
        assert sched.accuracy == 1.0


class TestBehaviour:
    def test_allocation_matches_exact_sfs_closely(self):
        from repro.core.sfs import SurplusFairScheduler

        def shares(sched):
            m = Machine(sched, cpus=2, quantum=0.1)
            tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3, 4)]
            m.run_until(20.0)
            total = sum(t.service for t in tasks)
            return [t.service / total for t in tasks]

        exact = shares(SurplusFairScheduler())
        heur = shares(HeuristicSurplusFairScheduler(scan_depth=20))
        for a, b in zip(exact, heur):
            assert a == pytest.approx(b, abs=0.05)

    def test_work_conserving_even_with_tiny_scan(self):
        sched = HeuristicSurplusFairScheduler(scan_depth=1, refresh_every=10**6)
        m = Machine(sched, cpus=2, quantum=0.05, check_work_conserving=True)
        for i in range(10):
            add_inf(m, i + 1, f"T{i}")
        m.run_until(3.0)  # must not raise

    def test_periodic_full_refresh_happens(self):
        m, sched = machine(scan_depth=5, refresh_every=10)
        populate(m, 50)
        m.run_until(1.0)
        assert sched.resort_count >= sched.decision_count // 10 - 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HeuristicSurplusFairScheduler(scan_depth=0)
        with pytest.raises(ValueError):
            HeuristicSurplusFairScheduler(refresh_every=0)

    def test_pick_comes_from_the_three_queue_windows(self):
        m, sched = machine(scan_depth=3, refresh_every=10**6)
        populate(m, 20)
        m.run_until(0.1)
        k = sched.scan_depth
        window = {
            t.tid
            for t in (
                sched.start_queue.peek_n(k)
                + sched.weight_queue.peek_tail_n(k)
                + sched.surplus_queue.peek_n(k)
            )
        }
        assert len(window) <= 3 * k
        pick = sched.pick_next(0, m.now)
        assert pick is not None
        if sched.widened_scans == 0:
            assert pick.tid in window


def standalone(scan_depth=1, n=6, running=(), refresh_every=10**6, **kw):
    """A heuristic scheduler populated without a machine.

    ``running`` tids (1-based indices into the population) are marked
    RUNNING, the way dispatched threads look to ``pick_next``.
    """
    sched = HeuristicSurplusFairScheduler(
        scan_depth=scan_depth, refresh_every=refresh_every, **kw
    )
    tasks = []
    for i in range(n):
        task = Task(Infinite(), weight=1.0 + (i % 3), name=f"T{i}")
        task.state = TaskState.RUNNABLE
        sched.on_arrival(task, 0.0)
        tasks.append(task)
    for idx in running:
        tasks[idx].state = TaskState.RUNNING
    return sched, tasks


class TestWideningFallback:
    """The all-window-threads-running case (regression for the old
    O(n) exact-scan fallback)."""

    def window_heads(self, sched):
        """Tids of the k=1 window: the three queue heads."""
        return {
            sched.start_queue.peek_n(1)[0].tid,
            sched.weight_queue.peek_tail_n(1)[0].tid,
            sched.surplus_queue.peek_n(1)[0].tid,
        }

    def occlude(self, sched, tasks):
        """Mark every k=1 window head RUNNING."""
        by_tid = {t.tid: t for t in tasks}
        for tid in self.window_heads(sched):
            by_tid[tid].state = TaskState.RUNNING

    def test_widens_instead_of_exact_scan(self, monkeypatch):
        sched, tasks = standalone(scan_depth=1, n=8)
        self.occlude(sched, tasks)
        monkeypatch.setattr(
            sched,
            "exact_minimum_surplus_task",
            lambda: pytest.fail("widening must not fall back to O(n)"),
        )
        pick = sched.pick_next(0, 0.0)
        assert pick is not None
        assert pick.state is TaskState.RUNNABLE
        assert sched.widened_scans > 0

    def test_widened_pick_is_exact_on_fresh_queues(self):
        sched, tasks = standalone(scan_depth=1, n=8)
        self.occlude(sched, tasks)
        sched._recompute_surpluses()
        pick = sched.pick_next(0, 0.0)
        exact = sched.exact_minimum_surplus_task()
        assert pick is exact

    def test_all_running_returns_none(self):
        sched, tasks = standalone(scan_depth=1, n=4, running=(0, 1, 2, 3))
        assert sched.pick_next(0, 0.0) is None

    def test_work_conserving_under_machine(self):
        # End-to-end: tiny scan + many CPUs drive the widening path on
        # a real machine; work conservation must hold throughout.
        sched = HeuristicSurplusFairScheduler(
            scan_depth=1, refresh_every=10**6
        )
        m = Machine(sched, cpus=4, quantum=0.02, check_work_conserving=True)
        for i in range(12):
            add_inf(m, 1 + (i % 4), f"T{i}")
        m.run_until(2.0)  # must not raise


class TestStalenessRefresh:
    def test_weight_change_forces_refresh(self):
        m, sched = machine(scan_depth=5, refresh_every=10**6)
        populate(m, 30)
        m.run_until(0.5)
        before = sched.resort_count
        m.change_weight(m.tasks[0], 16.0)
        m.run_until(0.6)
        assert sched.forced_refreshes > 0
        assert sched.resort_count > before

    def test_unchanged_weight_does_not_force_refresh(self):
        m, sched = machine(scan_depth=5, refresh_every=10**6)
        populate(m, 20, seed=3)
        m.run_until(0.5)
        m.change_weight(m.tasks[0], m.tasks[0].weight)
        assert not sched._order_stale

    def test_rebase_forces_refresh(self):
        from repro.core.fixed_point import FixedTags

        sched = HeuristicSurplusFairScheduler(
            scan_depth=5, refresh_every=10**6, tag_math=FixedTags(n=4, wrap_bits=16)
        )
        m = Machine(sched, cpus=2, quantum=0.05, record_events=False)
        for i in range(4):
            add_inf(m, 1, f"T{i}")
        m.run_until(10.0)
        assert sched.rebase_count > 0
        assert sched.forced_refreshes > 0


class TestServerFamilyAccuracy:
    def test_k20_accuracy_on_overloaded_server(self):
        # Acceptance bar: >= 95% of decisions match the exact SFS pick
        # at the paper's k=20 on the overloaded server family, where
        # the runnable set grows into the hundreds.
        from repro.scenario import run_scenario, server_scenario

        scn = server_scenario(
            400,
            cpus=4,
            scheduler="sfs-heuristic",
            load=1.6,
            scheduler_params={"scan_depth": 20, "track_accuracy": True},
        )
        result = run_scenario(scn)
        sched = result.scheduler
        assert sched.tracked_decisions > 200
        assert sched.accuracy >= 0.95


@settings(deadline=None, max_examples=60)
@given(
    n=st.integers(min_value=2, max_value=24),
    k=st.integers(min_value=1, max_value=32),
    data=st.data(),
)
def test_fresh_queue_pick_matches_exact(n, k, data):
    """Model test for the bounded scan + widening fallback.

    With freshly recomputed surpluses and ``k`` larger than the number
    of running threads, the surplus-queue window must contain the true
    minimum-surplus runnable thread, so the pick is *exact*. With a
    smaller ``k`` the pick may legitimately be approximate (another
    queue's window can surface a runnable thread first — the paper's
    accuracy trade-off), but it must still be work conserving: some
    runnable thread whenever one exists, None only when none does.
    """
    sched = HeuristicSurplusFairScheduler(scan_depth=k, refresh_every=10**6)
    tasks = []
    for i in range(n):
        task = Task(Infinite(), weight=1.0, name=f"T{i}")
        task.state = TaskState.RUNNABLE
        sched.on_arrival(task, 0.0)
        tasks.append(task)
    # Distinct per-task service histories -> distinct start tags and
    # surpluses (weight 1 everywhere keeps phis feasible and equal;
    # unique quanta keep tags tie-free — a genuine surplus tie may
    # resolve to a different, equally-minimal thread when the window
    # occludes the tid-order winner, which is not a heuristic bug).
    quanta = data.draw(
        st.lists(
            st.floats(min_value=0.001, max_value=0.5),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        label="quanta",
    )
    for task, ran in zip(tasks, quanta):
        task.state = TaskState.RUNNING
        sched.on_preempt(task, 0.0, ran)
        task.state = TaskState.RUNNABLE
    running = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n),
        label="running",
    )
    for idx in running:
        tasks[idx].state = TaskState.RUNNING
    sched._recompute_surpluses()
    pick = sched.pick_next(0, 0.0)
    exact = sched.exact_minimum_surplus_task()
    if exact is None:
        assert pick is None
    elif k > len(running):
        assert pick is exact
    else:
        assert pick is not None
        assert pick.state is TaskState.RUNNABLE
