"""Tests for the §3.2 bounded-scan heuristic."""

import random

import pytest

from tests.conftest import add_inf
from repro.core.sfs_heuristic import HeuristicSurplusFairScheduler
from repro.sim.machine import Machine


def machine(scan_depth=20, cpus=4, quantum=0.01, **kw):
    sched = HeuristicSurplusFairScheduler(scan_depth=scan_depth, **kw)
    return Machine(sched, cpus=cpus, quantum=quantum), sched


def populate(m, n, seed=1):
    rng = random.Random(seed)
    for i in range(n):
        w = rng.choice([1, 1, 2, 4, 8, 16])
        add_inf(m, w, f"T{i}")


class TestAccuracy:
    def test_scan_covering_all_threads_is_exact(self):
        m, sched = machine(scan_depth=100, track_accuracy=True)
        populate(m, 30)
        m.run_until(2.0)
        assert sched.accuracy == 1.0
        assert sched.tracked_decisions > 100

    def test_paper_claim_k20_over_99_percent(self):
        # Fig. 3: k=20 gives >99% accuracy even at 400 runnable threads
        # on a quad-processor. Use 150 threads to keep the test fast.
        m, sched = machine(scan_depth=20, track_accuracy=True)
        populate(m, 150)
        m.run_until(2.0)
        assert sched.accuracy > 0.99

    def test_tiny_scan_is_less_accurate(self):
        m1, s1 = machine(scan_depth=1, track_accuracy=True, refresh_every=1000)
        populate(m1, 100)
        m1.run_until(2.0)
        m2, s2 = machine(scan_depth=50, track_accuracy=True, refresh_every=1000)
        populate(m2, 100)
        m2.run_until(2.0)
        assert s1.accuracy <= s2.accuracy

    def test_accuracy_defaults_to_one_without_decisions(self):
        sched = HeuristicSurplusFairScheduler(track_accuracy=True)
        assert sched.accuracy == 1.0


class TestBehaviour:
    def test_allocation_matches_exact_sfs_closely(self):
        from repro.core.sfs import SurplusFairScheduler

        def shares(sched):
            m = Machine(sched, cpus=2, quantum=0.1)
            tasks = [add_inf(m, w, f"w{w}") for w in (1, 2, 3, 4)]
            m.run_until(20.0)
            total = sum(t.service for t in tasks)
            return [t.service / total for t in tasks]

        exact = shares(SurplusFairScheduler())
        heur = shares(HeuristicSurplusFairScheduler(scan_depth=20))
        for a, b in zip(exact, heur):
            assert a == pytest.approx(b, abs=0.05)

    def test_work_conserving_even_with_tiny_scan(self):
        sched = HeuristicSurplusFairScheduler(scan_depth=1, refresh_every=10**6)
        m = Machine(sched, cpus=2, quantum=0.05, check_work_conserving=True)
        for i in range(10):
            add_inf(m, i + 1, f"T{i}")
        m.run_until(3.0)  # must not raise

    def test_periodic_full_refresh_happens(self):
        m, sched = machine(scan_depth=5, refresh_every=10)
        populate(m, 50)
        m.run_until(1.0)
        assert sched.resort_count >= sched.decision_count // 10 - 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HeuristicSurplusFairScheduler(scan_depth=0)
        with pytest.raises(ValueError):
            HeuristicSurplusFairScheduler(refresh_every=0)

    def test_candidates_deduplicated(self):
        m, sched = machine(scan_depth=50)
        populate(m, 10)
        m.run_until(0.1)
        cands = sched._candidates()
        tids = [t.tid for t in cands]
        assert len(tids) == len(set(tids))
        assert len(cands) <= 10
