"""Tests for the redesigned ``sfs-experiment`` CLI (run/sweep/list)."""

import csv
import json

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestRunSubcommand:
    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 " in out and "Figure 1" in out

    def test_bare_experiment_id_still_works(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_bare_and_subcommand_forms_identical(self, capsys):
        main(["fig4"])
        bare = capsys.readouterr().out
        main(["run", "fig4"])
        sub = capsys.readouterr().out
        assert bare == sub

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])

    def test_csv_export(self, tmp_path, capsys):
        outdir = tmp_path / "csv"
        assert main(["run", "fig4", "--csv", str(outdir)]) == 0
        files = {p.name for p in outdir.iterdir()}
        assert "fig4_sfq_series.csv" in files
        assert "fig4_sfq-readjust_series.csv" in files
        with open(outdir / "fig4_sfq_series.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["series", "time", "value"]
        assert {r[0] for r in rows[1:]} == {"T1", "T2", "T3"}
        # phase shares land in per-field csvs
        assert "fig4_sfq_phase2.csv" in files

    def test_json_export(self, tmp_path, capsys):
        outdir = tmp_path / "json"
        assert main(["run", "fig4", "--json", str(outdir)]) == 0
        with open(outdir / "fig4_sfq.json") as fh:
            payload = json.load(fh)
        assert payload["scheduler"] == "SFQ"
        assert "phase2" in payload and "T1" in payload["phase2"]
        # non-serializable fields (Task objects) are dropped, not dumped
        assert "tasks" not in payload or payload["tasks"] == {}


class TestSweepSubcommand:
    def test_six_cell_grid_serial(self, capsys):
        code = main([
            "sweep", "--scheduler", "sfs", "sfq", "stride",
            "--cpus", "1", "2", "--duration", "2.0", "--workers", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: 6 cells" in out
        # deterministic scheduler-major ordering
        lines = [
            row for row in out.splitlines()
            if row.startswith(("sfs", "sfq", "stride"))
        ]
        assert [row.split()[0] for row in lines] == [
            "sfs", "sfs", "sfq", "sfq", "stride", "stride",
        ]

    def test_sweep_csv_export(self, tmp_path, capsys):
        outdir = tmp_path / "sweep"
        code = main([
            "sweep", "--scheduler", "sfs", "--cpus", "2",
            "--duration", "1.0", "--workers", "0", "--csv", str(outdir),
        ])
        assert code == 0
        with open(outdir / "sweep.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:3] == ["scheduler", "cpus", "quantum"]
        assert rows[1][0] == "sfs"

    def test_sweep_json_export(self, tmp_path, capsys):
        outdir = tmp_path / "sweepj"
        main([
            "sweep", "--scheduler", "sfs", "--cpus", "2",
            "--duration", "1.0", "--workers", "0", "--json", str(outdir),
        ])
        capsys.readouterr()
        with open(outdir / "sweep.json") as fh:
            payload = json.load(fh)
        assert payload[0]["scheduler"] == "sfs"
        assert 0.0 < payload[0]["jains"] <= 1.0

    def test_tasks_one_runs_heavy_alone(self, capsys):
        code = main([
            "sweep", "--scheduler", "sfs", "--cpus", "1", "--tasks", "1",
            "--duration", "1.0", "--workers", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # only the heavy task -> it owns the whole (1-CPU) machine
        assert " 1.0000 " in out.splitlines()[-1]

    def test_tasks_zero_rejected(self, capsys):
        code = main([
            "sweep", "--scheduler", "sfs", "--cpus", "1", "--tasks", "0",
            "--duration", "1.0", "--workers", "0",
        ])
        assert code == 2
        assert "--tasks must be >= 1" in capsys.readouterr().err

    def test_unknown_scheduler_fails_cleanly(self, capsys):
        code = main(["sweep", "--scheduler", "cfs", "--cpus", "1",
                     "--duration", "1.0", "--workers", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scheduler 'cfs'" in err
        assert "Traceback" not in err


class TestServerSubcommand:
    def test_runs_and_reports_throughput(self, capsys):
        code = main([
            "server", "--n", "50", "--scheduler", "sfs", "round-robin",
            "--cost-model", "zero",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert out.strip().splitlines()[-1].startswith("round-robin")

    def test_json_export(self, tmp_path, capsys):
        code = main([
            "server", "--n", "30", "--scheduler", "sfq",
            "--json", str(tmp_path),
        ])
        assert code == 0
        rows = json.loads((tmp_path / "server.json").read_text())
        assert rows[0]["scheduler"] == "sfq"
        assert rows[0]["events_per_sec"] > 0
        assert {"share_std", "share_pro", "share_ent"} <= set(rows[0])

    def test_csv_export(self, tmp_path, capsys):
        code = main([
            "server", "--n", "30", "--csv", str(tmp_path),
        ])
        assert code == 0
        lines = (tmp_path / "server.csv").read_text().strip().splitlines()
        assert lines[0].startswith("scheduler,")
        assert len(lines) == 4  # header + default three schedulers

    def test_bad_n_fails_cleanly(self, capsys):
        code = main(["server", "--n", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "n_tasks must be >= 1" in err
        assert "Traceback" not in err


class TestExecutionBackendFlags:
    def test_sweep_chunked_checkpoint_resumes(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        argv = [
            "sweep", "--scheduler", "sfs", "sfq", "--cpus", "1", "2",
            "--duration", "1.0", "--backend", "chunked", "--chunk-size",
            "2", "--workers", "0", "--checkpoint", str(ck),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(ck.read_text().splitlines()) == 4
        # Second run resumes: same table, no new checkpoint lines.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second == first
        assert len(ck.read_text().splitlines()) == 4

    def test_sweep_csv_streams_identically(self, tmp_path, capsys):
        plain = tmp_path / "plain"
        chunked = tmp_path / "chunked"
        base = [
            "sweep", "--scheduler", "sfs", "sfq", "--cpus", "1",
            "--duration", "1.0", "--workers", "0",
        ]
        assert main(base + ["--csv", str(plain)]) == 0
        assert main(
            base + ["--csv", str(chunked), "--backend", "chunked"]
        ) == 0
        capsys.readouterr()
        assert (plain / "sweep.csv").read_bytes() == (
            chunked / "sweep.csv"
        ).read_bytes()

    def test_server_backend_flag(self, capsys):
        code = main([
            "server", "--n", "40", "--scheduler", "sfs", "--cost-model",
            "zero", "--backend", "serial",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s" in out and out.strip().splitlines()[-1].startswith("sfs")

    def test_run_accepts_backend_flags_on_paper_figures(self, capsys):
        # Paper figures don't fan out; the flags parse and are ignored.
        assert main(["run", "fig4", "--backend", "serial"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_ssh_backend_requires_hosts(self, capsys):
        code = main([
            "sweep", "--scheduler", "sfs", "--cpus", "1",
            "--duration", "1.0", "--backend", "ssh",
        ])
        assert code == 2
        assert "at least one --host" in capsys.readouterr().err


class TestWorkerSubcommand:
    def test_worker_serves_ping_over_stdio(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"op": "ping"}\n{"op": "shutdown"}\n')
        )
        assert main(["worker"]) == 0
        replies = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [r["op"] for r in replies] == ["hello", "pong", "bye"]


class TestListSubcommand:
    def test_lists_experiments_and_schedulers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "sfs-heuristic" in out and "round-robin" in out

    def test_no_arguments_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])


SCENARIO_YAML = """\
name: demo
duration: 2.0
metrics: [jains, completed]
groups:
  - {count: 3, prefix: w}
"""

SWEEP_YAML = """\
kind: sweep
base:
  name: demo
  duration: 1.0
  groups:
    - {count: 2, prefix: w}
schedulers: [sfs, sfq]
cpus: [1, 2]
metrics: [jains]
"""


class TestConfigMode:
    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "demo.yaml"
        path.write_text(SCENARIO_YAML)
        return path

    @pytest.fixture
    def sweep_file(self, tmp_path):
        path = tmp_path / "demo_sweep.yaml"
        path.write_text(SWEEP_YAML)
        return path

    def test_run_config_file(self, scenario_file, capsys):
        assert main(["run", str(scenario_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario: demo" in out
        assert "jains" in out and "completed" in out

    def test_run_config_duration_override(self, scenario_file, capsys):
        assert main(["run", str(scenario_file), "--duration", "0.5"]) == 0
        assert "duration=0.5" in capsys.readouterr().out

    def test_run_config_exports(self, scenario_file, tmp_path, capsys):
        outdir = tmp_path / "out"
        code = main([
            "run", str(scenario_file),
            "--csv", str(outdir), "--json", str(outdir),
        ])
        assert code == 0
        with open(outdir / "demo_metrics.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["metric", "key", "value"]
        assert {r[0] for r in rows[1:]} == {"jains", "completed"}
        with open(outdir / "demo.json") as fh:
            payload = json.load(fh)
        assert payload["scenario"] == "demo"
        assert "jains" in payload["metrics"]

    def test_sweep_config_file(self, sweep_file, capsys):
        assert main(["sweep", str(sweep_file), "--workers", "0"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        rows = [line for line in out.splitlines() if line.startswith(("sfs", "sfq"))]
        assert [r.split()[0] for r in rows] == ["sfs", "sfs", "sfq", "sfq"]

    def test_sweep_config_through_backends(self, sweep_file, capsys):
        main(["sweep", str(sweep_file), "--workers", "0"])
        serial = capsys.readouterr().out
        main(["sweep", str(sweep_file), "--backend", "process", "--workers", "2"])
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_run_rejects_sweep_config(self, sweep_file, capsys):
        assert main(["run", str(sweep_file)]) == 2
        assert "sweep" in capsys.readouterr().err

    def test_sweep_rejects_scenario_config(self, scenario_file, capsys):
        assert main(["sweep", str(scenario_file)]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_missing_config_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.yaml")]) == 2
        assert "nope.yaml" in capsys.readouterr().err

    def test_invalid_config_reports_dotted_path(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("name: bad\ncpus: 0\nduration: 1.0\n")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "cpus" in err and ">= 1" in err

    def test_list_names_arrivals_and_demands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "arrival processes" in out
        assert "poisson" in out and "flash-crowd" in out
        assert "demand distributions" in out
        assert "bounded-pareto" in out and "lognormal" in out
