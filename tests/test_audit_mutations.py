"""Fault-injection proof for the invariant auditor.

Each test seeds one specific scheduler/accounting bug into an otherwise
healthy SFS run via monkeypatching and asserts the corresponding audit
check flags it — demonstrating the checks detect real corruption, not
just vacuously pass on correct code. The baseline test pins the flip
side: the unmutated run is violation-free, so any flag in the mutated
runs is attributable to the injected fault.
"""

import pytest

from repro.core.sfs import SurplusFairScheduler
from repro.core.tags import TaggedScheduler
from repro.scenario import Scenario, group, run_scenario, task
from repro.sim.machine import Machine
from repro.sim.task import TaskState


def _scenario(**overrides):
    base = dict(
        name="audit-mutation",
        scheduler="sfs",
        cpus=1,
        duration=8.0,
        quantum=0.05,
        tasks=(task("hog", 4), *group(3, 1, "bg")),
        audit=True,
        audit_params={"surplus_check_every": 1},
    )
    base.update(overrides)
    return Scenario(**base)


def test_baseline_unmutated_run_is_violation_free():
    report = run_scenario(_scenario()).audit_report
    assert report.ok, report.render()
    assert sorted(report.counts) == [
        "bounded_lag",
        "monotone_vtime",
        "no_starvation",
        "service_conservation",
        "surplus_order",
    ]


def test_skipped_start_tag_update_flagged_by_bounded_lag(monkeypatch):
    # The bug: on preemption, one thread's start tag is never advanced
    # to its finish tag (Eq. 6 skipped). Its surplus sticks at zero, so
    # SFS keeps re-dispatching it and it monopolizes the CPU — exactly
    # the service skew the GMS-replay lag bound exists to catch.
    orig = TaggedScheduler.on_preempt

    def broken(self, task, now, ran):
        if task.name == "hog":
            self._finish_quantum(task, ran)  # F advances; S stays stuck
            self._tags_updated(task, now)
            return
        orig(self, task, now, ran)

    monkeypatch.setattr(TaggedScheduler, "on_preempt", broken)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["bounded_lag"] > 0, report.render()


def test_undercharged_finish_tag_flagged_by_bounded_lag(monkeypatch):
    # The bug: one thread's quantum is billed at half length when its
    # finish tag is computed, silently doubling its effective share.
    # The decision path stays self-consistent (surplus order holds over
    # the corrupted tags), so only the end-to-end lag bound catches it.
    orig = TaggedScheduler._finish_quantum

    def cheat(self, task, ran):
        if task.name == "hog":
            ran = ran * 0.5
        orig(self, task, ran)

    monkeypatch.setattr(TaggedScheduler, "_finish_quantum", cheat)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["bounded_lag"] > 0, report.render()
    assert report.counts["surplus_order"] == 0


def test_broken_surplus_ordering_flagged(monkeypatch):
    # The bug: the decision returns the runnable thread with the
    # *largest* surplus (a reversed comparator / corrupted queue-3
    # order). Every sampled dispatch disagrees with the brute-force
    # fresh minimum.
    def worst_pick(self, cpu, now):
        self.decision_count += 1
        self._refresh_vtime()
        if self._surplus_dirty:
            self._recompute_surpluses()
        worst = None
        for candidate in self.surplus_queue:
            if candidate.state is TaskState.RUNNABLE:
                worst = candidate
        return worst

    monkeypatch.setattr(SurplusFairScheduler, "pick_next", worst_pick)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["surplus_order"] > 0, report.render()


def test_dropped_service_charge_flagged_by_conservation(monkeypatch):
    # The bug: half of one thread's delivered service is never credited
    # to the task (the processor busy time still accrues) — the classic
    # lost-accounting bug the Σ service == Σ busy identity pins down.
    orig = Machine._charge

    def leaky(self, proc, now):
        hog = proc.task is not None and proc.task.name == "hog"
        before = proc.task.service if hog else 0.0
        orig(self, proc, now)
        if hog:
            proc.task.service = before + 0.5 * (proc.task.service - before)

    monkeypatch.setattr(Machine, "_charge", leaky)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["service_conservation"] > 0, report.render()


def test_starved_thread_flagged_by_no_starvation(monkeypatch):
    # The bug: the decision path simply never selects one runnable
    # thread (a filtering bug), starving it while the run stays busy.
    def biased_pick(self, cpu, now):
        self.decision_count += 1
        self._refresh_vtime()
        if self._surplus_dirty:
            self._recompute_surpluses()
        for candidate in self.surplus_queue:
            if candidate.state is TaskState.RUNNABLE and candidate.name != "bg-1":
                return candidate
        return None

    monkeypatch.setattr(SurplusFairScheduler, "pick_next", biased_pick)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["no_starvation"] > 0, report.render()
    starvation = [v for v in report.violations if v.check == "no_starvation"]
    assert any("bg-1" in v.message for v in starvation)


def test_backwards_virtual_time_flagged(monkeypatch):
    # The bug: virtual time jumps backwards mid-run without a
    # wrap-around rebase (tag corruption; a real rebase increments
    # rebase_count and is exempt).
    orig = SurplusFairScheduler.pick_next
    state = {"calls": 0}

    def corrupting(self, cpu, now):
        picked = orig(self, cpu, now)
        state["calls"] += 1
        if state["calls"] == 25:
            self._vtime = self._vtime - 5.0
        return picked

    monkeypatch.setattr(SurplusFairScheduler, "pick_next", corrupting)
    report = run_scenario(_scenario()).audit_report
    assert report.counts["monotone_vtime"] > 0, report.render()


def test_mutation_reports_carry_actionable_messages(monkeypatch):
    orig = TaggedScheduler._finish_quantum

    def cheat(self, task, ran):
        if task.name == "hog":
            ran = ran * 0.5
        orig(self, task, ran)

    monkeypatch.setattr(TaggedScheduler, "_finish_quantum", cheat)
    report = run_scenario(_scenario()).audit_report
    summary = report.summary()
    assert summary["ok"] is False
    assert summary["examples"], "violations must surface example messages"
    assert "lag" in summary["examples"][0]
