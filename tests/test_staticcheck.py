"""Unit tests for the repo-specific determinism linter (SFS001-007).

Each rule gets a firing case and a clean case; the engine gets
discovery, suppression, scope, rendering and CLI coverage; and the
final test dogfoods the linter on this repository itself — the same
invocation the blocking CI job runs.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)
from repro.analysis.staticcheck.engine import DEFAULT_ROOTS, discover_files
from repro.analysis.staticcheck.rules import (
    RULES,
    disabled_ids_by_line,
    make_rules,
    rule_ids,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _find(source, rule_id, scope="sim", path="<test>.py"):
    """Violations of one rule (check + finish) on one source string."""
    rules = make_rules([rule_id])
    found = lint_source(source, path, rules=rules, scope=scope)
    for lint_rule in rules:
        found.extend(lint_rule.finish())
    return found


def _rules_fired(source, rule_id, scope="sim"):
    return [v.rule for v in _find(source, rule_id, scope=scope)]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_all_eleven_rules_registered():
    assert rule_ids() == [f"SFS00{i}" for i in range(1, 10)] + ["SFS010", "SFS011"]


def test_every_rule_has_title_and_scope_metadata():
    for rule_id, cls in RULES.items():
        assert cls.id == rule_id
        assert cls.title, rule_id
        assert cls.scopes is None or len(cls.scopes) > 0


def test_make_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="unknown lint rule"):
        make_rules(["SFS999"])


# ----------------------------------------------------------------------
# SFS001: unseeded randomness
# ----------------------------------------------------------------------


def test_sfs001_flags_module_level_random():
    assert _rules_fired("import random\nx = random.random()\n", "SFS001")


def test_sfs001_flags_unseeded_random_instance():
    assert _rules_fired("import random\nr = random.Random()\n", "SFS001")


def test_sfs001_allows_seeded_random_instance():
    assert not _rules_fired("import random\nr = random.Random(42)\n", "SFS001")


def test_sfs001_flags_numpy_global_draws():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert _rules_fired(src, "SFS001")


def test_sfs001_allows_seeded_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng(7)\n"
    assert not _rules_fired(src, "SFS001")


def test_sfs001_flags_bare_from_random_import():
    assert _rules_fired("from random import choice\n", "SFS001")
    assert not _rules_fired("from random import Random\n", "SFS001")


def test_sfs001_is_scoped_to_sim_code():
    src = "import random\nx = random.random()\n"
    assert not _rules_fired(src, "SFS001", scope=None)


# ----------------------------------------------------------------------
# SFS002: wall-clock reads
# ----------------------------------------------------------------------


def test_sfs002_flags_time_time():
    assert _rules_fired("import time\nt = time.time()\n", "SFS002")


def test_sfs002_flags_datetime_now():
    src = "import datetime\nd = datetime.datetime.now()\n"
    assert _rules_fired(src, "SFS002")


def test_sfs002_flags_from_time_import():
    assert _rules_fired("from time import perf_counter\n", "SFS002")


def test_sfs002_allows_simulation_time():
    assert not _rules_fired("now = machine.now\n", "SFS002")


def test_sfs002_is_scoped_to_sim_code():
    assert not _rules_fired("import time\nt = time.time()\n", "SFS002", scope=None)


# ----------------------------------------------------------------------
# SFS003: hash-order leaks (applies to every scanned file)
# ----------------------------------------------------------------------


def test_sfs003_flags_for_loop_over_set():
    assert _rules_fired("for x in {1, 2, 3}:\n    print(x)\n", "SFS003", scope=None)


def test_sfs003_flags_comprehension_over_set_call():
    assert _rules_fired("out = [x for x in set(items)]\n", "SFS003", scope=None)


def test_sfs003_flags_list_of_tracked_set_name():
    src = "names = {'a', 'b'}\nout = list(names)\n"
    assert _rules_fired(src, "SFS003", scope=None)


def test_sfs003_flags_join_over_dict_view():
    assert _rules_fired("s = ', '.join(d.keys())\n", "SFS003", scope=None)


def test_sfs003_allows_sorted_sets():
    src = "for x in sorted({1, 2, 3}):\n    print(x)\nout = list(sorted(set(y)))\n"
    assert not _rules_fired(src, "SFS003", scope=None)


def test_sfs003_allows_set_operations_without_ordered_sink():
    assert not _rules_fired(
        "flags = {1, 2} | {3}\nok = 2 in flags\n", "SFS003", scope=None
    )


# ----------------------------------------------------------------------
# SFS004: registry hygiene (applies to every scanned file)
# ----------------------------------------------------------------------


def test_sfs004_flags_registered_entry_without_docstring():
    src = "@register('sfs')\ndef _sfs(**options):\n    return 1\n"
    found = _find(src, "SFS004", scope=None)
    assert any("no docstring" in v.message for v in found)


def test_sfs004_allows_documented_entry():
    src = '@register("sfs")\ndef _sfs(**options):\n    "Surplus fair."\n    return 1\n'
    assert not _find(src, "SFS004", scope=None)


def test_sfs004_flags_insane_registry_name():
    src = '@register("bad name!")\ndef _f(**o):\n    "Doc."\n    return 1\n'
    found = _find(src, "SFS004", scope=None)
    assert any("not a sane registry key" in v.message for v in found)


def test_sfs004_flags_duplicate_names_across_files():
    src = '@register("dup")\ndef _f(**o):\n    "Doc."\n    return 1\n'
    rules = make_rules(["SFS004"])
    lint_source(src, "a.py", rules=rules, scope=None)
    lint_source(src, "b.py", rules=rules, scope=None)
    dupes = [v for r in rules for v in r.finish()]
    assert len(dupes) == 1
    assert "already used at a.py" in dupes[0].message


def test_sfs004_flags_dict_registry_mapping_to_undocumented_function():
    src = "def _shares(result):\n    return 1\n\nMETRICS = {'shares': _shares}\n"
    found = _find(src, "SFS004", scope=None)
    assert any("undocumented" in v.message for v in found)


# ----------------------------------------------------------------------
# SFS005: float equality on tag arithmetic
# ----------------------------------------------------------------------


def test_sfs005_flags_phi_equality():
    assert _rules_fired("if task.phi == other.phi:\n    pass\n", "SFS005", scope="core")


def test_sfs005_flags_sched_tag_equality():
    src = "same = a.sched['S'] == b.sched['S']\n"
    assert _rules_fired(src, "SFS005", scope="core")


def test_sfs005_flags_surplus_call_inequality():
    src = "if sched.surplus_of(t) != 0.0:\n    pass\n"
    assert _rules_fired(src, "SFS005", scope="core")


def test_sfs005_allows_ordering_comparisons():
    assert not _rules_fired(
        "if task.phi < other.phi:\n    pass\n", "SFS005", scope="core"
    )


def test_sfs005_whitelists_fixed_point_module():
    rules = make_rules(["SFS005"])
    found = lint_source(
        "ok = task.phi == 1.0\n",
        "src/repro/core/fixed_point.py",
        rules=rules,
        scope="core",
    )
    assert not found


def test_sfs005_does_not_apply_outside_sim_scopes():
    assert not _rules_fired("assert t.phi == 2.0\n", "SFS005", scope=None)


# ----------------------------------------------------------------------
# SFS006: pickle safety (applies to every scanned file)
# ----------------------------------------------------------------------


def test_sfs006_flags_lambda_in_scenario_ctor():
    src = "s = Scenario(name='x', probes=(Probe(1.0, lambda m, t: 0),))\n"
    found = _find(src, "SFS006", scope=None)
    assert any("lambda" in v.message for v in found)


def test_sfs006_flags_nested_function_argument():
    src = (
        "def build():\n"
        "    def probe(m, t):\n"
        "        return 0\n"
        "    return Scenario(name='x', probes=(Probe(1.0, probe),))\n"
    )
    found = _find(src, "SFS006", scope=None)
    assert any("nested function" in v.message for v in found)


def test_sfs006_allows_module_level_probe_functions():
    src = (
        "def probe(m, t):\n"
        "    return 0\n"
        "s = Scenario(name='x', probes=(Probe(1.0, probe),))\n"
    )
    assert not _find(src, "SFS006", scope=None)


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------


def test_same_line_pragma_suppresses():
    src = "t = time.time()  # sfs-lint: disable=SFS002\n"
    assert not lint_source(src, scope="sim")


def test_comment_line_pragma_waives_the_next_line():
    src = (
        "# sfs-lint: disable=SFS002 (harness timing, justified)\n"
        "t = time.time()\n"
    )
    assert not lint_source(src, scope="sim")


def test_disable_all_suppresses_every_rule():
    src = "t = time.time()  # sfs-lint: disable=all\n"
    assert not lint_source(src, scope="sim")


def test_pragma_for_other_rule_does_not_suppress():
    src = "t = time.time()  # sfs-lint: disable=SFS001\n"
    assert [v.rule for v in lint_source(src, scope="sim")] == ["SFS002"]


def test_disabled_ids_by_line_parsing():
    src = (
        "x = 1  # sfs-lint: disable=SFS001,SFS005\n"
        "# sfs-lint: disable=SFS002\n"
        "y = 2\n"
    )
    assert disabled_ids_by_line(src) == {
        1: frozenset({"SFS001", "SFS005"}),
        3: frozenset({"SFS002"}),
    }


# ----------------------------------------------------------------------
# engine: discovery, scope inference, rendering, CLI
# ----------------------------------------------------------------------


def test_discover_files_skips_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    files = discover_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]


def test_lint_paths_scopes_rules_by_package(tmp_path):
    sim = tmp_path / "src" / "repro" / "sim"
    harness = tmp_path / "src" / "repro" / "exec"
    sim.mkdir(parents=True)
    harness.mkdir(parents=True)
    bad = "import time\nt = time.time()\n"
    (sim / "mod.py").write_text(bad)
    (harness / "mod.py").write_text(bad)  # wall clock fine outside sim scopes
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 2
    assert [v.rule for v in violations] == ["SFS002"]
    assert "sim" in violations[0].path


def test_lint_paths_reports_unparseable_files(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 1
    assert [v.rule for v in violations] == ["SFS000"]


def test_render_text_and_json_roundtrip(tmp_path):
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True)
    (target / "mod.py").write_text("import time\nt = time.time()\n")
    violations, files_checked = lint_paths([tmp_path])
    text = render_text(violations, files_checked)
    assert "SFS002" in text and "1 violation in 1 files checked" in text
    payload = json.loads(render_json(violations, files_checked))
    assert payload["files_checked"] == 1
    assert payload["violations"][0]["rule"] == "SFS002"


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty_pkg = tmp_path / "src" / "repro" / "sim"
    dirty_pkg.mkdir(parents=True)
    dirty = dirty_pkg / "mod.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    assert main(["--select", "SFS999", str(clean)]) == 2
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SFS001" in out and "SFS006" in out


def test_main_select_restricts_rules(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("import time\nt = time.time()\n")
    assert main(["--select", "SFS001", str(tmp_path)]) == 0
    assert main(["--select", "SFS002", str(tmp_path)]) == 1


# ----------------------------------------------------------------------
# dogfood: this repository lints clean (the blocking CI invariant)
# ----------------------------------------------------------------------


def test_repository_lints_clean():
    roots = [REPO_ROOT / root for root in DEFAULT_ROOTS]
    violations, files_checked = lint_paths(roots)
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"repo must lint clean:\n{rendered}"
    assert files_checked > 100


# ----------------------------------------------------------------------
# SFS007: scenario configs must schema-validate
# ----------------------------------------------------------------------

GOOD_CONFIG = """\
name: ok
duration: 1.0
tasks:
  - {name: a}
"""

BAD_CONFIG = """\
name: broken
cpus: -3
duration: 1.0
"""


def test_sfs007_flags_invalid_config(tmp_path):
    scenarios = tmp_path / "scenarios"
    scenarios.mkdir()
    (scenarios / "bad.yaml").write_text(BAD_CONFIG)
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 1
    assert [v.rule for v in violations] == ["SFS007"]
    assert "cpus" in violations[0].message


def test_sfs007_passes_valid_config(tmp_path):
    scenarios = tmp_path / "scenarios"
    scenarios.mkdir()
    (scenarios / "good.yaml").write_text(GOOD_CONFIG)
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 1
    assert violations == []


def test_sfs007_validates_json_configs(tmp_path):
    scenarios = tmp_path / "scenarios"
    scenarios.mkdir()
    (scenarios / "bad.json").write_text('{"name": "broken", "cpus": []}')
    violations, _ = lint_paths([tmp_path])
    assert [v.rule for v in violations] == ["SFS007"]


def test_configs_outside_scenarios_dirs_not_discovered(tmp_path):
    (tmp_path / "random.yaml").write_text(BAD_CONFIG)
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 0
    assert violations == []


def test_explicit_config_path_is_linted(tmp_path):
    config = tmp_path / "direct.yaml"
    config.write_text(BAD_CONFIG)
    violations, files_checked = lint_paths([config])
    assert files_checked == 1
    assert [v.rule for v in violations] == ["SFS007"]


def test_sfs007_pragma_works_from_yaml(tmp_path):
    scenarios = tmp_path / "scenarios"
    scenarios.mkdir()
    waived = "name: broken  # sfs-lint: disable=SFS007\ncpus: -3\nduration: 1.0\n"
    (scenarios / "waived.yaml").write_text(waived)
    violations, files_checked = lint_paths([tmp_path])
    assert files_checked == 1
    assert violations == []


def test_default_roots_include_examples():
    assert "examples" in DEFAULT_ROOTS
