"""Flow/packet domain tests.

Covers the pieces PR 10 added on top of the scenario pipeline: the
``FlowTransmitter`` behaviour mechanics, the flow spec dataclasses,
the ``flows`` preset family, and the properties the domain exists to
demonstrate — bytes served never exceed link capacity x time, and
backlogged weighted flows converge to their weight ratio under every
fair queueing policy. Plus the operational contracts: metrics are
bit-identical through every execution backend, everything pickles,
the config loader round-trips flow scenarios, the multi-resource
metrics follow their defining arithmetic, and the
``resource_conservation`` audit check runs clean (or skips with a
reason) as applicable.
"""

import math
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.cli import main
from repro.flows import (
    FLOW_RESOURCE_PROFILES,
    FlowSpec,
    FlowTransmitter,
    LinkSpec,
    PacketFlow,
    dominant_shares,
    flow_scenario,
    materialize_flows,
    resource_jains,
    resource_service,
    resource_shares,
)
from repro.scenario import (
    FAMILIES,
    METRICS,
    ConfigError,
    dumps_scenario,
    family_names,
    loads_config,
    make_demand,
    run_cells,
    run_scenario,
)
from repro.sim.events import Block, Exit, Run

MB = 1.25e6  # a 10 Mbit/s link, the LinkSpec default

FAIR_POLICIES = ("sfs", "wfq", "sfq")


def _backlogged(name, weight, packets=300, size=1500.0, seed=0):
    return FlowSpec(
        name=name,
        weight=weight,
        packets=packets,
        size="constant-mtu",
        size_params={"mtu": size},
        seed=seed,
    )


def _bytes_sent(result):
    return {name: state.behavior.bytes_sent for name, state in result.tasks.items()}


# ---------------------------------------------------------------- specs


class TestSpecs:
    def test_link_capacity_aggregates_channels(self):
        link = LinkSpec(bytes_per_sec=1e6, channels=3)
        assert link.total_bytes_per_sec == 3e6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bytes_per_sec": 0.0},
            {"bytes_per_sec": -1.0},
            {"bytes_per_sec": math.inf},
            {"channels": 0},
        ],
    )
    def test_link_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "f", "weight": 0.0},
            {"name": "f", "packets": 0},
            {"name": "f", "at": -0.1},
            {"name": "f", "resources": {"gpu": 1.0}},
            {"name": "f", "resources": {"cpu": -1.0}},
        ],
    )
    def test_flow_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FlowSpec(**kwargs)

    @pytest.mark.parametrize(
        "arrivals, sizes, bps",
        [
            ((), (), 1.0),  # no packets
            ((0.0, 1.0), (10.0,), 1.0),  # length mismatch
            ((1.0, 0.5), (10.0, 10.0), 1.0),  # decreasing enqueues
            ((0.0,), (0.0,), 1.0),  # zero-byte packet
            ((0.0,), (10.0,), 0.0),  # dead link
        ],
    )
    def test_packet_flow_rejects_bad_values(self, arrivals, sizes, bps):
        with pytest.raises(ValueError):
            PacketFlow(arrivals=arrivals, sizes=sizes, bytes_per_sec=bps)

    def test_specs_pickle_and_compare_equal(self):
        for spec in (
            LinkSpec(bytes_per_sec=2e6, channels=2),
            FlowSpec(name="f", weight=3.0, resources={"cpu": 0.5}),
            PacketFlow(arrivals=(0.0, 0.5), sizes=(100.0, 200.0), bytes_per_sec=1e3),
        ):
            assert pickle.loads(pickle.dumps(spec)) == spec


# ---------------------------------------------------------- transmitter


class TestFlowTransmitter:
    def test_sends_head_of_line_and_books_delays(self):
        pf = PacketFlow(
            arrivals=(0.0, 0.0, 0.5),
            sizes=(1000.0, 500.0, 250.0),
            bytes_per_sec=1000.0,
        )
        t = FlowTransmitter(pf)
        assert t.start(0.0) == Run(1.0)
        assert t.next_segment(1.0) == Run(0.5)
        assert t.next_segment(1.5) == Run(0.25)
        assert t.next_segment(1.75) == Exit()
        assert t.packets_sent == 3
        assert t.bytes_sent == 1750.0
        # completion - enqueue: 1.0-0, 1.5-0, 1.75-0.5
        assert t.delays == [1.0, 1.5, 1.25]

    def test_blocks_until_next_enqueue(self):
        pf = PacketFlow(arrivals=(1.0,), sizes=(100.0,), bytes_per_sec=100.0)
        t = FlowTransmitter(pf)
        assert t.start(0.0) == Block(1.0)
        assert t.next_segment(1.0) == Run(1.0)
        assert t.next_segment(2.0) == Exit()
        assert t.delays == [1.0]
        assert t.throughput(2.0) == 50.0

    def test_throughput_rejects_nonpositive_duration(self):
        t = FlowTransmitter(
            PacketFlow(arrivals=(0.0,), sizes=(1.0,), bytes_per_sec=1.0)
        )
        with pytest.raises(ValueError):
            t.throughput(0.0)


# --------------------------------------------------------- demand kinds


class TestPacketDemandKinds:
    def test_constant_mtu_is_fixed_at_mtu(self):
        dist = make_demand("constant-mtu", mtu=900.0)
        rng = random.Random(1)
        assert [dist.sample(rng) for _ in range(3)] == [900.0] * 3

    def test_packet_trace_cycles_in_order(self):
        dist = make_demand("packet-trace", sizes=[40.0, 1500.0, 9000.0])
        rng = random.Random(1)
        expected = [40.0, 1500.0, 9000.0] * 2 + [40.0]
        assert [dist.sample(rng) for _ in range(7)] == expected

    @pytest.mark.parametrize(
        "kind, params",
        [
            ("constant-mtu", {"mtu": 1500.0}),
            ("packet-trace", {"sizes": [100.0, 200.0]}),
        ],
    )
    def test_one_draw_parity_with_stochastic_kinds(self, kind, params):
        """Each sample consumes exactly one rng.random()."""
        dist = make_demand(kind, **params)
        rng, control = random.Random(7), random.Random(7)
        for _ in range(5):
            dist.sample(rng)
            control.random()
        assert rng.getstate() == control.getstate()


# --------------------------------------------------------------- family


class TestFlowFamily:
    def test_registered_beside_server(self):
        assert {"flows", "server"} <= set(family_names())
        build, summary = FAMILIES["flows"]
        assert build is flow_scenario
        assert "link" in summary

    def test_generated_population_is_deterministic(self):
        a = flow_scenario(n_flows=5, packets_per_flow=20, seed=9)
        b = flow_scenario(n_flows=5, packets_per_flow=20, seed=9)
        assert a == b
        assert a != flow_scenario(n_flows=5, packets_per_flow=20, seed=10)

    def test_flow_draws_independent_of_population(self):
        """One flow's packet stream never depends on its neighbours."""
        spec = _backlogged("probe", 2.0, packets=10, seed=5)
        others = [_backlogged(f"bg-{i}", 1.0, seed=i) for i in range(3)]
        link = LinkSpec()
        alone, _, _ = materialize_flows([spec], link)
        crowd, _, _ = materialize_flows([spec, *others], link)
        assert alone[0].behavior == crowd[0].behavior

    def test_materialize_horizon_covers_offered_work(self):
        tasks, mean_size, horizon = materialize_flows(
            [_backlogged("a", 1.0, packets=100, size=1250.0)],
            LinkSpec(bytes_per_sec=1250.0),
        )
        assert mean_size == 1250.0
        assert horizon == pytest.approx(100.0)  # 100 packets x 1 s
        assert tasks[0].behavior.total_bytes == 125000.0

    def test_scenario_and_metrics_pickle(self):
        scenario = flow_scenario(
            n_flows=3,
            packets_per_flow=15,
            resource_profiles=FLOW_RESOURCE_PROFILES,
        )
        assert pickle.loads(pickle.dumps(scenario)) == scenario
        result = run_scenario(scenario)
        for name in (
            "flow_throughput",
            "packet_delay_p99",
            "resource_shares",
            "dominant_shares",
            "resource_jains",
        ):
            value = METRICS[name](result)
            assert pickle.loads(pickle.dumps(value)) == value


# ----------------------------------------------------------- properties


flow_spec_st = st.builds(
    _backlogged,
    name=st.sampled_from(["a", "b", "c", "d"]),
    weight=st.floats(min_value=0.5, max_value=10.0),
    packets=st.integers(min_value=1, max_value=60),
    size=st.floats(min_value=64.0, max_value=9000.0),
    seed=st.integers(min_value=0, max_value=10),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    specs=st.lists(
        flow_spec_st, min_size=1, max_size=4, unique_by=lambda f: f.name
    ),
    channels=st.integers(min_value=1, max_value=2),
    policy=st.sampled_from(FAIR_POLICIES + ("round-robin",)),
    cut=st.floats(min_value=0.1, max_value=1.0),
)
def test_bytes_served_never_exceed_capacity(specs, channels, policy, cut):
    """Conservation law: sum of goodput <= channels x rate x time."""
    link = LinkSpec(bytes_per_sec=1e5, channels=channels)
    scenario = flow_scenario(flows=specs, link=link, scheduler=policy)
    scenario = scenario.with_(duration=scenario.duration * cut)
    result = run_scenario(scenario)
    total = sum(_bytes_sent(result).values())
    capacity = link.total_bytes_per_sec * result.duration
    assert total <= capacity * (1 + 1e-9)


@settings(max_examples=10, deadline=None)
@given(
    policy=st.sampled_from(FAIR_POLICIES),
    ratio=st.integers(min_value=2, max_value=5),
)
def test_backlogged_flows_converge_to_weight_ratio(policy, ratio):
    """Two always-backlogged flows split the link by weight.

    The window ends well before either flow drains (600 packets would
    need ~0.72 s at 3:1), so throughput is pure scheduler allocation.
    """
    scenario = flow_scenario(
        flows=(
            _backlogged("heavy", float(ratio), seed=1),
            _backlogged("light", 1.0, seed=2),
        ),
        scheduler=policy,
    ).with_(duration=0.25)
    result = run_scenario(scenario)
    sent = _bytes_sent(result)
    assert sent["light"] > 0
    observed = sent["heavy"] / sent["light"]
    assert observed == pytest.approx(ratio, rel=0.05)
    assert result.jains() > 0.99


# ------------------------------------------------------------- backends


class TestBackendStability:
    METRIC_NAMES = (
        "completed",
        "jains",
        "flow_throughput",
        "packet_delay_p50",
        "packet_delay_p95",
        "resource_shares",
        "dominant_shares",
        "resource_jains",
    )

    def _grid(self):
        return [
            flow_scenario(
                n_flows=4,
                packets_per_flow=30,
                scheduler=policy,
                seed=11,
                resource_profiles=FLOW_RESOURCE_PROFILES,
            )
            for policy in FAIR_POLICIES
        ]

    def _comparable(self, cells):
        return [(c.index, c.scheduler, dict(c.metrics)) for c in cells]

    def test_metrics_identical_across_backends(self, tmp_path):
        grid = self._grid()
        serial = run_cells(grid, self.METRIC_NAMES, workers=0)
        process = run_cells(grid, self.METRIC_NAMES, workers=2, backend="process")
        chunked = run_cells(
            grid,
            self.METRIC_NAMES,
            workers=2,
            backend="chunked",
            checkpoint=str(tmp_path / "flows.jsonl"),
            chunk_size=2,
        )
        want = self._comparable(serial)
        assert self._comparable(process) == want
        assert self._comparable(chunked) == want

    def test_cells_pickle_round_trip(self):
        cells = run_cells(self._grid()[:1], self.METRIC_NAMES, workers=0)
        assert self._comparable(
            pickle.loads(pickle.dumps(cells))
        ) == self._comparable(cells)


# --------------------------------------------------------------- loader


FLOWS_YAML = """\
name: cfg-flows
scheduler: sfs
duration: 0.2
metrics: [flow_throughput, jains]
link: {bytes_per_sec: 1250000.0}
flows:
  - {name: heavy, weight: 3.0, packets: 50, seed: 1}
  - name: tail
    weight: 1.0
    packets: 50
    seed: 2
    size: {kind: packet-trace, sizes: [400.0, 9000.0]}
    resources: {cpu: 0.5, bandwidth: 1.0}
"""


class TestLoader:
    def test_flows_block_loads_and_round_trips(self):
        scenario = loads_config(FLOWS_YAML)
        assert scenario.cpus == 1
        names = [t.name for t in scenario.tasks]
        assert names == ["heavy", "tail"]
        assert scenario.tasks[1].resources == {"cpu": 0.5, "bandwidth": 1.0}
        # quantum defaults to one mean packet transmission time
        assert 0 < scenario.quantum < 0.01
        assert loads_config(dumps_scenario(scenario)) == scenario

    def test_loaded_config_matches_python_construction(self):
        scenario = loads_config(FLOWS_YAML)
        built = flow_scenario(
            flows=(
                _backlogged("heavy", 3.0, packets=50, seed=1),
                FlowSpec(
                    name="tail",
                    packets=50,
                    seed=2,
                    size="packet-trace",
                    size_params={"sizes": [400.0, 9000.0]},
                    resources={"cpu": 0.5, "bandwidth": 1.0},
                ),
            ),
            metrics=("flow_throughput", "jains"),
        ).with_(name="cfg-flows", duration=0.2, record_events=True)
        assert scenario == built

    def test_flows_without_link_is_an_error(self):
        text = FLOWS_YAML.replace("link: {bytes_per_sec: 1250000.0}\n", "")
        with pytest.raises(ConfigError, match="link"):
            loads_config(text)

    def test_link_without_flows_is_an_error(self):
        text = "name: x\nduration: 1.0\nlink: {bytes_per_sec: 1.0}\n"
        with pytest.raises(ConfigError, match="flows"):
            loads_config(text)

    def test_cpus_conflicts_with_link(self):
        with pytest.raises(ConfigError, match="conflicts"):
            loads_config("cpus: 2\n" + FLOWS_YAML)

    def test_unknown_size_kind_is_an_error(self):
        text = FLOWS_YAML.replace(
            "kind: packet-trace, sizes: [400.0, 9000.0]",
            "kind: no-such-kind",
        )
        with pytest.raises(ConfigError, match=r"flows\[1\]\.size\.kind"):
            loads_config(text)

    def test_unknown_resource_is_an_error(self):
        text = FLOWS_YAML.replace("cpu: 0.5", "gpu: 0.5")
        with pytest.raises(ConfigError, match="gpu"):
            loads_config(text)

    def test_packet_flow_behavior_block_loads(self):
        scenario = loads_config(
            "name: raw\n"
            "duration: 1.0\n"
            "tasks:\n"
            "  - name: f\n"
            "    behavior:\n"
            "      kind: packet-flow\n"
            "      bytes_per_sec: 1000.0\n"
            "      arrivals: [0.0, 0.5]\n"
            "      sizes: [100.0, 200.0]\n"
        )
        behavior = scenario.tasks[0].behavior
        assert behavior == PacketFlow(
            arrivals=(0.0, 0.5), sizes=(100.0, 200.0), bytes_per_sec=1000.0
        )


# ------------------------------------------------------- multi-resource


class TestResourceMetrics:
    def _result(self):
        scenario = flow_scenario(
            flows=(
                FlowSpec(
                    name="a",
                    weight=2.0,
                    packets=200,
                    seed=1,
                    resources={"cpu": 0.5, "bandwidth": 1.0},
                ),
                FlowSpec(
                    name="b",
                    weight=1.0,
                    packets=200,
                    seed=2,
                    resources={"memory": 2.0, "bandwidth": 1.0},
                ),
            ),
        ).with_(duration=0.2)
        return run_scenario(scenario)

    def test_service_is_service_times_vector(self):
        result = self._result()
        service = resource_service(result)
        s_a = result.tasks["a"].service
        s_b = result.tasks["b"].service
        assert service["cpu"] == {"a": s_a * 0.5}
        assert service["memory"] == {"b": s_b * 2.0}
        assert service["bandwidth"] == {"a": s_a, "b": s_b}

    def test_shares_sum_to_one_per_resource(self):
        shares = resource_shares(self._result())
        assert set(shares) == {"cpu", "memory", "bandwidth"}
        for per_task in shares.values():
            assert sum(per_task.values()) == pytest.approx(1.0)

    def test_dominant_share_is_max_over_resources(self):
        result = self._result()
        shares = resource_shares(result)
        dominant = dominant_shares(result)
        for name in ("a", "b"):
            assert dominant[name] == max(
                per_task[name]
                for per_task in shares.values()
                if name in per_task
            )
        # sole consumers dominate their private resource outright
        assert dominant["a"] == shares["cpu"]["a"] == 1.0
        assert dominant["b"] == shares["memory"]["b"] == 1.0

    def test_jains_per_resource_bounded(self):
        jains = resource_jains(self._result())
        assert set(jains) == {"cpu", "memory", "bandwidth"}
        for value in jains.values():
            assert 0.0 < value <= 1.0

    def test_empty_without_declared_vectors(self):
        result = run_scenario(flow_scenario(n_flows=2, packets_per_flow=10))
        assert resource_service(result) == {}
        assert resource_shares(result) == {}
        assert dominant_shares(result) == {}
        assert resource_jains(result) == {}


# ---------------------------------------------------------------- audit


class TestAuditApplicability:
    def test_resource_conservation_runs_clean_on_flows(self):
        scenario = flow_scenario(
            n_flows=3,
            packets_per_flow=20,
            resource_profiles=FLOW_RESOURCE_PROFILES,
        ).with_(audit=True)
        report = run_scenario(scenario).audit_report
        assert report.ok
        assert report.counts.get("resource_conservation") == 0
        assert "resource_conservation" not in report.skipped

    def test_bounded_lag_earns_per_wakeup_slack_on_open_arrivals(self):
        """Open-arrival flows block/wake per packet; the lag bound
        scales with recorded wakeups instead of flagging the expected
        per-window discretization error (the flows_study --audit
        configuration, which tripped the constant bound)."""
        for load, truncate in ((0.7, False), (1.4, True)):
            scenario = flow_scenario(
                n_flows=12, packets_per_flow=120, load=load, seed=42
            ).with_(audit=True)
            if truncate:
                # the flows_study overload cell: arrival window only,
                # churning video flows perturb the backlogged bulks
                scenario = scenario.with_(duration=scenario.duration / (1.5 * load))
            report = run_scenario(scenario).audit_report
            assert report.ok
            assert report.counts.get("bounded_lag") == 0

    def test_resource_conservation_skips_with_reason_otherwise(self):
        scenario = flow_scenario(
            n_flows=3, packets_per_flow=20
        ).with_(audit=True)
        report = run_scenario(scenario).audit_report
        assert report.ok
        assert "resource_conservation" not in report.counts
        assert "vector" in report.skipped["resource_conservation"]


# ------------------------------------------------------------------ CLI


class TestRegistryList:
    def test_list_names_the_flow_domain(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenario families" in out
        assert "flows" in out and "server" in out
        assert "constant-mtu" in out and "packet-trace" in out
        assert "flow_throughput" in out and "resource_jains" in out
        assert "audit checks" in out
        assert "resource_conservation" in out
